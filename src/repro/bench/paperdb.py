"""The paper's example database (Section 3.1) and statistics (Tables 13-15).

Two ways to get statistics:

* :func:`paper_statistics` injects the paper's exact Table 13-15 numbers
  (they are synthetic -- e.g. Company's 200,000 rows of size 500 cannot fit
  in 2,500 pages of any sane size -- but Tables 16/17 are computed from
  them, so reproduction requires them verbatim);
* building the database at a chosen scale with :func:`build_paper_database`
  and measuring via :func:`repro.cost.statistics.collect_statistics`.

Note a naming wobble in the paper: the schema declares the attribute
``manufacturer REFERENCE (Company)`` but Example 8.1's query spells it
``v.company``.  We follow the schema (``manufacturer``) and register the
statistics under that name.
"""

from __future__ import annotations

import random

from repro.cost.params import DatabaseStats

#: Table 13 -- class statistics.
PAPER_CLASS_STATS = {
    "Vehicle": (20000, 2000, 400),
    "VehicleDriveTrain": (10000, 750, 300),
    "VehicleEngine": (10000, 5000, 2000),
    "Company": (200000, 2500, 500),
}

#: Table 14 -- attribute statistics (dist, max, min).
PAPER_ATTR_STATS = {
    ("VehicleEngine", "cylinders"): (16, 32, 2),
    ("Company", "name"): (200000, None, None),
}

#: Table 15 -- reference statistics (target, fan, totref).
#: totlinks and hitprb are derived: totlinks = fan * |C|, hitprb = totref/|D|.
PAPER_REF_STATS = {
    ("Vehicle", "drivetrain"): ("VehicleDriveTrain", 1.0, 10000),
    ("Vehicle", "manufacturer"): ("Company", 1.0, 20000),
    ("VehicleDriveTrain", "engine"): ("VehicleEngine", 1.0, 10000),
}


def paper_statistics() -> DatabaseStats:
    """DatabaseStats loaded with the paper's exact Tables 13-15."""
    stats = DatabaseStats()
    for class_name, (count, nbpages, size) in PAPER_CLASS_STATS.items():
        stats.set_class(class_name, count, nbpages, size)
    for (class_name, attr), (dist, hi, lo) in PAPER_ATTR_STATS.items():
        stats.set_attribute(class_name, attr, dist, hi, lo)
    for (class_name, attr), (target, fan, totref) in PAPER_REF_STATS.items():
        stats.set_reference(class_name, attr, target, fan, totref)
    return stats


#: MOODSQL DDL for the Section 3.1 schema, verbatim in structure.
PAPER_SCHEMA_DDL = [
    """CREATE CLASS VehicleEngine TUPLE (
        size Integer,
        cylinders Integer
    )""",
    """CREATE CLASS VehicleDriveTrain TUPLE (
        engine REFERENCE (VehicleEngine),
        transmission String(32)
    )""",
    """CREATE CLASS Employee TUPLE (
        ssno Integer,
        name String(32),
        age Integer
    )""",
    """CREATE CLASS Company TUPLE (
        name String(32),
        location String(32),
        president REFERENCE (Employee)
    )""",
    """CREATE CLASS Vehicle TUPLE (
        id Integer,
        weight Integer,
        drivetrain REFERENCE (VehicleDriveTrain),
        manufacturer REFERENCE (Company)
    ) METHODS (
        lbweight () Integer { return int(self.weight * 2.2075) },
        curbweight () Integer { return self.weight }
    )""",
    "CREATE CLASS Automobile INHERITS FROM Vehicle",
    "CREATE CLASS JapaneseAuto INHERITS FROM Automobile",
]

TRANSMISSIONS = ["AUTOMATIC", "MANUAL", "CVT", "DCT"]
LOCATIONS = ["Munich", "Tokyo", "Detroit", "Ankara", "Torino"]
JAPANESE_COMPANIES = {"Toyota", "Honda", "Nissan"}
COMPANY_STEMS = [
    "BMW", "Toyota", "Honda", "Nissan", "Ford", "Fiat", "Saab", "TOFAS",
]


def build_paper_database(db, scale: int = 100, seed: int = 42) -> dict:
    """Populate a MoodDatabase with the Section 3.1 schema and data.

    ``scale`` is the number of Vehicle instances; other extents keep the
    paper's Table 13 proportions (|DriveTrain| = |Engine| = scale/2,
    |Company| = 10*scale) and Table 15's fan/totref structure: every
    drivetrain is shared by two vehicles (totref = |C|/2), every engine by
    one drivetrain, and manufacturers are drawn from all companies.

    Returns a summary dict of created OIDs per class.
    """
    rng = random.Random(seed)
    for ddl in PAPER_SCHEMA_DDL:
        db.execute(ddl)

    num_vehicles = scale
    num_drivetrains = max(1, scale // 2)
    num_engines = max(1, scale // 2)
    num_companies = max(1, scale * 10)
    num_employees = max(1, scale // 4)

    employees = [
        db.new_object("Employee", {
            "ssno": 1000 + i,
            "name": f"Employee-{i}",
            "age": 25 + (i % 40),
        })
        for i in range(num_employees)
    ]
    companies = []
    for i in range(num_companies):
        stem = COMPANY_STEMS[i % len(COMPANY_STEMS)]
        name = stem if i < len(COMPANY_STEMS) else f"{stem}-{i}"
        companies.append(
            db.new_object("Company", {
                "name": name,
                "location": LOCATIONS[i % len(LOCATIONS)],
                "president": rng.choice(employees),
            })
        )
    engines = [
        db.new_object("VehicleEngine", {
            "size": 1000 + 250 * (i % 13),
            "cylinders": 2 * (1 + i % 16),  # 2..32, 16 distinct (Table 14)
        })
        for i in range(num_engines)
    ]
    drivetrains = [
        db.new_object("VehicleDriveTrain", {
            "engine": engines[i % num_engines],
            "transmission": TRANSMISSIONS[i % len(TRANSMISSIONS)],
        })
        for i in range(num_drivetrains)
    ]
    vehicles = []
    for i in range(num_vehicles):
        class_name = ("JapaneseAuto" if i % 5 == 0
                      else "Automobile" if i % 2 == 0 else "Vehicle")
        company = (
            companies[rng.randrange(num_companies)]
            if class_name != "JapaneseAuto"
            else companies[1 + (i % 3)]  # Toyota/Honda/Nissan stems
        )
        vehicles.append(
            db.new_object(class_name, {
                "id": i,
                "weight": 800 + (i * 37) % 1400,
                "drivetrain": drivetrains[i % num_drivetrains],
                "manufacturer": company,
            })
        )
    return {
        "Employee": employees,
        "Company": companies,
        "VehicleEngine": engines,
        "VehicleDriveTrain": drivetrains,
        "Vehicle": vehicles,
    }


def build_paper_shard(
    db, shard_index: int, shard_count: int, scale: int = 100, seed: int = 42
) -> dict:
    """Populate one shard's slice of the paper database.

    The schema is identical on every shard (DDL broadcasts); the data is
    partitioned by vehicle id: shard ``i`` owns the vehicles whose
    ``id % shard_count == i`` together with shard-local drivetrains,
    engines, companies and employees in the Table 13 proportions, so no
    reference ever crosses a shard boundary.  ``scale`` is the *global*
    vehicle count, matching :func:`build_paper_database` at the same
    scale when ``shard_count == 1``.
    """
    if not 0 <= shard_index < shard_count:
        raise ValueError(f"shard {shard_index} outside 0..{shard_count - 1}")
    rng = random.Random(seed + shard_index)
    for ddl in PAPER_SCHEMA_DDL:
        db.execute(ddl)

    local_ids = [i for i in range(scale) if i % shard_count == shard_index]
    local_scale = max(1, len(local_ids))
    num_drivetrains = max(1, local_scale // 2)
    num_engines = max(1, local_scale // 2)
    num_companies = max(1, local_scale * 10)
    num_employees = max(1, local_scale // 4)

    employees = [
        db.new_object("Employee", {
            "ssno": 1000 + shard_index * scale + i,
            "name": f"Employee-{shard_index}-{i}",
            "age": 25 + (i % 40),
        })
        for i in range(num_employees)
    ]
    companies = []
    for i in range(num_companies):
        stem = COMPANY_STEMS[i % len(COMPANY_STEMS)]
        name = stem if i < len(COMPANY_STEMS) else f"{stem}-{shard_index}-{i}"
        companies.append(
            db.new_object("Company", {
                "name": name,
                "location": LOCATIONS[i % len(LOCATIONS)],
                "president": rng.choice(employees),
            })
        )
    engines = [
        db.new_object("VehicleEngine", {
            "size": 1000 + 250 * (i % 13),
            "cylinders": 2 * (1 + i % 16),
        })
        for i in range(num_engines)
    ]
    drivetrains = [
        db.new_object("VehicleDriveTrain", {
            "engine": engines[i % num_engines],
            "transmission": TRANSMISSIONS[i % len(TRANSMISSIONS)],
        })
        for i in range(num_drivetrains)
    ]
    vehicles = []
    for rank, vehicle_id in enumerate(local_ids):
        class_name = ("JapaneseAuto" if vehicle_id % 5 == 0
                      else "Automobile" if vehicle_id % 2 == 0 else "Vehicle")
        company = (
            companies[rng.randrange(num_companies)]
            if class_name != "JapaneseAuto"
            else companies[1 + (vehicle_id % 3)]
        )
        vehicles.append(
            db.new_object(class_name, {
                "id": vehicle_id,
                "weight": 800 + (vehicle_id * 37) % 1400,
                "drivetrain": drivetrains[rank % num_drivetrains],
                "manufacturer": company,
            })
        )
    return {
        "Employee": employees,
        "Company": companies,
        "VehicleEngine": engines,
        "VehicleDriveTrain": drivetrains,
        "Vehicle": vehicles,
    }
