"""Benchmark reporting helpers.

Each benchmark regenerates one of the paper's tables or figures; the
artifact is printed to the console and persisted under
``benchmarks/output/`` so EXPERIMENTS.md can cite the measured output.
"""

from __future__ import annotations

import pathlib


def _output_dir() -> pathlib.Path:
    # benchmarks/output next to the benchmarks package when run from the
    # repository; otherwise the current working directory.
    for candidate in (pathlib.Path.cwd() / "benchmarks",
                      pathlib.Path.cwd()):
        if candidate.is_dir():
            return candidate / "output"
    return pathlib.Path.cwd() / "output"


def emit(name: str, text: str) -> None:
    """Print an artifact and persist it as ``benchmarks/output/<name>.txt``."""
    directory = _output_dir()
    directory.mkdir(parents=True, exist_ok=True)
    (directory / f"{name}.txt").write_text(text + "\n")
    print(f"\n===== {name} =====")
    print(text)


def table(header: list[str], rows: list[list]) -> str:
    """Render a plain-text table."""
    def cell(value) -> str:
        if isinstance(value, float):
            if value == float("inf"):
                return "inf"
            if 0 < abs(value) < 0.1:
                return f"{value:.2e}"
            return f"{value:,.3f}"
        return str(value)

    grid = [list(map(str, header))] + [[cell(v) for v in row] for row in rows]
    widths = [max(len(row[i]) for row in grid) for i in range(len(header))]
    lines = []
    for index, row in enumerate(grid):
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        if index == 0:
            lines.append("-+-".join("-" * w for w in widths))
    return "\n".join(lines)
