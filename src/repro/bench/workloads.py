"""Query workload generators over the Section 3.1 schema.

Used by the shape benchmarks and by the planner-robustness property tests:
:func:`random_query` produces syntactically and schema-valid MOODSQL text
with randomised range variables, immediate/path/join predicates, Boolean
structure, and optional GROUP BY / ORDER BY / DISTINCT clauses.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

#: (class, atomic attribute, sample constants) usable in predicates.
ATOMIC_SITES = [
    ("Vehicle", "weight", [800, 1000, 1500, 2000]),
    ("Vehicle", "id", [0, 5, 50, 500]),
    ("VehicleEngine", "cylinders", [2, 4, 8, 16, 32]),
    ("VehicleEngine", "size", [1000, 2000, 3000]),
    ("Employee", "age", [25, 40, 60]),
]

#: Paths rooted at Vehicle (attribute chain, sample constants, quoting).
VEHICLE_PATHS = [
    (("drivetrain", "transmission"),
     ["AUTOMATIC", "MANUAL", "CVT"], True),
    (("drivetrain", "engine", "cylinders"), [2, 4, 8], False),
    (("drivetrain", "engine", "size"), [1000, 2500], False),
    (("manufacturer", "name"), ["BMW", "Toyota", "Ford"], True),
    (("manufacturer", "location"), ["Munich", "Tokyo"], True),
]

COMPARISONS = ["=", "<>", "<", "<=", ">", ">="]


@dataclass
class GeneratedQuery:
    sql: str
    num_predicates: int
    uses_paths: bool
    uses_join: bool
    clauses: list[str] = field(default_factory=list)


def _literal(value, quoted: bool) -> str:
    return f"'{value}'" if quoted else str(value)


def _vehicle_predicate(rng: random.Random, var: str) -> tuple[str, bool]:
    """A predicate on a Vehicle-rooted range variable; returns (text,
    is_path)."""
    if rng.random() < 0.5:
        _, attr, constants = rng.choice(
            [site for site in ATOMIC_SITES if site[0] == "Vehicle"]
        )
        op = rng.choice(COMPARISONS)
        return f"{var}.{attr} {op} {rng.choice(constants)}", False
    attrs, constants, quoted = rng.choice(VEHICLE_PATHS)
    op = "=" if quoted else rng.choice(COMPARISONS)
    constant = _literal(rng.choice(constants), quoted)
    return f"{var}.{'.'.join(attrs)} {op} {constant}", True


def random_query(rng: random.Random) -> GeneratedQuery:
    """One random, always-valid MOODSQL query over the paper schema."""
    clauses: list[str] = []
    uses_join = rng.random() < 0.3
    ranges = ["Vehicle v"]
    if rng.random() < 0.3:
        ranges[0] = rng.choice([
            "Vehicle v",
            "EVERY Automobile - JapaneseAuto v",
            "Automobile v",
        ])
    predicates: list[str] = []
    uses_paths = False
    for _ in range(rng.randint(1, 3)):
        text, is_path = _vehicle_predicate(rng, "v")
        predicates.append(text)
        uses_paths = uses_paths or is_path
    if uses_join:
        ranges.append("VehicleEngine e")
        predicates.append("v.drivetrain.engine = e")
        if rng.random() < 0.7:
            predicates.append(
                f"e.cylinders {rng.choice(COMPARISONS)} "
                f"{rng.choice([2, 4, 8, 16])}"
            )
    # Boolean structure: AND everything, or an OR of two AND-halves.
    if len(predicates) >= 2 and rng.random() < 0.4:
        half = max(1, len(predicates) // 2)
        where = (
            "(" + " AND ".join(predicates[:half]) + ") OR ("
            + " AND ".join(predicates[half:]) + ")"
        )
        clauses.append("OR")
    else:
        where = " AND ".join(predicates)
    projection = rng.choice(["v", "v.id", "v.id, v.weight"])
    distinct = ""
    if rng.random() < 0.2:
        distinct = "DISTINCT "
        clauses.append("DISTINCT")
    sql = f"SELECT {distinct}{projection} FROM {', '.join(ranges)} " \
          f"WHERE {where}"
    if rng.random() < 0.25:
        sql += " GROUP BY v.weight"
        clauses.append("GROUP BY")
        if rng.random() < 0.5:
            sql += " HAVING v.weight > 900"
            clauses.append("HAVING")
    if rng.random() < 0.3:
        sql += " ORDER BY v.weight" + (" DESC" if rng.random() < 0.5 else "")
        clauses.append("ORDER BY")
    return GeneratedQuery(
        sql=sql,
        num_predicates=len(predicates),
        uses_paths=uses_paths,
        uses_join=uses_join,
        clauses=clauses,
    )


def workload(seed: int, size: int) -> list[GeneratedQuery]:
    rng = random.Random(seed)
    return [random_query(rng) for _ in range(size)]
