"""A VOODB-style multi-client workload driver for the MOOD server.

VOODB (Darmont's generic object-oriented benchmarking framework) shapes
an OODB workload as N concurrent clients issuing a parameterised mix of
transaction kinds against a shared object base.  This driver does the
same against a running :class:`~repro.server.server.MoodServer` over real
TCP, using the paper's Section 3.1 vehicle/company database:

* **read** -- a selection over the ``Vehicle`` extent hierarchy;
* **path** -- a pointer-chasing query (``v.drivetrain.engine...``,
  ``v.manufacturer.name``), the paper's signature access pattern;
* **write** -- an ``UPDATE`` against one vehicle (X-locks the extent),
  optionally multi-statement to stretch lock hold times.

Each transaction runs through
:meth:`~repro.server.client.MoodClient.run_transaction`, so deadlock
victimisation and lock timeouts surface as retries exactly as a
well-behaved interactive client would experience them.  The report
carries throughput, latency percentiles and the abort rate.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field

from repro.core.errors import MoodError
from repro.server.client import MoodClient


@dataclass
class WorkloadConfig:
    """Shape of one driver run (VOODB's workload parameters, reduced)."""

    clients: int = 4
    transactions_per_client: int = 25
    #: Relative weights of the transaction kinds.
    read_weight: float = 5.0
    path_weight: float = 3.0
    write_weight: float = 2.0
    #: Number of Vehicle instances in the object base (drives key ranges).
    scale: int = 100
    seed: int = 42
    retries: int = 8
    statement_timeout: float = 30.0
    #: PREPARE each transaction kind's statements once per client and
    #: EXECUTE them with bind parameters (the compile-once fast path)
    #: instead of sending fresh SQL text every time.
    use_prepared: bool = False
    #: Against a sharded router: how many shards the object base is
    #: partitioned over (``id % shard_count``).  When > 0 every statement
    #: carries its vehicle id as ``shard_key`` and all ids within one
    #: transaction are chosen congruent modulo the shard count, so the
    #: transaction stays on one shard and rides the router's fast path.
    #: ``scale`` should be a multiple of ``shard_count``.  0 = plain
    #: server, no routing hints.
    shard_count: int = 0
    #: Relative weight of a cross-shard transfer (two updates on
    #: different shards, committing through two-phase commit).  Only
    #: distinct from ``write`` when ``shard_count > 1``.
    cross_shard_weight: float = 0.0


@dataclass
class WorkloadReport:
    """What came back: the numbers the paper's Section 7 tables report
    per workload, plus the concurrency-specific ones."""

    clients: int
    txns: int
    committed: int
    aborted: int
    retries: int
    elapsed_s: float
    throughput_tps: float
    p50_ms: float
    p99_ms: float
    abort_rate: float
    p95_ms: float = 0.0
    errors: list = field(default_factory=list)

    def summary(self) -> dict:
        """The stable JSON shape bench artifacts persist."""
        return {
            "clients": self.clients,
            "txns": self.txns,
            "throughput_tps": round(self.throughput_tps, 2),
            "p50_ms": round(self.p50_ms, 3),
            "p95_ms": round(self.p95_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
            "abort_rate": round(self.abort_rate, 4),
        }


def percentile(samples: list[float], fraction: float) -> float:
    """Nearest-rank percentile; 0.0 for an empty sample set."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, int(fraction * len(ordered))))
    return ordered[rank]


class _ClientWorker(threading.Thread):
    """One driver client: a connection plus a seeded transaction stream."""

    def __init__(self, host: str, port: int, config: WorkloadConfig,
                 index: int):
        super().__init__(name=f"driver-client-{index}", daemon=True)
        self.host = host
        self.port = port
        self.config = config
        self.rng = random.Random(config.seed * 1009 + index)
        self.latencies_ms: list[float] = []
        self.committed = 0
        self.aborted = 0
        self.retries = 0
        self.errors: list[str] = []

    def run(self) -> None:
        config = self.config
        kinds = ["read", "path", "write"]
        weights = [
            config.read_weight, config.path_weight, config.write_weight,
        ]
        if config.cross_shard_weight > 0:
            kinds.append("xfer")
            weights.append(config.cross_shard_weight)
        try:
            client = MoodClient(self.host, self.port)
        except OSError as exc:
            self.errors.append(f"connect: {exc}")
            return
        with client:
            if config.use_prepared:
                try:
                    self._prepare_all(client)
                except (MoodError, OSError) as exc:
                    self.errors.append(f"prepare: {exc}")
                    return
            for _ in range(config.transactions_per_client):
                kind = self.rng.choices(kinds, weights=weights)[0]
                if config.use_prepared:
                    calls = self._prepared_calls(kind)
                    body = lambda c: [
                        c.execute_prepared(name, params, shard_key=key)
                        for name, params, key in calls
                    ]
                else:
                    statements = self._statements(kind)
                    body = lambda c: [
                        c.execute(sql, shard_key=key)
                        for sql, key in statements
                    ]
                started = time.monotonic()
                try:
                    _, attempts = client.run_transaction(
                        body,
                        retries=config.retries,
                        rng=self.rng,
                    )
                    self.committed += 1
                    self.retries += attempts - 1
                    self.latencies_ms.append(
                        (time.monotonic() - started) * 1e3
                    )
                except MoodError as exc:
                    self.aborted += 1
                    self.errors.append(
                        f"{kind}: {getattr(exc, 'code', '?')}: {exc}"
                    )
                except OSError as exc:
                    self.aborted += 1
                    self.errors.append(f"{kind}: connection: {exc}")
                    return

    def _key(self, vehicle_id: int):
        """The routing hint for a statement touching ``vehicle_id``
        (None against a plain server)."""
        return vehicle_id if self.config.shard_count > 0 else None

    def _peer(self, vehicle_id: int, stride: int) -> int:
        """Another vehicle id roughly ``stride`` slots away but on the
        *same* shard: steps are multiples of the shard count, so the
        transaction never crosses a shard boundary by accident."""
        n = max(self.config.shard_count, 1)
        step = (stride // n) * n or n
        return (vehicle_id + step) % self.config.scale

    def _statements(self, kind: str) -> list[tuple]:
        vehicle_id = self.rng.randrange(self.config.scale)
        if kind == "read":
            low = self.rng.randrange(500, 2500)
            return [(
                "SELECT v.id, v.weight FROM Vehicle v "
                f"WHERE v.weight > {low} AND v.id < {vehicle_id + 10}",
                self._key(vehicle_id),
            )]
        if kind == "path":
            second = self._peer(vehicle_id, 1)
            return [
                ("SELECT v.id, v.manufacturer.name FROM Vehicle v "
                 f"WHERE v.id = {vehicle_id}", self._key(vehicle_id)),
                ("SELECT v.drivetrain.engine.cylinders FROM Vehicle v "
                 f"WHERE v.id = {second}", self._key(second)),
            ]
        if kind == "xfer":
            # Deliberately crosses shards (ids differ by 1): the commit
            # goes through the router's two-phase protocol.  Lock shards
            # in canonical (ascending-shard) order: each shard's
            # wait-for graph is local, so two transfers acquiring in
            # opposite orders deadlock invisibly across shards and stall
            # until the lock timeout expires.
            peer = (vehicle_id + 1) % self.config.scale
            n = max(self.config.shard_count, 1)
            debit, credit = sorted((vehicle_id, peer),
                                   key=lambda vid: vid % n)
            return [
                ("UPDATE Vehicle v SET weight = v.weight + 1 "
                 f"WHERE v.id = {debit}", self._key(debit)),
                ("UPDATE Vehicle v SET weight = v.weight - 1 "
                 f"WHERE v.id = {credit}", self._key(credit)),
            ]
        second = self._peer(vehicle_id, self.config.scale // 2)
        return [
            ("UPDATE Vehicle v SET weight = v.weight + 1 "
             f"WHERE v.id = {vehicle_id}", self._key(vehicle_id)),
            ("SELECT v.weight FROM Vehicle v "
             f"WHERE v.id = {second}", self._key(second)),
        ]

    #: The same transaction kinds with bind parameters in place of the
    #: per-transaction constants (names are per-session, so every client
    #: can use the same ones).
    _PREPARED = {
        "read_scan": "SELECT v.id, v.weight FROM Vehicle v "
                     "WHERE v.weight > ? AND v.id < ?",
        "path_mfr": "SELECT v.id, v.manufacturer.name FROM Vehicle v "
                    "WHERE v.id = ?",
        "path_eng": "SELECT v.drivetrain.engine.cylinders FROM Vehicle v "
                    "WHERE v.id = ?",
        "write_bump": "UPDATE Vehicle v SET weight = v.weight + 1 "
                      "WHERE v.id = ?",
        "write_check": "SELECT v.weight FROM Vehicle v WHERE v.id = ?",
    }

    def _prepare_all(self, client: MoodClient) -> None:
        for name, sql in self._PREPARED.items():
            client.prepare(name, sql)

    def _prepared_calls(self, kind: str) -> list[tuple[str, list, object]]:
        vehicle_id = self.rng.randrange(self.config.scale)
        if kind == "read":
            low = self.rng.randrange(500, 2500)
            return [("read_scan", [low, vehicle_id + 10],
                     self._key(vehicle_id))]
        if kind == "path":
            second = self._peer(vehicle_id, 1)
            return [
                ("path_mfr", [vehicle_id], self._key(vehicle_id)),
                ("path_eng", [second], self._key(second)),
            ]
        if kind == "xfer":
            # Canonical shard order, same as _statements: opposite-order
            # acquisition deadlocks invisibly across shards.
            peer = (vehicle_id + 1) % self.config.scale
            n = max(self.config.shard_count, 1)
            debit, credit = sorted((vehicle_id, peer),
                                   key=lambda vid: vid % n)
            return [
                ("write_bump", [debit], self._key(debit)),
                ("write_bump", [credit], self._key(credit)),
            ]
        second = self._peer(vehicle_id, self.config.scale // 2)
        return [
            ("write_bump", [vehicle_id], self._key(vehicle_id)),
            ("write_check", [second], self._key(second)),
        ]


def run_workload(
    host: str, port: int, config: WorkloadConfig | None = None
) -> WorkloadReport:
    """Drive a running server with ``config.clients`` concurrent clients."""
    config = config or WorkloadConfig()
    workers = [
        _ClientWorker(host, port, config, index)
        for index in range(config.clients)
    ]
    started = time.monotonic()
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    elapsed = max(time.monotonic() - started, 1e-9)

    latencies = [ms for worker in workers for ms in worker.latencies_ms]
    committed = sum(worker.committed for worker in workers)
    aborted = sum(worker.aborted for worker in workers)
    attempts = committed + aborted
    return WorkloadReport(
        clients=config.clients,
        txns=attempts,
        committed=committed,
        aborted=aborted,
        retries=sum(worker.retries for worker in workers),
        elapsed_s=elapsed,
        throughput_tps=committed / elapsed,
        p50_ms=percentile(latencies, 0.50),
        p95_ms=percentile(latencies, 0.95),
        p99_ms=percentile(latencies, 0.99),
        abort_rate=aborted / attempts if attempts else 0.0,
        errors=[msg for worker in workers for msg in worker.errors],
    )
