"""Benchmark support: the paper's example database, statistics, workloads."""

from repro.bench.paperdb import (
    PAPER_ATTR_STATS,
    PAPER_CLASS_STATS,
    PAPER_REF_STATS,
    PAPER_SCHEMA_DDL,
    build_paper_database,
    paper_statistics,
)
from repro.bench.reporting import emit, table
from repro.bench.workloads import GeneratedQuery, random_query, workload

__all__ = [
    "GeneratedQuery",
    "PAPER_ATTR_STATS",
    "PAPER_CLASS_STATS",
    "PAPER_REF_STATS",
    "PAPER_SCHEMA_DDL",
    "build_paper_database",
    "emit",
    "paper_statistics",
    "random_query",
    "table",
    "workload",
]
