"""A bounded LRU cache of dereferenced objects (the deref fast path).

The paper's cost model charges one random I/O per pointer chase (Table 16's
F(P2) is 20,000 of them), and the executor originally paid that price --
plus a full decode -- every time the *same* OID was chased.  Clustering-
aware fetching and object caching are the classic OODB answers (Darmont &
Gruenwald's clustering survey); this module supplies the caching half:

* a bounded ``OrderedDict``-based LRU mapping OID -> (class name, state),
* invalidation hooks the object manager drives on insert/update/delete,
  on transaction abort and on crash/restart recovery,
* ``objcache.*`` registry counters (hits, misses, invalidations,
  evictions, batches) so EXPLAIN ANALYZE can surface cache behaviour.

Cached state is the *committed* state of the object: :meth:`get` hands out
a fresh ``MoodObject`` with a shallow copy of the state dict, so the common
mutate-then-``update_object`` pattern never pollutes the cache, and the
update itself invalidates the entry.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.model.objects import MoodObject
from repro.storage.oid import OID

#: Default number of objects kept resident.
DEFAULT_CAPACITY = 4096


class ObjectCacheStats:
    """Plain-int mirror of the cache counters (cheap to read in tests)."""

    __slots__ = ("hits", "misses", "invalidations", "evictions", "batches",
                 "batched_oids")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0
        self.batches = 0
        self.batched_oids = 0

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class _CacheCounters:
    """Pre-resolved registry counters for the cache's hot paths."""

    __slots__ = ("hits", "misses", "invalidations", "evictions", "batches",
                 "batched_oids", "batch_size")

    def __init__(self, component):
        self.hits = component.counter("hits")
        self.misses = component.counter("misses")
        self.invalidations = component.counter("invalidations")
        self.evictions = component.counter("evictions")
        self.batches = component.counter("batches")
        self.batched_oids = component.counter("batched_oids")
        self.batch_size = component.histogram("batch_size")


class ObjectCache:
    """Bounded LRU of ``OID -> (class_name, committed state)``."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("object cache needs capacity >= 1")
        self.capacity = capacity
        self.stats = ObjectCacheStats()
        self._entries: "OrderedDict[OID, tuple[str, dict]]" = OrderedDict()
        self._metrics: _CacheCounters | None = None
        # The cache is shared by every server session; the OrderedDict's
        # move_to_end/popitem pair is not safe under concurrent mutation.
        self._mutex = threading.RLock()

    def attach_metrics(self, component) -> None:
        """Mirror cache activity into registry counters (``objcache.*``)."""
        self._metrics = _CacheCounters(component)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, oid: OID) -> bool:
        return oid in self._entries

    # -- core protocol -------------------------------------------------------

    def get(self, oid: OID) -> MoodObject | None:
        """The cached object (a fresh wrapper over a copied state dict),
        or ``None``; counts the hit/miss either way."""
        with self._mutex:
            entry = self._entries.get(oid)
            if entry is None:
                self.stats.misses += 1
                if self._metrics is not None:
                    self._metrics.misses.inc()
                return None
            self._entries.move_to_end(oid)
            self.stats.hits += 1
            if self._metrics is not None:
                self._metrics.hits.inc()
            class_name, state = entry
            return MoodObject(oid, class_name, dict(state))

    def put(self, oid: OID, class_name: str, state: dict) -> None:
        """Remember the committed state just read for ``oid``.

        The cache keeps its own shallow copy of ``state`` so later caller
        mutations of the returned object cannot leak in.
        """
        with self._mutex:
            if oid in self._entries:
                self._entries.move_to_end(oid)
            self._entries[oid] = (class_name, dict(state))
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
                if self._metrics is not None:
                    self._metrics.evictions.inc()

    # -- invalidation --------------------------------------------------------

    def invalidate(self, oid: OID) -> None:
        with self._mutex:
            if self._entries.pop(oid, None) is not None:
                self.stats.invalidations += 1
                if self._metrics is not None:
                    self._metrics.invalidations.inc()

    def rehome(self, old_oid: OID, new_oid: OID, class_name: str) -> None:
        """Move a cached entry to the record's new identity after a
        relocation (``StorageFile.relocate``).  The state is unchanged --
        only the address moved -- so warmth is preserved instead of thrown
        away.  A resident entry under ``new_oid`` (recycled slot) is
        replaced."""
        with self._mutex:
            entry = self._entries.pop(old_oid, None)
            if entry is None:
                return
            self._entries.pop(new_oid, None)
            self._entries[new_oid] = (class_name, entry[1])

    def clear(self) -> int:
        """Drop everything (transaction abort, crash, restart recovery);
        returns the number of entries dropped so callers can journal
        invalidation storms."""
        with self._mutex:
            dropped = len(self._entries)
            self._entries.clear()
            if dropped:
                self.stats.invalidations += dropped
                if self._metrics is not None:
                    self._metrics.invalidations.inc(dropped)
            return dropped

    # -- batch accounting ----------------------------------------------------

    def note_batch(self, size: int) -> None:
        """Record one ``deref_many`` batch of ``size`` distinct OIDs."""
        with self._mutex:
            self.stats.batches += 1
            self.stats.batched_oids += size
        if self._metrics is not None:
            self._metrics.batches.inc()
            self._metrics.batched_oids.inc(size)
            self._metrics.batch_size.observe(size)

    # -- introspection -------------------------------------------------------

    def resident_oids(self) -> list[OID]:
        """OIDs currently cached, least- to most-recently used."""
        with self._mutex:
            return list(self._entries)
