"""Execution engine: objects, indexes, evaluation, physical joins, cursors."""

from repro.engine.cursor import AttributeCell, ObjectCursor, describe_value
from repro.engine.evaluator import ExpressionEvaluator, Row
from repro.engine.executor import Executor, TraceEvent
from repro.engine.indexes import BinaryJoinIndex, IndexManager
from repro.engine.joins import (
    PipelinedLeaf,
    backward_traversal,
    forward_traversal,
    hash_partition_join,
    indexed_join,
    nested_loop_join,
)
from repro.engine.objects import ObjectManager

__all__ = [
    "AttributeCell", "BinaryJoinIndex", "Executor", "ExpressionEvaluator",
    "IndexManager", "ObjectCursor", "ObjectManager", "PipelinedLeaf", "Row",
    "TraceEvent", "backward_traversal", "describe_value",
    "forward_traversal", "hash_partition_join", "indexed_join",
    "nested_loop_join",
]
