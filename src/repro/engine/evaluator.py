"""Run-time expression evaluation.

The MOODSQL interpreter evaluates arithmetic and Boolean expressions over
:class:`OperandDataType` operands (Section 2), traverses path expressions
by dereferencing stored references, and dispatches method calls through the
Function Manager (late binding).

Path semantics over set/list-valued steps are existential: a comparison is
true when *some* combination of reached values satisfies it -- the standard
OODB reading of ``v.children.age > 10``.  Null references prune the path;
comparisons against NULL are false.
"""

from __future__ import annotations

from typing import Any

from repro.core.errors import ExecutionError, TypeMismatchError
from repro.engine.objects import ObjectManager
from repro.functions.manager import FunctionManager
from repro.model.objects import MoodObject
from repro.model.operand import OperandDataType
from repro.sql.ast import (
    Between,
    BinOp,
    BoolOp,
    COMPARISON_OPS,
    Expr,
    InList,
    Literal,
    MethodCall,
    Not,
    Path,
    UnaryMinus,
)
from repro.storage.oid import OID

Row = dict[str, MoodObject]


class ExpressionEvaluator:
    """Evaluates MOODSQL expressions against a row of variable bindings."""

    def __init__(self, objects: ObjectManager,
                 functions: FunctionManager | None = None):
        self.objects = objects
        self.functions = functions

    # -- public API ---------------------------------------------------------

    def values(self, expr: Expr, row: Row) -> list[Any]:
        """All values an expression denotes (paths may fan out over
        set-valued steps); scalars come back as one-element lists."""
        return self._eval(expr, row)

    def value(self, expr: Expr, row: Row) -> Any:
        """The single value of an expression; multi-valued results stay a
        list (for projections of set-valued paths)."""
        result = self._eval(expr, row)
        if len(result) == 1:
            return result[0]
        return result

    def predicate(self, expr: Expr, row: Row) -> bool:
        """Truth of a predicate (existential over multi-valued paths;
        NULL-involving comparisons are false)."""
        try:
            result = self._eval(expr, row)
        except TypeMismatchError as exc:
            raise ExecutionError(f"ill-typed predicate {expr}: {exc}") from exc
        return any(value is True for value in result) if result else False

    # -- dispatch ------------------------------------------------------------

    def _eval(self, expr: Expr, row: Row) -> list[Any]:
        if isinstance(expr, Literal):
            return [expr.value]
        if isinstance(expr, Path):
            return self._eval_path(expr, row)
        if isinstance(expr, MethodCall):
            return self._eval_method(expr, row)
        if isinstance(expr, BinOp):
            if expr.op in COMPARISON_OPS:
                return self._eval_comparison(expr, row)
            return self._eval_arithmetic(expr, row)
        if isinstance(expr, UnaryMinus):
            return [
                None if value is None
                else (-OperandDataType.of(value)).value
                for value in self._eval(expr.operand, row)
            ]
        if isinstance(expr, Not):
            return [not self.predicate(expr.operand, row)]
        if isinstance(expr, BoolOp):
            if expr.op == "AND":
                return [all(self.predicate(item, row) for item in expr.items)]
            return [any(self.predicate(item, row) for item in expr.items)]
        if isinstance(expr, Between):
            values = self._eval(expr.expr, row)
            lows = self._eval(expr.low, row)
            highs = self._eval(expr.high, row)
            return [
                any(
                    value is not None and low is not None and high is not None
                    and low <= value <= high
                    for low in lows
                    for high in highs
                )
                for value in values
            ]
        if isinstance(expr, InList):
            values = self._eval(expr.expr, row)
            members = [v for item in expr.items for v in self._eval(item, row)]
            return [
                any(self._equal(value, member) for member in members)
                for value in values
            ]
        raise ExecutionError(f"cannot evaluate {expr!r}")

    # -- paths -------------------------------------------------------------

    def _eval_path(self, path: Path, row: Row) -> list[Any]:
        if path.var not in row:
            raise ExecutionError(f"unbound range variable {path.var!r}")
        current: list[Any] = [row[path.var]]
        for attribute in path.attrs:
            resolved = self._resolve_references(current)
            next_values: list[Any] = []
            for value in current:
                obj = self._as_object(value, resolved)
                if obj is None:
                    continue
                attr_value = obj.state.get(attribute)
                if isinstance(attr_value, (set, frozenset)):
                    next_values.extend(sorted(attr_value, key=repr))
                elif isinstance(attr_value, list):
                    next_values.extend(attr_value)
                else:
                    next_values.append(attr_value)
            current = next_values
        return current

    def _resolve_references(self, values: list[Any]) -> dict | None:
        """Batch-dereference one path step's OIDs (page-clustered) when the
        object manager's deref fast path is on; ``None`` means chase one at
        a time, each a separately charged random read."""
        if not getattr(self.objects, "cache_enabled", False):
            return None
        oids = [v for v in values if isinstance(v, OID) and not v.is_null]
        if len(oids) < 2:
            return None
        return self.objects.deref_many(oids)

    def _as_object(self, value: Any,
                   resolved: dict | None = None) -> MoodObject | None:
        if isinstance(value, MoodObject):
            return value
        if isinstance(value, OID):
            if value.is_null:
                return None
            if resolved is not None:
                return resolved[value]
            return self.objects.deref(value)
        if value is None:
            return None
        raise ExecutionError(
            f"cannot traverse an attribute of non-object value {value!r}"
        )

    # -- methods ------------------------------------------------------------

    def _eval_method(self, call: MethodCall, row: Row) -> list[Any]:
        if self.functions is None:
            raise ExecutionError(
                f"no function manager available for {call.method!r}"
            )
        receivers = self._eval_path(call.receiver, row)
        args = [self.value(arg, row) for arg in call.args]
        results: list[Any] = []
        for receiver in receivers:
            obj = self._as_object(receiver)
            if obj is None:
                continue
            results.append(
                self.functions.invoke(obj, call.method, args,
                                      resolve=self.objects.deref)
            )
        return results

    # -- comparisons and arithmetic --------------------------------------------

    def _eval_comparison(self, expr: BinOp, row: Row) -> list[bool]:
        lefts = self._eval(expr.left, row)
        rights = self._eval(expr.right, row)
        return [
            self._compare(expr.op, left, right)
            for left in lefts
            for right in rights
        ]

    def _compare(self, op: str, left: Any, right: Any) -> bool:
        if left is None or right is None:
            return False
        left = self._comparable(left)
        right = self._comparable(right)
        if isinstance(left, OID) or isinstance(right, OID):
            if op == "=":
                return left == right
            if op == "<>":
                return left != right
            raise ExecutionError(f"references only compare with = and <> ")
        result = OperandDataType.of(left)._compare(
            OperandDataType.of(right), op
        )
        return bool(result.value)

    @staticmethod
    def _comparable(value: Any) -> Any:
        if isinstance(value, MoodObject):
            return value.oid
        return value

    def _equal(self, left: Any, right: Any) -> bool:
        if left is None or right is None:
            return False
        return self._comparable(left) == self._comparable(right)

    def _eval_arithmetic(self, expr: BinOp, row: Row) -> list[Any]:
        lefts = self._eval(expr.left, row)
        rights = self._eval(expr.right, row)
        results: list[Any] = []
        for left in lefts:
            for right in rights:
                if left is None or right is None:
                    results.append(None)
                    continue
                operand = OperandDataType.of(left)._arith(
                    OperandDataType.of(right), expr.op
                )
                results.append(operand.value)
        return results
