"""Run-time expression evaluation.

The MOODSQL interpreter evaluates arithmetic and Boolean expressions over
:class:`OperandDataType` operands (Section 2), traverses path expressions
by dereferencing stored references, and dispatches method calls through the
Function Manager (late binding).

Path semantics over set/list-valued steps are existential: a comparison is
true when *some* combination of reached values satisfies it -- the standard
OODB reading of ``v.children.age > 10``.  Null references prune the path;
comparisons against NULL are false.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterable, Sequence

from repro.core.errors import ExecutionError, TypeMismatchError
from repro.engine.batch import batch_deref_enabled
from repro.engine.objects import ObjectManager
from repro.functions.manager import FunctionManager
from repro.model.objects import MoodObject
from repro.model.operand import OperandDataType
from repro.sql.ast import (
    Between,
    BinOp,
    BoolOp,
    COMPARISON_OPS,
    Expr,
    InList,
    Literal,
    MethodCall,
    Not,
    Path,
    UnaryMinus,
)
from repro.storage.oid import OID

Row = dict[str, MoodObject]


class ExpressionEvaluator:
    """Evaluates MOODSQL expressions against a row of variable bindings."""

    def __init__(self, objects: ObjectManager,
                 functions: FunctionManager | None = None):
        self.objects = objects
        self.functions = functions

    # -- public API ---------------------------------------------------------

    def values(self, expr: Expr, row: Row) -> list[Any]:
        """All values an expression denotes (paths may fan out over
        set-valued steps); scalars come back as one-element lists."""
        return self._eval(expr, row)

    def value(self, expr: Expr, row: Row) -> Any:
        """The single value of an expression; multi-valued results stay a
        list (for projections of set-valued paths)."""
        result = self._eval(expr, row)
        if len(result) == 1:
            return result[0]
        return result

    def predicate(self, expr: Expr, row: Row) -> bool:
        """Truth of a predicate (existential over multi-valued paths;
        NULL-involving comparisons are false)."""
        try:
            result = self._eval(expr, row)
        except TypeMismatchError as exc:
            raise ExecutionError(f"ill-typed predicate {expr}: {exc}") from exc
        return any(value is True for value in result) if result else False

    # -- batch API ----------------------------------------------------------

    def filter_batch(
        self, predicates: Iterable[Expr], rows: Sequence[Row],
    ) -> list[Row]:
        """Rows satisfying every predicate -- the batch form of SELECT.

        With the batch gate on, the paths the predicates chase are
        prefetched across the whole batch first (one page-clustered
        ``deref_many`` per path step); evaluation itself stays per-row,
        so results are bit-identical to the one-at-a-time path.
        """
        predicates = tuple(predicates)
        if not predicates:
            return list(rows)
        self.prefetch(predicates, rows)
        return [
            row for row in rows
            if all(self.predicate(p, row) for p in predicates)
        ]

    def values_batch(self, expr: Expr, rows: Sequence[Row]) -> list[Any]:
        """Per-row :meth:`value` over a whole batch (sort/partition keys),
        prefetching the expression's paths batch-at-a-time first."""
        self.prefetch((expr,), rows)
        return [self.value(expr, row) for row in rows]

    def prefetch(
        self, exprs: Iterable[Expr], rows: Sequence[Row],
    ) -> None:
        """Warm the object cache for every path step of ``exprs`` across
        ``rows``: each step's reference OIDs are collected over the whole
        batch and dereferenced with one page-clustered ``deref_many``
        call, so subsequent per-row evaluation never issues a random
        chase.  A no-op (and charge-free) when the batch gate is off.

        Deliberately conservative: unbound variables, null references and
        non-object values are skipped here -- per-row evaluation is the
        single place errors and NULL semantics are decided.
        """
        if len(rows) < 2 or not batch_deref_enabled(self.objects):
            return
        paths: list[Path] = []
        for expr in exprs:
            _collect_paths(expr, paths)
        for path in paths:
            frontier: list[Any] = [
                row[path.var] for row in rows if path.var in row
            ]
            for attribute in path.attrs:
                oids = [
                    v for v in frontier
                    if isinstance(v, OID) and not v.is_null
                ]
                fetched = self.objects.deref_many(oids) if oids else {}
                next_frontier: list[Any] = []
                for value in frontier:
                    if isinstance(value, MoodObject):
                        obj = value
                    elif isinstance(value, OID) and value in fetched:
                        obj = fetched[value]
                    else:
                        continue
                    attr_value = obj.state.get(attribute)
                    if isinstance(attr_value, (set, frozenset, list)):
                        next_frontier.extend(attr_value)
                    else:
                        next_frontier.append(attr_value)
                frontier = next_frontier
                if not frontier:
                    break

    # -- dispatch ------------------------------------------------------------

    def _eval(self, expr: Expr, row: Row) -> list[Any]:
        if isinstance(expr, Literal):
            return [expr.value]
        if isinstance(expr, Path):
            return self._eval_path(expr, row)
        if isinstance(expr, MethodCall):
            return self._eval_method(expr, row)
        if isinstance(expr, BinOp):
            if expr.op in COMPARISON_OPS:
                return self._eval_comparison(expr, row)
            return self._eval_arithmetic(expr, row)
        if isinstance(expr, UnaryMinus):
            return [
                None if value is None
                else (-OperandDataType.of(value)).value
                for value in self._eval(expr.operand, row)
            ]
        if isinstance(expr, Not):
            return [not self.predicate(expr.operand, row)]
        if isinstance(expr, BoolOp):
            if expr.op == "AND":
                return [all(self.predicate(item, row) for item in expr.items)]
            return [any(self.predicate(item, row) for item in expr.items)]
        if isinstance(expr, Between):
            values = self._eval(expr.expr, row)
            lows = self._eval(expr.low, row)
            highs = self._eval(expr.high, row)
            return [
                any(
                    value is not None and low is not None and high is not None
                    and low <= value <= high
                    for low in lows
                    for high in highs
                )
                for value in values
            ]
        if isinstance(expr, InList):
            values = self._eval(expr.expr, row)
            members = [v for item in expr.items for v in self._eval(item, row)]
            return [
                any(self._equal(value, member) for member in members)
                for value in values
            ]
        raise ExecutionError(f"cannot evaluate {expr!r}")

    # -- paths -------------------------------------------------------------

    def _eval_path(self, path: Path, row: Row) -> list[Any]:
        if path.var not in row:
            raise ExecutionError(f"unbound range variable {path.var!r}")
        current: list[Any] = [row[path.var]]
        for attribute in path.attrs:
            resolved = self._resolve_references(current)
            next_values: list[Any] = []
            for value in current:
                obj = self._as_object(value, resolved)
                if obj is None:
                    continue
                attr_value = obj.state.get(attribute)
                if isinstance(attr_value, (set, frozenset)):
                    next_values.extend(sorted(attr_value, key=repr))
                elif isinstance(attr_value, list):
                    next_values.extend(attr_value)
                else:
                    next_values.append(attr_value)
            current = next_values
        return current

    def _resolve_references(self, values: list[Any]) -> dict | None:
        """Batch-dereference one path step's OIDs (page-clustered) when the
        object manager's deref fast path is on; ``None`` means chase one at
        a time, each a separately charged random read."""
        if not batch_deref_enabled(self.objects):
            return None
        oids = [v for v in values if isinstance(v, OID) and not v.is_null]
        if len(oids) < 2:
            return None
        return self.objects.deref_many(oids)

    def _as_object(self, value: Any,
                   resolved: dict | None = None) -> MoodObject | None:
        if isinstance(value, MoodObject):
            return value
        if isinstance(value, OID):
            if value.is_null:
                return None
            if resolved is not None:
                return resolved[value]
            return self.objects.deref(value)
        if value is None:
            return None
        raise ExecutionError(
            f"cannot traverse an attribute of non-object value {value!r}"
        )

    # -- methods ------------------------------------------------------------

    def _eval_method(self, call: MethodCall, row: Row) -> list[Any]:
        if self.functions is None:
            raise ExecutionError(
                f"no function manager available for {call.method!r}"
            )
        receivers = self._eval_path(call.receiver, row)
        args = [self.value(arg, row) for arg in call.args]
        results: list[Any] = []
        for receiver in receivers:
            obj = self._as_object(receiver)
            if obj is None:
                continue
            results.append(
                self.functions.invoke(obj, call.method, args,
                                      resolve=self.objects.deref)
            )
        return results

    # -- comparisons and arithmetic --------------------------------------------

    def _eval_comparison(self, expr: BinOp, row: Row) -> list[bool]:
        lefts = self._eval(expr.left, row)
        rights = self._eval(expr.right, row)
        return [
            self._compare(expr.op, left, right)
            for left in lefts
            for right in rights
        ]

    def _compare(self, op: str, left: Any, right: Any) -> bool:
        if left is None or right is None:
            return False
        left = self._comparable(left)
        right = self._comparable(right)
        if isinstance(left, OID) or isinstance(right, OID):
            if op == "=":
                return left == right
            if op == "<>":
                return left != right
            raise ExecutionError(f"references only compare with = and <> ")
        result = OperandDataType.of(left)._compare(
            OperandDataType.of(right), op
        )
        return bool(result.value)

    @staticmethod
    def _comparable(value: Any) -> Any:
        if isinstance(value, MoodObject):
            return value.oid
        return value

    def _equal(self, left: Any, right: Any) -> bool:
        if left is None or right is None:
            return False
        return self._comparable(left) == self._comparable(right)

    def _eval_arithmetic(self, expr: BinOp, row: Row) -> list[Any]:
        lefts = self._eval(expr.left, row)
        rights = self._eval(expr.right, row)
        results: list[Any] = []
        for left in lefts:
            for right in rights:
                if left is None or right is None:
                    results.append(None)
                    continue
                operand = OperandDataType.of(left)._arith(
                    OperandDataType.of(right), expr.op
                )
                results.append(operand.value)
        return results


def _collect_paths(node: Any, out: list[Path]) -> None:
    """Every :class:`Path` reachable in an expression tree (including
    method-call receivers and arguments), for batch prefetching."""
    if isinstance(node, Path):
        out.append(node)
        return
    if isinstance(node, (tuple, list)):
        for item in node:
            _collect_paths(item, out)
        return
    if dataclasses.is_dataclass(node) and not isinstance(node, type):
        for field in dataclasses.fields(node):
            _collect_paths(getattr(node, field.name), out)
