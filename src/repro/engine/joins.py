"""Physical implementations of the four implicit-join methods (Section 6).

All four produce identical rows; they differ in *how the I/O happens*,
which the simulated disk accounts:

* **forward traversal** chases each stored reference with a random read of
  the target object (pipelined into the right-hand leaf's predicates);
* **backward traversal** scans the referencing class's extent
  sequentially, probing the already-materialised right side;
* **binary join index** probes the precomputed pair index, then fetches;
* **pointer-based hash partition** first partitions the referencing side
  on the pointer field (charged as the extra sequential passes of the
  3(b+b') hybrid-hash structure), then chases pointers partition by
  partition.

When set-oriented execution is on (``objects.batch_enabled``, requiring
the deref cache), the kernels collect their probe OIDs first and fetch
them through :meth:`~repro.engine.objects.ObjectManager.deref_many` --
one page-clustered batch per join level instead of one random chase per
reference -- and :func:`fused_traversal` runs a whole *chain* of forward
traversals as one set operation, dereferencing each hop's deduplicated
frontier with a single batched call.  With either switch off every chase
is charged individually, exactly as the paper's cost formulas price it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.algebra.collection_ops import _reference_oids
from repro.core.errors import ExecutionError
from repro.engine.batch import batch_deref_enabled
from repro.engine.evaluator import ExpressionEvaluator, Row
from repro.engine.indexes import BinaryJoinIndex
from repro.engine.objects import ObjectManager
from repro.sql.ast import Expr


@dataclass
class PipelinedLeaf:
    """A right/left-hand side the join can evaluate object-at-a-time:
    an extent access plus residual predicates."""

    var: str
    class_name: str
    include: tuple[str, ...]
    predicates: tuple[Expr, ...]


#: Single gate for the set-oriented deref fast path (see engine.batch).
_batchable = batch_deref_enabled


def _chase(
    left_rows: list[Row],
    oids_of,
    objects: ObjectManager,
) -> list[tuple[Row, list]]:
    """Dereference every row's reference OIDs; returns ``(row, objects)``
    pairs in row order.

    On the fast path the distinct OIDs of the whole probe side are fetched
    in one page-clustered batch (``deref_many``); otherwise each chase is
    a separately charged random read, as the Table 16 formula prices it.
    """
    per_row = [(row, oids_of(row)) for row in left_rows]
    if _batchable(objects):
        fetched = objects.deref_many(
            oid for _, oids in per_row for oid in oids
        )
        return [(row, [fetched[oid] for oid in oids])
                for row, oids in per_row]
    return [(row, [objects.deref(oid) for oid in oids])
            for row, oids in per_row]


def forward_traversal(
    left_rows: list[Row],
    left_var: str,
    attr: str,
    right: PipelinedLeaf | list[Row],
    right_var: str,
    objects: ObjectManager,
    evaluator: ExpressionEvaluator,
) -> list[Row]:
    result: list[Row] = []
    if isinstance(right, PipelinedLeaf):
        chased = _chase(
            left_rows,
            lambda row: _reference_oids(row[left_var].state.get(attr)),
            objects,
        )
        for row, targets in chased:
            for obj in targets:
                if right.include and obj.class_name not in right.include:
                    continue
                probe = {**row, right_var: obj}
                if all(evaluator.predicate(p, probe)
                       for p in right.predicates):
                    result.append(probe)
        return result
    by_oid: dict = {}
    for row in right:
        by_oid.setdefault(row[right_var].oid, []).append(row)
    for row in left_rows:
        for oid in _reference_oids(row[left_var].state.get(attr)):
            for right_row in by_oid.get(oid, ()):
                result.append({**row, **right_row})
    return result


@dataclass(frozen=True)
class TraversalHop:
    """One fused forward-traversal step: chase ``left_var.attr`` into
    ``right_var``, keeping objects of the ``include`` closure that pass
    the hop's residual ``predicates`` (the pipelined leaf's SELECT)."""

    left_var: str
    attr: str
    right_var: str
    class_name: str
    include: tuple[str, ...]
    predicates: tuple[Expr, ...]


def fused_traversal(
    left_rows: list[Row],
    hops: tuple[TraversalHop, ...],
    objects: ObjectManager,
    evaluator: ExpressionEvaluator,
    on_hop=None,
) -> list[Row]:
    """Run a chain of forward traversals as one set operation.

    Per hop the frontier -- every reference OID reachable from the
    surviving rows -- is collected first and dereferenced with a single
    page-clustered :meth:`deref_many` call (deduplicated, so an object
    shared by many rows is fetched once); include-filter and residual
    predicates are then applied row by row against the warm cache.  When
    the batch gate is off each chase is a separately charged read in row
    order, matching the unfused forward traversal exactly.

    ``on_hop(hop, rows_in, frontier_size, rows_out)`` is invoked after
    each hop for span accounting (batch sizes in EXPLAIN ANALYZE) and is
    the seam the invalidation tests use to interleave DDL/abort/crash
    between hops.
    """
    rows = list(left_rows)
    for hop in hops:
        per_row = [
            (row, _reference_oids(row[hop.left_var].state.get(hop.attr)))
            for row in rows
        ]
        if _batchable(objects):
            frontier = list(dict.fromkeys(
                oid for _, oids in per_row for oid in oids
            ))
            fetched = objects.deref_many(frontier)
            resolve = fetched.__getitem__
        else:
            frontier = [oid for _, oids in per_row for oid in oids]
            resolve = objects.deref
        next_rows: list[Row] = []
        for row, oids in per_row:
            for oid in oids:
                obj = resolve(oid)
                if hop.include and obj.class_name not in hop.include:
                    continue
                probe = {**row, hop.right_var: obj}
                if all(evaluator.predicate(p, probe)
                       for p in hop.predicates):
                    next_rows.append(probe)
        if on_hop is not None:
            on_hop(hop, len(rows), len(frontier), len(next_rows))
        rows = next_rows
    return rows


def backward_traversal(
    left: PipelinedLeaf | list[Row],
    left_var: str,
    attr: str,
    right_rows: list[Row],
    right_var: str,
    objects: ObjectManager,
    evaluator: ExpressionEvaluator,
) -> list[Row]:
    by_oid: dict = {}
    for row in right_rows:
        by_oid.setdefault(row[right_var].oid, []).append(row)
    result: list[Row] = []
    if isinstance(left, PipelinedLeaf):
        # The defining property: a sequential scan over C's extent.  The
        # scan is materialised as one batch so the residual predicates
        # can prefetch any paths they chase across the whole extent.
        scanned = [
            {left.var: obj}
            for obj in objects.iter_extent(left.class_name,
                                           include=left.include or None)
        ]
        for row in evaluator.filter_batch(left.predicates, scanned):
            obj = row[left.var]
            for oid in _reference_oids(obj.state.get(attr)):
                for right_row in by_oid.get(oid, ()):
                    result.append({**row, **right_row})
        return result
    for row in left:
        for oid in _reference_oids(row[left_var].state.get(attr)):
            for right_row in by_oid.get(oid, ()):
                result.append({**row, **right_row})
    return result


def indexed_join(
    left_rows: list[Row],
    left_var: str,
    join_index: BinaryJoinIndex,
    right: PipelinedLeaf | list[Row],
    right_var: str,
    objects: ObjectManager,
    evaluator: ExpressionEvaluator,
) -> list[Row]:
    result: list[Row] = []
    if isinstance(right, PipelinedLeaf):
        chased = _chase(
            left_rows,
            lambda row: join_index.rights_of(row[left_var].oid),
            objects,
        )
        for row, targets in chased:
            for obj in targets:
                if right.include and obj.class_name not in right.include:
                    continue
                probe = {**row, right_var: obj}
                if all(evaluator.predicate(p, probe)
                       for p in right.predicates):
                    result.append(probe)
        return result
    by_oid: dict = {}
    for row in right:
        by_oid.setdefault(row[right_var].oid, []).append(row)
    for row in left_rows:
        for oid in join_index.rights_of(row[left_var].oid):
            for right_row in by_oid.get(oid, ()):
                result.append({**row, **right_row})
    return result


def hash_partition_join(
    left_rows: list[Row],
    left_var: str,
    attr: str,
    right: PipelinedLeaf | list[Row],
    right_var: str,
    objects: ObjectManager,
    evaluator: ExpressionEvaluator,
    num_partitions: int | None = None,
) -> list[Row]:
    """Partition the referencing side on the pointer field, then chase
    pointers partition by partition (clustering the random reads)."""
    if num_partitions is None:
        num_partitions = max(1, min(32, int(math.sqrt(len(left_rows))) or 1))
    partitions: dict[int, list[tuple]] = {}
    for row in left_rows:
        for oid in _reference_oids(row[left_var].state.get(attr)):
            partitions.setdefault(hash(oid) % num_partitions, []).append(
                (oid, row)
            )
    _charge_partition_passes(objects, len(left_rows))
    result: list[Row] = []
    if isinstance(right, PipelinedLeaf):
        for bucket in sorted(partitions):
            pairs = sorted(partitions[bucket], key=lambda pair: pair[0])
            # Each partition's chases are already clustered by the
            # pointer sort; the batch gate collapses them further into
            # one deref_many per partition.
            fetched = (
                objects.deref_many(oid for oid, _ in pairs)
                if _batchable(objects) else None
            )
            for oid, row in pairs:
                obj = fetched[oid] if fetched is not None \
                    else objects.deref(oid)
                if right.include and obj.class_name not in right.include:
                    continue
                probe = {**row, right_var: obj}
                if all(evaluator.predicate(p, probe)
                       for p in right.predicates):
                    result.append(probe)
        return result
    by_oid: dict = {}
    for row in right:
        by_oid.setdefault(row[right_var].oid, []).append(row)
    for bucket in sorted(partitions):
        for oid, row in partitions[bucket]:
            for right_row in by_oid.get(oid, ()):
                result.append({**row, **right_row})
    return result


def _charge_partition_passes(objects: ObjectManager, num_rows: int) -> None:
    """The extra write+read passes of hash partitioning, charged
    sequentially (the 3(b+b') term beyond the initial scan)."""
    disk = objects.storage.disk
    block = disk.params.block_size
    approx_record = 128
    pages = max(1, math.ceil(num_rows * approx_record / block))
    disk.stats.charge_sequential_write(disk.params, pages)
    disk.stats.charge_sequential_read(disk.params, pages)


def nested_loop_join(
    left_rows: list[Row],
    right_rows: list[Row],
    predicate: Expr | None,
    evaluator: ExpressionEvaluator,
) -> list[Row]:
    candidates: list[Row] = []
    for left_row in left_rows:
        for right_row in right_rows:
            overlap = set(left_row) & set(right_row)
            if overlap:
                raise ExecutionError(
                    f"join sides share variables {sorted(overlap)}"
                )
            candidates.append({**left_row, **right_row})
    if predicate is None:
        return candidates
    return evaluator.filter_batch((predicate,), candidates)
