"""Physical implementations of the four implicit-join methods (Section 6).

All four produce identical rows; they differ in *how the I/O happens*,
which the simulated disk accounts:

* **forward traversal** chases each stored reference with a random read of
  the target object (pipelined into the right-hand leaf's predicates);
* **backward traversal** scans the referencing class's extent
  sequentially, probing the already-materialised right side;
* **binary join index** probes the precomputed pair index, then fetches;
* **pointer-based hash partition** first partitions the referencing side
  on the pointer field (charged as the extra sequential passes of the
  3(b+b') hybrid-hash structure), then chases pointers partition by
  partition.

When the object manager's deref cache is enabled, forward traversal and
the indexed join collect their probe OIDs first and fetch them through
:meth:`~repro.engine.objects.ObjectManager.deref_many` -- one page-
clustered batch instead of one random chase per reference.  With the
cache disabled every chase is charged individually, exactly as the
paper's cost formulas price it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.algebra.collection_ops import _reference_oids
from repro.core.errors import ExecutionError
from repro.engine.evaluator import ExpressionEvaluator, Row
from repro.engine.indexes import BinaryJoinIndex
from repro.engine.objects import ObjectManager
from repro.sql.ast import Expr


@dataclass
class PipelinedLeaf:
    """A right/left-hand side the join can evaluate object-at-a-time:
    an extent access plus residual predicates."""

    var: str
    class_name: str
    include: tuple[str, ...]
    predicates: tuple[Expr, ...]


def _batchable(objects) -> bool:
    """Does the store support the cached, page-clustered deref fast path?
    (Disabled caches fall back to per-chase charging, the paper's model.)"""
    return getattr(objects, "cache_enabled", False) \
        and hasattr(objects, "deref_many")


def _chase(
    left_rows: list[Row],
    oids_of,
    objects: ObjectManager,
) -> list[tuple[Row, list]]:
    """Dereference every row's reference OIDs; returns ``(row, objects)``
    pairs in row order.

    On the fast path the distinct OIDs of the whole probe side are fetched
    in one page-clustered batch (``deref_many``); otherwise each chase is
    a separately charged random read, as the Table 16 formula prices it.
    """
    per_row = [(row, oids_of(row)) for row in left_rows]
    if _batchable(objects):
        fetched = objects.deref_many(
            oid for _, oids in per_row for oid in oids
        )
        return [(row, [fetched[oid] for oid in oids])
                for row, oids in per_row]
    return [(row, [objects.deref(oid) for oid in oids])
            for row, oids in per_row]


def forward_traversal(
    left_rows: list[Row],
    left_var: str,
    attr: str,
    right: PipelinedLeaf | list[Row],
    right_var: str,
    objects: ObjectManager,
    evaluator: ExpressionEvaluator,
) -> list[Row]:
    result: list[Row] = []
    if isinstance(right, PipelinedLeaf):
        chased = _chase(
            left_rows,
            lambda row: _reference_oids(row[left_var].state.get(attr)),
            objects,
        )
        for row, targets in chased:
            for obj in targets:
                if right.include and obj.class_name not in right.include:
                    continue
                probe = {**row, right_var: obj}
                if all(evaluator.predicate(p, probe)
                       for p in right.predicates):
                    result.append(probe)
        return result
    by_oid: dict = {}
    for row in right:
        by_oid.setdefault(row[right_var].oid, []).append(row)
    for row in left_rows:
        for oid in _reference_oids(row[left_var].state.get(attr)):
            for right_row in by_oid.get(oid, ()):
                result.append({**row, **right_row})
    return result


def backward_traversal(
    left: PipelinedLeaf | list[Row],
    left_var: str,
    attr: str,
    right_rows: list[Row],
    right_var: str,
    objects: ObjectManager,
    evaluator: ExpressionEvaluator,
) -> list[Row]:
    by_oid: dict = {}
    for row in right_rows:
        by_oid.setdefault(row[right_var].oid, []).append(row)
    result: list[Row] = []
    if isinstance(left, PipelinedLeaf):
        # The defining property: a sequential scan over C's extent.
        for obj in objects.iter_extent(left.class_name,
                                       include=left.include or None):
            row = {left.var: obj}
            if not all(evaluator.predicate(p, row) for p in left.predicates):
                continue
            for oid in _reference_oids(obj.state.get(attr)):
                for right_row in by_oid.get(oid, ()):
                    result.append({**row, **right_row})
        return result
    for row in left:
        for oid in _reference_oids(row[left_var].state.get(attr)):
            for right_row in by_oid.get(oid, ()):
                result.append({**row, **right_row})
    return result


def indexed_join(
    left_rows: list[Row],
    left_var: str,
    join_index: BinaryJoinIndex,
    right: PipelinedLeaf | list[Row],
    right_var: str,
    objects: ObjectManager,
    evaluator: ExpressionEvaluator,
) -> list[Row]:
    result: list[Row] = []
    if isinstance(right, PipelinedLeaf):
        chased = _chase(
            left_rows,
            lambda row: join_index.rights_of(row[left_var].oid),
            objects,
        )
        for row, targets in chased:
            for obj in targets:
                if right.include and obj.class_name not in right.include:
                    continue
                probe = {**row, right_var: obj}
                if all(evaluator.predicate(p, probe)
                       for p in right.predicates):
                    result.append(probe)
        return result
    by_oid: dict = {}
    for row in right:
        by_oid.setdefault(row[right_var].oid, []).append(row)
    for row in left_rows:
        for oid in join_index.rights_of(row[left_var].oid):
            for right_row in by_oid.get(oid, ()):
                result.append({**row, **right_row})
    return result


def hash_partition_join(
    left_rows: list[Row],
    left_var: str,
    attr: str,
    right: PipelinedLeaf | list[Row],
    right_var: str,
    objects: ObjectManager,
    evaluator: ExpressionEvaluator,
    num_partitions: int | None = None,
) -> list[Row]:
    """Partition the referencing side on the pointer field, then chase
    pointers partition by partition (clustering the random reads)."""
    if num_partitions is None:
        num_partitions = max(1, min(32, int(math.sqrt(len(left_rows))) or 1))
    partitions: dict[int, list[tuple]] = {}
    for row in left_rows:
        for oid in _reference_oids(row[left_var].state.get(attr)):
            partitions.setdefault(hash(oid) % num_partitions, []).append(
                (oid, row)
            )
    _charge_partition_passes(objects, len(left_rows))
    result: list[Row] = []
    if isinstance(right, PipelinedLeaf):
        for bucket in sorted(partitions):
            for oid, row in sorted(partitions[bucket],
                                   key=lambda pair: pair[0]):
                obj = objects.deref(oid)
                if right.include and obj.class_name not in right.include:
                    continue
                probe = {**row, right_var: obj}
                if all(evaluator.predicate(p, probe)
                       for p in right.predicates):
                    result.append(probe)
        return result
    by_oid: dict = {}
    for row in right:
        by_oid.setdefault(row[right_var].oid, []).append(row)
    for bucket in sorted(partitions):
        for oid, row in partitions[bucket]:
            for right_row in by_oid.get(oid, ()):
                result.append({**row, **right_row})
    return result


def _charge_partition_passes(objects: ObjectManager, num_rows: int) -> None:
    """The extra write+read passes of hash partitioning, charged
    sequentially (the 3(b+b') term beyond the initial scan)."""
    disk = objects.storage.disk
    block = disk.params.block_size
    approx_record = 128
    pages = max(1, math.ceil(num_rows * approx_record / block))
    disk.stats.charge_sequential_write(disk.params, pages)
    disk.stats.charge_sequential_read(disk.params, pages)


def nested_loop_join(
    left_rows: list[Row],
    right_rows: list[Row],
    predicate: Expr | None,
    evaluator: ExpressionEvaluator,
) -> list[Row]:
    result: list[Row] = []
    for left_row in left_rows:
        for right_row in right_rows:
            overlap = set(left_row) & set(right_row)
            if overlap:
                raise ExecutionError(
                    f"join sides share variables {sorted(overlap)}"
                )
            merged = {**left_row, **right_row}
            if predicate is None or evaluator.predicate(predicate, merged):
                result.append(merged)
    return result
