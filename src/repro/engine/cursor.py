"""The kernel<->MoodView cursor protocol (Section 9.4).

*"A cursor like mechanism which exists commonly in RDBMSs is designed for
displaying objects. ... The kernel gets the stored representation of the
object from the database and returns a pointer to a buffer area each
element of which specifies a name, a type and a value of the object's
attributes. ... It is also possible to sequence back and forth through the
returned objects using the cursor functions provided by the kernel."*
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.catalog import Catalog
from repro.core.errors import ExecutionError
from repro.model.objects import MoodObject
from repro.storage.oid import OID


@dataclass(frozen=True)
class AttributeCell:
    """One element of the cursor's buffer area: name, type, value."""

    name: str
    type_name: str
    value: object

    def __str__(self) -> str:
        return f"{self.name} : {self.type_name} = {self.value!r}"


class ObjectCursor:
    """Back-and-forth cursor over a sequence of objects."""

    def __init__(self, catalog: Catalog, objects: list[MoodObject]):
        self.catalog = catalog
        self._objects = objects
        self._position = -1  # before the first object

    def __len__(self) -> int:
        return len(self._objects)

    @property
    def position(self) -> int:
        return self._position

    def next(self) -> MoodObject:
        if self._position + 1 >= len(self._objects):
            raise ExecutionError("cursor is at the last object")
        self._position += 1
        return self._objects[self._position]

    def prev(self) -> MoodObject:
        if self._position <= 0:
            raise ExecutionError("cursor is at the first object")
        self._position -= 1
        return self._objects[self._position]

    def has_next(self) -> bool:
        return self._position + 1 < len(self._objects)

    def has_prev(self) -> bool:
        return self._position > 0

    def current(self) -> MoodObject:
        if not 0 <= self._position < len(self._objects):
            raise ExecutionError("cursor is not positioned on an object")
        return self._objects[self._position]

    def buffer(self) -> list[AttributeCell]:
        """The (name, type, value) triples of the current object, in the
        class's attribute order -- what MoodView synthesises widgets from."""
        obj = self.current()
        cells = []
        for attribute in self.catalog.hierarchy.all_attributes(obj.class_name):
            cells.append(
                AttributeCell(
                    name=attribute.name,
                    type_name=attribute.type_name,
                    value=obj.state.get(attribute.name),
                )
            )
        return cells

    def rewind(self) -> None:
        self._position = -1


def describe_value(catalog: Catalog, value) -> str:
    """Run-time type of a value, for MoodView's dynamic type checks."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "Boolean"
    if isinstance(value, int):
        return "Integer"
    if isinstance(value, float):
        return "Float"
    if isinstance(value, str):
        return "Char" if len(value) == 1 else "String"
    if isinstance(value, OID):
        return "Reference"
    if isinstance(value, (set, frozenset)):
        return "Set"
    if isinstance(value, list):
        return "List"
    if isinstance(value, dict):
        return "Tuple"
    if isinstance(value, MoodObject):
        return value.class_name
    return type(value).__name__
