"""Plan execution.

Interprets the optimizer's access plans over the object manager, charging
all I/O to the simulated disk so estimated and measured costs can be
compared.  Emits a trace of operator events in execution order -- SELECT
before JOIN before PROJECT before UNION, the Figure 7.2 discipline -- which
the F71/F72 benchmarks print.

When a :class:`~repro.obs.spans.SpanRecorder` is attached, every plan node
additionally opens a structured span (rows out, charged I/O, wall time)
nested to mirror the plan tree; the flat trace is kept as-is, and each
trace event is also attached to the span open at emission time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.catalog.catalog import Catalog
from repro.core.errors import ExecutionError
from repro.engine.batch import RowBatch, batch_deref_enabled
from repro.engine.evaluator import ExpressionEvaluator, Row
from repro.engine.indexes import IndexManager
from repro.engine.joins import (
    PipelinedLeaf,
    backward_traversal,
    forward_traversal,
    fused_traversal,
    hash_partition_join,
    nested_loop_join,
)
from repro.optimizer.plan import (
    BindNode,
    DupElimNode,
    FusedTraversalNode,
    IndSelNode,
    JoinNode,
    NamedRef,
    PartitionNode,
    PlanNode,
    ProjectNode,
    SelectNode,
    SortNode,
    UnionNode,
)
from repro.optimizer.planner import QueryPlan
from repro.sql.ast import Between, BinOp, Expr, Literal
from repro.sql.rewrite import referenced_variables


@dataclass
class TraceEvent:
    operator: str
    detail: str = ""

    def __str__(self) -> str:
        return f"{self.operator}({self.detail})" if self.detail \
            else self.operator


@dataclass
class Executor:
    """Interprets access plans into rows of variable bindings.

    Operators exchange :class:`RowBatch`es: each plan node consumes and
    produces a whole batch, so predicates prefetch their paths across
    the batch and traversals dereference per-hop frontiers through one
    page-clustered ``deref_many`` call (when ``objects.batch_enabled``
    and the deref cache allow; otherwise execution degrades to the
    paper's one-chase-one-read behaviour row by row).
    """

    objects: Any
    evaluator: ExpressionEvaluator
    catalog: Catalog
    index_manager: IndexManager | None = None
    trace: list[TraceEvent] = field(default_factory=list)
    spans: Any = None    # optional repro.obs.spans.SpanRecorder
    _temp_cache: dict[str, RowBatch] = field(default_factory=dict)
    _output_vars: frozenset[str] = frozenset()

    def execute_plan(self, plan: QueryPlan) -> list[Row]:
        self._temp_cache = {}
        self._output_vars = frozenset(plan.output_vars)
        return self._exec(plan.root).rows

    def _emit(self, operator: str, detail: str = "") -> None:
        event = TraceEvent(operator, detail)
        self.trace.append(event)
        if self.spans is not None:
            self.spans.event(str(event))

    # -- dispatch ------------------------------------------------------------

    def _exec(self, node: PlanNode) -> RowBatch:
        if self.spans is None:
            return self._dispatch(node)
        from repro.obs.spans import describe_node

        operator, detail = describe_node(node)
        with self.spans.span(operator, detail, node) as span:
            rows = self._dispatch(node)
            span.rows_out = len(rows)
            return rows

    def _dispatch(self, node: PlanNode) -> RowBatch:
        if isinstance(node, BindNode):
            return self._exec_bind(node)
        if isinstance(node, IndSelNode):
            return self._exec_indsel(node)
        if isinstance(node, SelectNode):
            return self._exec_select(node)
        if isinstance(node, NamedRef):
            return self._exec_named(node)
        if isinstance(node, FusedTraversalNode):
            return self._exec_fused(node)
        if isinstance(node, JoinNode):
            return self._exec_join(node)
        if isinstance(node, ProjectNode):
            return self._exec_project(node)
        if isinstance(node, UnionNode):
            return self._exec_union(node)
        if isinstance(node, PartitionNode):
            return self._exec_partition(node)
        if isinstance(node, DupElimNode):
            rows = self._exec(node.input)
            self._emit("DUPELIM")
            return rows.dedup()
        if isinstance(node, SortNode):
            return self._exec_sort(node)
        raise ExecutionError(f"cannot execute plan node {type(node).__name__}")

    # -- leaves ---------------------------------------------------------------

    def _exec_bind(self, node: BindNode) -> RowBatch:
        self._emit("BIND", f"{node.class_name}, {node.var}")
        include = node.include_classes or None
        return RowBatch([
            {node.var: obj}
            for obj in self.objects.iter_extent(node.class_name,
                                                include=include)
        ])

    def _exec_indsel(self, node: IndSelNode) -> RowBatch:
        if self.index_manager is None:
            raise ExecutionError("INDSEL requires an index manager")
        self._emit("INDSEL", f"{node.class_name}, {node.var}")
        oid_sets = []
        for probe in node.probes:
            index = self.index_manager.physical_index(probe.index_name)
            oid_sets.append(self._probe_index(index, probe.predicate))
        oids = set.intersection(*oid_sets) if oid_sets else set()
        # Probe hits are re-verified against the live object unless the
        # index manager vouches for the index (fresh path indexes).
        verify = [
            probe for probe in node.probes
            if self.index_manager.needs_verification(probe.index_name)
        ]
        hits = sorted(oids)
        if batch_deref_enabled(self.objects):
            fetched = self.objects.deref_many(hits)
            probes = [fetched[oid] for oid in hits]
        else:
            probes = [self.objects.deref(oid) for oid in hits]
        candidates = [
            {node.var: obj}
            for obj in probes
            if not node.include_classes
            or obj.class_name in node.include_classes
        ]
        return RowBatch(self.evaluator.filter_batch(
            tuple(p.predicate for p in verify), candidates
        ))

    def _probe_index(self, index, predicate: Expr) -> set:
        if isinstance(predicate, Between):
            low = _literal(predicate.low)
            high = _literal(predicate.high)
            return {oid for _, oid in index.range_scan(low, high)}
        if not isinstance(predicate, BinOp) or not isinstance(
                predicate.right, Literal):
            raise ExecutionError(
                f"cannot probe an index with predicate {predicate}"
            )
        key = predicate.right.value
        op = predicate.op
        if op == "=":
            return set(index.search(key))
        if not hasattr(index, "range_scan"):
            raise ExecutionError("hash indexes serve equality probes only")
        if op == ">":
            return {o for _, o in index.range_scan(key, None,
                                                   lo_inclusive=False)}
        if op == ">=":
            return {o for _, o in index.range_scan(key, None)}
        if op == "<":
            return {o for _, o in index.range_scan(None, key,
                                                   hi_inclusive=False)}
        if op == "<=":
            return {o for _, o in index.range_scan(None, key)}
        raise ExecutionError(f"cannot probe an index with operator {op!r}")

    def _exec_select(self, node: SelectNode) -> RowBatch:
        rows = self._exec(node.input)
        self._emit("SELECT", " AND ".join(str(p) for p in node.predicates))
        return RowBatch(
            self.evaluator.filter_batch(node.predicates, rows.rows)
        )

    def _exec_named(self, node: NamedRef) -> RowBatch:
        if node.name in self._temp_cache:
            return RowBatch(list(self._temp_cache[node.name].rows))
        if node.plan is None:
            raise ExecutionError(f"temporary {node.name} has no plan")
        rows = self._exec(node.plan)
        self._temp_cache[node.name] = rows
        return RowBatch(list(rows.rows))

    def _exec_project(self, node: ProjectNode) -> RowBatch:
        rows = self._exec(node.input)
        self._emit("PROJECT", ", ".join(str(p) for p in node.projections)
                   or "*")
        # PROJECT's physical effect is binding pruning: the projection
        # *values* are computed once at result-building time (the kernel
        # evaluates the expressions over these binding rows), so the
        # operator keeps every variable those expressions still need --
        # the query's declared range variables plus any referenced by a
        # projection -- and drops the planner's synthetic chain variables
        # (d, e, ...).  Multiplicity is untouched; DUPELIM/UNION decide
        # duplicates.  Empty projections mean SELECT * (keep everything);
        # hand-built plans without declared output vars are left alone.
        if not node.projections or not self._output_vars:
            return rows
        keep = set(self._output_vars)
        for expr in node.projections:
            keep |= referenced_variables(expr)
        return rows.project(keep)

    # -- joins --------------------------------------------------------------

    def _exec_fused(self, node: FusedTraversalNode) -> RowBatch:
        left = self._exec(node.input)
        # Figure 7.2 discipline: each hop's residual predicates are
        # conceptually a SELECT below the join, traced before it; the
        # fused chain itself is one JOIN event so flat traces keep the
        # SELECT - JOIN - PROJECT order the F72 benchmark prints.
        for hop in node.hops:
            if hop.predicates:
                self._emit("SELECT",
                           " AND ".join(str(p) for p in hop.predicates))
        self._emit("JOIN", "FUSED_TRAVERSAL, " + "; ".join(
            f"{hop.left_var}.{hop.attr} = {hop.right_var}.self"
            for hop in node.hops
        ))

        def on_hop(hop, rows_in, frontier, rows_out):
            if self.spans is not None:
                self.spans.event(
                    f"HOP({hop.left_var}.{hop.attr} -> {hop.right_var}: "
                    f"rows_in={rows_in}, batch={frontier}, "
                    f"rows_out={rows_out})"
                )

        return RowBatch(fused_traversal(
            left.rows, node.hops, self.objects, self.evaluator,
            on_hop=on_hop,
        ))

    def _exec_join(self, node: JoinNode) -> RowBatch:
        if node.method == "NESTED_LOOP":
            left_rows = self._exec(node.left)
            right_rows = self._exec(node.right)
            self._emit("JOIN", f"{node.method}, {node.predicate_text}")
            return RowBatch(nested_loop_join(
                left_rows.rows, right_rows.rows,
                node.predicate_expr, self.evaluator,
            ))
        if node.left_var is None or node.attr is None \
                or node.right_var is None:
            raise ExecutionError(
                f"join node lacks structured predicate: {node.predicate_text}"
            )
        if node.method == "FORWARD_TRAVERSAL":
            left_rows = self._exec(node.left)
            right = self._right_side(node)
            self._emit("JOIN", f"{node.method}, {node.predicate_text}")
            return RowBatch(forward_traversal(
                left_rows.rows, node.left_var, node.attr,
                self._join_side(right),
                node.right_var, self.objects, self.evaluator,
            ))
        if node.method == "BACKWARD_TRAVERSAL":
            left = self._pipelineable(node.left)
            if left is not None and left.predicates:
                self._emit("SELECT",
                           " AND ".join(str(p) for p in left.predicates))
            if left is None:
                left = self._exec(node.left).rows
            right_rows = self._exec(node.right)
            self._emit("JOIN", f"{node.method}, {node.predicate_text}")
            return RowBatch(backward_traversal(
                left, node.left_var, node.attr, right_rows.rows,
                node.right_var, self.objects, self.evaluator,
            ))
        if node.method == "HASH_PARTITION":
            left_rows = self._exec(node.left)
            right = self._right_side(node)
            self._emit("JOIN", f"{node.method}, {node.predicate_text}")
            return RowBatch(hash_partition_join(
                left_rows.rows, node.left_var, node.attr,
                self._join_side(right),
                node.right_var, self.objects, self.evaluator,
            ))
        if node.method == "BINARY_JOIN_INDEX":
            return self._exec_indexed_join(node)
        raise ExecutionError(f"unknown join method {node.method!r}")

    @staticmethod
    def _join_side(side: PipelinedLeaf | RowBatch) -> PipelinedLeaf | list[Row]:
        return side if isinstance(side, PipelinedLeaf) else side.rows

    def _right_side(self, node: JoinNode) -> PipelinedLeaf | RowBatch:
        """Prefer a pipelined right leaf; its residual predicates run first
        (conceptually: SELECT below JOIN, Figure 7.2)."""
        leaf = self._pipelineable(node.right)
        if leaf is not None:
            if leaf.predicates:
                self._emit("SELECT",
                           " AND ".join(str(p) for p in leaf.predicates))
            return leaf
        return self._exec(node.right)

    def _exec_indexed_join(self, node: JoinNode) -> RowBatch:
        from repro.engine.joins import indexed_join

        left_rows = self._exec(node.left)
        right = self._join_side(self._right_side(node))
        self._emit("JOIN", f"{node.method}, {node.predicate_text}")
        join_index = None
        if self.index_manager is not None:
            left_leaf = self._pipelineable(node.left)
            class_name = left_leaf.class_name if left_leaf else None
            if class_name is None:
                # Find by attribute alone.
                for candidate in self.index_manager.join_indexes.values():
                    if candidate.attribute == node.attr:
                        join_index = candidate
                        break
            else:
                join_index = self.index_manager.join_index_for(
                    class_name, node.attr
                )
        if join_index is None:
            # Degrade gracefully: the pairs are still reachable by forward
            # traversal.
            return RowBatch(forward_traversal(
                left_rows.rows, node.left_var, node.attr, right,
                node.right_var, self.objects, self.evaluator,
            ))
        return RowBatch(indexed_join(
            left_rows.rows, node.left_var, join_index, right,
            node.right_var, self.objects, self.evaluator,
        ))

    def _pipelineable(self, node: PlanNode) -> PipelinedLeaf | None:
        """Recognise leaves the join methods can evaluate per object."""
        if isinstance(node, BindNode):
            return PipelinedLeaf(node.var, node.class_name,
                                 node.include_classes, ())
        if isinstance(node, SelectNode):
            inner = node.input
            if isinstance(inner, BindNode):
                return PipelinedLeaf(inner.var, inner.class_name,
                                     inner.include_classes, node.predicates)
        return None

    # -- set-level operators ------------------------------------------------------

    def _exec_union(self, node: UnionNode) -> RowBatch:
        merged = RowBatch.concat(self._exec(child) for child in node.inputs)
        self._emit("UNION", f"{len(node.inputs)} AND-terms")
        return merged.dedup(node.key_vars or None)

    def _exec_partition(self, node: PartitionNode) -> RowBatch:
        rows = self._exec(node.input)
        self._emit("PARTITION", ", ".join(str(k) for k in node.keys))
        # Group keys chase their paths over the whole batch first.
        self.evaluator.prefetch(node.keys, rows.rows)
        groups: dict[tuple, list[Row]] = {}
        order: list[tuple] = []
        for row in rows:
            key = tuple(
                repr(self.evaluator.value(k, row)) for k in node.keys
            )
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(row)
        representatives = RowBatch()
        for key in order:
            group = groups[key]
            representative = dict(group[0])
            if node.having is None or self.evaluator.predicate(
                    node.having, representative):
                representatives.append(representative)
        if node.having is not None:
            self._emit("HAVING", str(node.having))
        return representatives

    def _exec_sort(self, node: SortNode) -> RowBatch:
        rows = self._exec(node.input)
        self._emit("SORT", ", ".join(str(k.expr) for k in node.keys))
        from repro.algebra.collection_ops import _NullsFirst

        # Sort keys may traverse references; warm them batch-at-a-time.
        self.evaluator.prefetch(
            tuple(item.expr for item in node.keys), rows.rows
        )

        def sort_key(row: Row):
            parts = []
            for item in node.keys:
                value = self.evaluator.value(item.expr, row)
                wrapped = _NullsFirst(value)
                parts.append(_Reversible(wrapped, item.ascending))
            return parts

        return RowBatch(sorted(rows.rows, key=sort_key))


class _Reversible:
    """Comparison wrapper flipping order for DESC keys."""

    __slots__ = ("value", "ascending")

    def __init__(self, value, ascending: bool):
        self.value = value
        self.ascending = ascending

    def __lt__(self, other: "_Reversible") -> bool:
        if self.ascending:
            return self.value < other.value
        return other.value < self.value

    def __eq__(self, other) -> bool:
        return self.value == other.value


def _dedup(rows: list[Row], key_vars: tuple[str, ...] | None = None) -> list[Row]:
    seen: set = set()
    result: list[Row] = []
    for row in rows:
        members = (
            ((var, row[var].oid) for var in key_vars if var in row)
            if key_vars is not None
            else ((var, obj.oid) for var, obj in row.items())
        )
        key = tuple(sorted(members))
        if key not in seen:
            seen.add(key)
            result.append(row)
    return result


def _literal(expr: Expr):
    if not isinstance(expr, Literal):
        raise ExecutionError(f"expected a literal, found {expr}")
    return expr.value
