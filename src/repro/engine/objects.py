"""The object manager: persistent MOOD objects over class extents.

Bridges the catalog's schema and the storage manager's record files:
creating an object validates its state against the class's (inherited)
tuple type, serialises it, and places it in the class extent; dereferencing
an OID locates its extent through a page map and decodes the record.

Implements the algebra's :class:`~repro.algebra.collections.ObjectStore`
protocol, so algebra operators run directly against persistent data.
All I/O goes through the storage manager and is therefore accounted
against the Table 10 disk parameters.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.algebra.collections import ObjectStore
from repro.catalog.catalog import Catalog
from repro.core.errors import CatalogError, ExecutionError
from repro.model.objects import MoodObject
from repro.model.serde import decode, encode
from repro.storage.manager import StorageManager
from repro.storage.oid import OID
from repro.storage.transactions import Transaction


class ObjectManager(ObjectStore):
    """Creates, reads, updates and deletes persistent MOOD objects."""

    def __init__(self, storage: StorageManager, catalog: Catalog):
        self.storage = storage
        self.catalog = catalog
        # page number -> class name, for OID -> extent resolution.
        self._page_class: dict[int, str] = {}
        #: observers notified as (event, obj, old_state) for index upkeep
        self.observers: list = []

    # -- page map ------------------------------------------------------------

    def _remember_pages(self, class_name: str) -> None:
        extent = self.catalog.extent_file(class_name)
        for page in extent.pages:
            self._page_class[page] = class_name

    def _class_of(self, oid: OID) -> str:
        class_name = self._page_class.get(oid.page)
        if class_name is None:
            self.rebuild_page_map()
            class_name = self._page_class.get(oid.page)
        if class_name is None:
            raise ExecutionError(f"OID {oid} does not address any extent")
        return class_name

    def rebuild_page_map(self) -> None:
        self._page_class.clear()
        for class_name in self.catalog.class_names(include_system=True):
            definition = self.catalog.class_def(class_name)
            if definition.is_class:
                self._remember_pages(class_name)

    # -- CRUD ------------------------------------------------------------------

    def new_object(
        self,
        class_name: str,
        state: dict,
        txn: Transaction | None = None,
    ) -> MoodObject:
        definition = self.catalog.class_def(class_name)
        if not definition.is_class:
            raise CatalogError(
                f"{class_name!r} is a type; values of it are not objects"
            )
        validator = self.catalog.validator_for(class_name)
        canonical = validator.validate(state) or {}
        extent = self.catalog.extent_file(class_name)
        oid = self.storage.insert(extent, encode(canonical), txn)
        self._remember_pages(class_name)
        obj = MoodObject(oid, class_name, canonical)
        for observer in self.observers:
            observer("insert", obj, None)
        return obj

    def deref(self, oid: OID) -> MoodObject:
        class_name = self._class_of(oid)
        extent = self.catalog.extent_file(class_name)
        payload = self.storage.read(extent, oid)
        return MoodObject(oid, class_name, decode(payload))

    def update_object(
        self,
        obj: MoodObject,
        txn: Transaction | None = None,
    ) -> None:
        """Persist an object's (modified) state."""
        validator = self.catalog.validator_for(obj.class_name)
        old_state = decode(
            self.storage.read(self.catalog.extent_file(obj.class_name),
                              obj.oid)
        )
        canonical = validator.validate(obj.state) or {}
        obj.state = canonical
        extent = self.catalog.extent_file(obj.class_name)
        self.storage.update(extent, obj.oid, encode(canonical), txn)
        self._remember_pages(obj.class_name)
        for observer in self.observers:
            observer("update", obj, old_state)

    def delete_object(self, oid: OID, txn: Transaction | None = None) -> None:
        obj = self.deref(oid)
        extent = self.catalog.extent_file(obj.class_name)
        self.storage.delete(extent, oid, txn)
        for observer in self.observers:
            observer("delete", obj, None)

    # -- extents -------------------------------------------------------------

    def iter_extent(
        self, class_name: str, deep: bool = True,
        include: tuple[str, ...] | None = None,
    ) -> Iterator[MoodObject]:
        """Objects of a class extent.

        ``deep`` includes subclasses (IS-A); ``include`` restricts to an
        explicit class list (the FROM clause's resolved closure)."""
        if include is not None:
            classes = list(include)
        elif deep:
            classes = self.catalog.hierarchy.extent_classes(class_name)
        else:
            classes = [class_name]
        for member in classes:
            extent = self.catalog.extent_file(member)
            for oid, payload in self.storage.scan(extent):
                yield MoodObject(oid, member, decode(payload))

    def extent(self, class_name: str) -> list[MoodObject]:
        """ObjectStore protocol: the deep extent, materialised."""
        return list(self.iter_extent(class_name, deep=True))

    def count(self, class_name: str, deep: bool = False) -> int:
        classes = (
            self.catalog.hierarchy.extent_classes(class_name)
            if deep else [class_name]
        )
        return sum(
            self.catalog.extent_file(member).record_count()
            for member in classes
        )

    def nbpages(self, class_name: str, deep: bool = False) -> int:
        classes = (
            self.catalog.hierarchy.extent_classes(class_name)
            if deep else [class_name]
        )
        return sum(
            self.catalog.extent_file(member).nbpages() for member in classes
        )
