"""The object manager: persistent MOOD objects over class extents.

Bridges the catalog's schema and the storage manager's record files:
creating an object validates its state against the class's (inherited)
tuple type, serialises it, and places it in the class extent; dereferencing
an OID locates its extent through a page map and decodes the record.

Implements the algebra's :class:`~repro.algebra.collections.ObjectStore`
protocol, so algebra operators run directly against persistent data.
All I/O goes through the storage manager and is therefore accounted
against the Table 10 disk parameters.

Dereferencing has a *fast path* (on by default, ``cache_enabled``):

* an :class:`~repro.engine.objcache.ObjectCache` LRU short-circuits
  repeated chases of the same OID without touching the disk;
* :meth:`deref_many` fetches a batch of OIDs grouped by extent in
  ascending page order, so N random chases collapse into page-clustered
  reads (consecutive same-page reads are buffer hits) -- the access
  pattern the paper's forward-traversal formula assumes;
* the cache is invalidated on insert/update/delete, cleared wholesale on
  transaction abort and on crash/restart recovery (registered through the
  storage manager's hooks), and cleared when the page map is rebuilt
  (DROP CLASS may recycle pages).

With ``cache_enabled=False`` every ``deref`` is a charged read + decode
again, restoring the exact paper-faithful I/O accounting the Table 16/17
cost validation measures.

Multi-session service (``repro.server``) threads a *current transaction*
through the manager: while :attr:`current_txn` is set, every read takes an
S lock and every write an X lock on the touched extent file (strict 2PL
via the storage manager), and the shared object cache follows two
visibility rules so sessions never see each other's uncommitted state:

* a deref by a transaction that holds an X lock on the extent skips the
  ``put`` (its reads may be of its own uncommitted writes);
* cache hits still require the S lock first, so a reader blocks behind a
  writer exactly as an uncached read would.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.algebra.collections import ObjectStore
from repro.catalog.catalog import Catalog
from repro.core.errors import CatalogError, ExecutionError
from repro.engine.objcache import DEFAULT_CAPACITY, ObjectCache
from repro.model.objects import MoodObject
from repro.model.serde import decode, encode
from repro.storage.manager import StorageManager
from repro.storage.oid import OID
from repro.storage.transactions import Transaction


class ObjectManager(ObjectStore):
    """Creates, reads, updates and deletes persistent MOOD objects."""

    def __init__(
        self,
        storage: StorageManager,
        catalog: Catalog,
        cache_enabled: bool = True,
        cache_capacity: int = DEFAULT_CAPACITY,
        batch_enabled: bool = True,
    ):
        self.storage = storage
        self.catalog = catalog
        #: Set-oriented execution switch (mirrors ``cache_enabled``): when
        #: off, the executor, join kernels and evaluator chase references
        #: one object at a time even if the object cache is on, restoring
        #: the paper's row-at-a-time operator behaviour.
        self.batch_enabled = batch_enabled
        # page number -> class name, for OID -> extent resolution.  Kept
        # incrementally correct: every tracked extent registers its new
        # pages at allocation time (``StorageFile.on_new_page``), so
        # ordinary extent growth never falls back to a full rebuild (which
        # flushes the object cache wholesale).
        self._page_class: dict[int, str] = {}
        # file_id -> class name of extents whose allocation callback is
        # wired (file ids are never reused, so entries cannot go stale).
        self._tracked_extents: dict[int, str] = {}
        #: Optional co-access graph (``repro.cluster``): the kernel plugs
        #: one in so deref traffic feeds the reclustering policy.
        self.coaccess = None
        #: observers notified as (event, obj, old_state) for index upkeep
        self.observers: list = []
        #: The session transaction all CRUD/deref calls implicitly run
        #: under (set by the server while it holds the engine latch, so at
        #: most one statement consults it at a time).  ``None`` keeps the
        #: embedded single-caller behaviour: no locks, no WAL.
        self.current_txn: Transaction | None = None
        self._cache_capacity = cache_capacity
        self.cache: ObjectCache | None = None
        if cache_enabled:
            self.cache = self._build_cache()
        # A cached entry only ever reflects *committed* pages: an abort
        # restores before-images underneath us, and a crash/restart throws
        # volatile state away, so both flush the cache wholesale.
        storage.txns.abort_listeners.append(self._on_abort)
        storage.add_reset_hook(self._on_storage_reset)

    # -- cache plumbing ------------------------------------------------------

    def _build_cache(self) -> ObjectCache:
        cache = ObjectCache(self._cache_capacity)
        cache.attach_metrics(self.storage.metrics.component("objcache"))
        return cache

    @property
    def cache_enabled(self) -> bool:
        return self.cache is not None

    def set_cache_enabled(self, enabled: bool) -> None:
        """Flip the deref fast path at runtime.

        Disabling restores paper-faithful per-chase I/O charging (used by
        the Table 16/17 cost validation); re-enabling starts cold.
        """
        if enabled and self.cache is None:
            self.cache = self._build_cache()
        elif not enabled:
            self.cache = None

    def set_batch_enabled(self, enabled: bool) -> None:
        """Flip set-oriented execution at runtime.

        Disabling keeps the object cache (if on) but makes every operator
        process one binding per step -- the paper's execution model."""
        self.batch_enabled = enabled

    def invalidate_cache(self, oid: OID | None = None) -> None:
        """Evict one OID (or everything) after an out-of-band write --
        e.g. the kernel's ALTER CLASS instance migration, which rewrites
        records through the storage manager directly."""
        if self.cache is None:
            return
        if oid is None:
            self._flush_cache("explicit")
        else:
            self.cache.invalidate(oid)

    #: A wholesale flush dropping at least this many entries is journaled
    #: as an invalidation storm (warm-cache work thrown away at once).
    STORM_THRESHOLD = 64

    def _flush_cache(self, reason: str) -> None:
        if self.cache is None:
            return
        dropped = self.cache.clear()
        if dropped >= self.STORM_THRESHOLD:
            self.storage.events.emit(
                "objcache.storm", reason=reason, invalidated=dropped
            )

    def _on_abort(self, txn: Transaction) -> None:
        self._flush_cache("txn_abort")

    def _on_storage_reset(self) -> None:
        self._flush_cache("storage_reset")

    # -- page map ------------------------------------------------------------

    def _remember_pages(self, class_name: str) -> None:
        extent = self.catalog.extent_file(class_name)
        for page in extent.pages:
            self._page_class[page] = class_name
        self._wire_extent(class_name, extent)

    def _wire_extent(self, class_name: str, extent) -> None:
        """Register ``extent``'s page-allocation callback (idempotent), so
        new pages enter the page map the moment they are allocated."""
        if self._tracked_extents.get(extent.file_id) == class_name:
            return
        self._tracked_extents[extent.file_id] = class_name

        def _register(page_no: int, _cls: str = class_name) -> None:
            self._page_class[page_no] = _cls

        extent.on_new_page = _register

    def _track_extent(self, class_name: str, extent) -> None:
        """Cheap per-write upkeep: wire the allocation callback on first
        contact with an extent; already-tracked extents cost one dict
        probe instead of the old every-write full page walk."""
        if self._tracked_extents.get(extent.file_id) != class_name:
            for page in extent.pages:
                self._page_class[page] = class_name
            self._wire_extent(class_name, extent)

    def _class_of(self, oid: OID) -> str:
        class_name = self._page_class.get(oid.page)
        if class_name is None:
            self.rebuild_page_map()
            class_name = self._page_class.get(oid.page)
        if class_name is None:
            raise ExecutionError(f"OID {oid} does not address any extent")
        return class_name

    def rebuild_page_map(self) -> None:
        self._page_class.clear()
        # Extents may have been dropped and their pages recycled; any
        # cached objects addressed through them are no longer trustworthy.
        self._flush_cache("page_map_rebuild")
        for class_name in self.catalog.class_names(include_system=True):
            definition = self.catalog.class_def(class_name)
            if definition.is_class:
                self._remember_pages(class_name)

    # -- CRUD ------------------------------------------------------------------

    def new_object(
        self,
        class_name: str,
        state: dict,
        txn: Transaction | None = None,
    ) -> MoodObject:
        if txn is None:
            txn = self.current_txn
        definition = self.catalog.class_def(class_name)
        if not definition.is_class:
            raise CatalogError(
                f"{class_name!r} is a type; values of it are not objects"
            )
        validator = self.catalog.validator_for(class_name)
        canonical = validator.validate(state) or {}
        extent = self.catalog.extent_file(class_name)
        self._track_extent(class_name, extent)
        oid = self.storage.insert(extent, encode(canonical), txn)
        if self.cache is not None:
            # Slotted files recycle slots: a delete + insert can hand the
            # same (volume, page, slot) to a new object.
            self.cache.invalidate(oid)
        obj = MoodObject(oid, class_name, canonical)
        for observer in self.observers:
            observer("insert", obj, None)
        return obj

    def deref(self, oid: OID) -> MoodObject:
        txn = self.current_txn
        if txn is None and self.cache is not None:
            cached = self.cache.get(oid)
            if cached is not None:
                self._note_access(oid, cached.class_name)
                return cached
        class_name = self._class_of(oid)
        extent = self.catalog.extent_file(class_name)
        if txn is not None:
            # Visibility rule 1: the S lock comes before the cache lookup,
            # so a cache hit cannot bypass a writer's X lock.
            self.storage.txns.lock_shared(txn, ("file", extent.file_id))
            if self.cache is not None:
                cached = self.cache.get(oid)
                if cached is not None:
                    self._note_access(oid, cached.class_name)
                    return cached
        payload = self.storage.read(extent, oid, txn)
        state = decode(payload)
        if self.cache is not None and not self._writes_extent(txn, extent):
            # Visibility rule 2: an extent the transaction itself writes
            # may serve it uncommitted state -- correct for the writer,
            # poison for the shared cache.
            self.cache.put(oid, class_name, state)
        self._note_access(oid, class_name)
        return MoodObject(oid, class_name, state)

    def _note_access(self, oid: OID, class_name: str) -> None:
        if self.coaccess is not None:
            self.coaccess.note_deref(oid, class_name)

    def _writes_extent(self, txn: Transaction | None, extent) -> bool:
        """True when ``txn`` holds the X lock on ``extent``'s file."""
        if txn is None:
            return False
        from repro.storage.locks import LockMode

        mode = self.storage.locks.mode_held(
            txn.txn_id, ("file", extent.file_id)
        )
        return mode is LockMode.X

    def deref_many(self, oids: Iterable[OID]) -> dict[OID, MoodObject]:
        """Dereference a batch of OIDs, page-clustered.

        Cache misses are grouped by extent and fetched in ascending page
        order, so chases that share a page are served by one buffered read
        instead of one random I/O each.  Returns ``{oid: object}`` over the
        *distinct* OIDs given.  With the cache disabled this degrades to
        plain ``deref`` per OID in the order given (paper-faithful
        charging).
        """
        distinct = list(dict.fromkeys(oids))
        if self.cache is None or self.current_txn is not None:
            # Under a session transaction, plain deref per OID keeps the
            # locking and cache-visibility rules in one place (batching
            # matters less there: the engine latch already serialises the
            # statement).
            return {oid: self.deref(oid) for oid in distinct}
        result: dict[OID, MoodObject] = {}
        misses: dict[str, list[OID]] = {}
        for oid in distinct:
            cached = self.cache.get(oid)
            if cached is not None:
                result[oid] = cached
            else:
                misses.setdefault(self._class_of(oid), []).append(oid)
        self.cache.note_batch(len(distinct))
        for class_name in sorted(misses):
            extent = self.catalog.extent_file(class_name)
            # OIDs order as (volume, page, slot): sorting clusters the
            # reads by page, ascending -- the paper's assumed pattern.
            for oid in sorted(misses[class_name]):
                state = decode(self.storage.read(extent, oid))
                self.cache.put(oid, class_name, state)
                result[oid] = MoodObject(oid, class_name, dict(state))
        if self.coaccess is not None:
            # The hop frontier in traversal order is exactly the co-access
            # evidence the clustering policy wants.
            self.coaccess.note_frontier(
                [(oid, result[oid].class_name) for oid in distinct]
            )
        return result

    def note_relocation(self, class_name: str, old_oid: OID,
                        new_oid: OID) -> None:
        """Engine-side upkeep for one relocation: re-home the object-cache
        entry under the record's new identity (the page map learned the
        target page at allocation time)."""
        if self.cache is not None:
            self.cache.rehome(old_oid, new_oid, class_name)
        if self.coaccess is not None:
            self.coaccess.rename(old_oid, new_oid)

    def update_object(
        self,
        obj: MoodObject,
        txn: Transaction | None = None,
    ) -> None:
        """Persist an object's (modified) state."""
        if txn is None:
            txn = self.current_txn
        validator = self.catalog.validator_for(obj.class_name)
        extent = self.catalog.extent_file(obj.class_name)
        # The before-image is only materialised when an observer (index
        # maintenance) actually needs it -- and the cache can often supply
        # it without a charged read.
        old_state = None
        if self.observers:
            cached = self.cache.get(obj.oid) if self.cache is not None \
                else None
            old_state = cached.state if cached is not None \
                else decode(self.storage.read(extent, obj.oid, txn))
        canonical = validator.validate(obj.state) or {}
        obj.state = canonical
        self._track_extent(obj.class_name, extent)
        self.storage.update(extent, obj.oid, encode(canonical), txn)
        if self.cache is not None:
            self.cache.invalidate(obj.oid)
        for observer in self.observers:
            observer("update", obj, old_state)

    def delete_object(self, oid: OID, txn: Transaction | None = None) -> None:
        # Resolving the extent needs only the page map, not a full deref;
        # the old object is materialised solely for observers.
        if txn is None:
            txn = self.current_txn
        class_name = self._class_of(oid)
        extent = self.catalog.extent_file(class_name)
        obj = self.deref(oid) if self.observers else None
        self.storage.delete(extent, oid, txn)
        if self.cache is not None:
            self.cache.invalidate(oid)
        for observer in self.observers:
            observer("delete", obj, None)

    # -- extents -------------------------------------------------------------

    def iter_extent(
        self, class_name: str, deep: bool = True,
        include: tuple[str, ...] | None = None,
    ) -> Iterator[MoodObject]:
        """Objects of a class extent.

        ``deep`` includes subclasses (IS-A); ``include`` restricts to an
        explicit class list (the FROM clause's resolved closure)."""
        if include is not None:
            classes = list(include)
        elif deep:
            classes = self.catalog.hierarchy.extent_classes(class_name)
        else:
            classes = [class_name]
        for member in classes:
            extent = self.catalog.extent_file(member)
            for oid, payload in self.storage.scan(extent, self.current_txn):
                yield MoodObject(oid, member, decode(payload))

    def extent(self, class_name: str) -> list[MoodObject]:
        """ObjectStore protocol: the deep extent, materialised."""
        return list(self.iter_extent(class_name, deep=True))

    def count(self, class_name: str, deep: bool = False) -> int:
        classes = (
            self.catalog.hierarchy.extent_classes(class_name)
            if deep else [class_name]
        )
        return sum(
            self.catalog.extent_file(member).record_count()
            for member in classes
        )

    def nbpages(self, class_name: str, deep: bool = False) -> int:
        classes = (
            self.catalog.hierarchy.extent_classes(class_name)
            if deep else [class_name]
        )
        return sum(
            self.catalog.extent_file(member).nbpages() for member in classes
        )
