"""Index maintenance: secondary indexes and binary join indexes.

Secondary B+-tree/hash indexes (catalog kind ``btree``/``hash``) cover the
*deep* extent of their class: an index on ``Vehicle.weight`` also indexes
Automobile and JapaneseAuto instances, so IS-A queries can use it.

Binary join indexes (catalog kind ``join``) precompute the pairs of one
reference attribute (Section 6.3); they are B+-trees in both directions so
the optimizer's ``bjc = INDCOST(k)`` model applies to either side.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.catalog import Catalog, IndexInfo
from repro.core.errors import CatalogError
from repro.engine.objects import ObjectManager
from repro.model.objects import MoodObject
from repro.storage.btree import BPlusTree, BTreeParams
from repro.storage.manager import StorageManager
from repro.storage.oid import OID


@dataclass
class BinaryJoinIndex:
    """Precomputed (referencing OID, referenced OID) pairs."""

    name: str
    class_name: str
    attribute: str
    forward: BPlusTree   # left OID -> right OID
    backward: BPlusTree  # right OID -> left OID

    def pairs(self) -> list[tuple[OID, OID]]:
        return [(left, right) for left, right in self.forward.items()]

    def rights_of(self, left: OID) -> list[OID]:
        return self.forward.search(left)

    def lefts_of(self, right: OID) -> list[OID]:
        return self.backward.search(right)

    def params(self) -> BTreeParams:
        return self.forward.params()


@dataclass
class PathIndex:
    """A path index (Kemper/Moerkotte-style access support, Section 3.2):
    maps the value reached through ``head_class.a1...am`` directly to the
    head-class OIDs reaching it, collapsing the whole implicit-join chain
    into one B+-tree probe.

    Maintenance here covers head-class mutations; mutations of *interior*
    objects can strand entries, so probes are always re-verified against
    the live path (the executor's recheck) and :meth:`IndexManager.
    rebuild_path_index` refreshes the structure wholesale.
    """

    name: str
    class_name: str                  # head class
    path_attrs: tuple[str, ...]      # a1..a(m-1) references + am atomic
    tree: BPlusTree
    interior_classes: tuple[str, ...] = ()
    #: set when an interior-class object mutates; probes verify while set
    stale: bool = False

    def params(self) -> BTreeParams:
        return self.tree.params()


class IndexManager:
    """Builds indexes over live extents and keeps them current."""

    def __init__(self, storage: StorageManager, catalog: Catalog,
                 objects: ObjectManager):
        self.storage = storage
        self.catalog = catalog
        self.objects = objects
        self.join_indexes: dict[str, BinaryJoinIndex] = {}
        self.path_indexes: dict[str, PathIndex] = {}
        objects.observers.append(self._on_change)

    # -- creation -------------------------------------------------------------

    def create_index(self, name: str, class_name: str, attribute: str,
                     kind: str = "btree", unique: bool = False) -> IndexInfo:
        """Create and build a secondary index over the class's deep extent."""
        if kind == "join":
            return self.create_join_index(name, class_name, attribute)
        if kind == "path":
            return self.create_path_index(name, class_name,
                                          tuple(attribute.split(".")))
        info = self.catalog.define_index(name, class_name, attribute, kind,
                                         unique)
        if kind == "btree":
            index = self.storage.create_btree_index(name, unique=unique)
        else:
            index = self.storage.create_hash_index(name, unique=unique)
        for obj in self.objects.iter_extent(class_name, deep=True):
            key = obj.state.get(attribute)
            if key is not None:
                index.insert(key, obj.oid)
        return info

    def create_join_index(self, name: str, class_name: str,
                          attribute: str) -> IndexInfo:
        from repro.catalog.typeparse import parse_type
        from repro.model.types import is_reference_like

        attr = self.catalog.hierarchy.attribute(class_name, attribute)
        if not is_reference_like(parse_type(attr.type_name)):
            raise CatalogError(
                f"{class_name}.{attribute} is not a reference attribute"
            )
        info = self.catalog.define_index(name, class_name, attribute, "join")
        join_index = BinaryJoinIndex(
            name=name,
            class_name=class_name,
            attribute=attribute,
            forward=self.storage.create_btree_index(f"{name}__fwd"),
            backward=self.storage.create_btree_index(f"{name}__bwd"),
        )
        self.join_indexes[name] = join_index
        for obj in self.objects.iter_extent(class_name, deep=True):
            for target in _ref_oids(obj.state.get(attribute)):
                join_index.forward.insert(obj.oid, target)
                join_index.backward.insert(target, obj.oid)
        return info

    def create_path_index(self, name: str, class_name: str,
                          path_attrs: tuple[str, ...]) -> IndexInfo:
        """Build a path index over ``class_name.a1...am`` (m >= 2; the tail
        attribute must be atomic)."""
        from repro.optimizer.classify import resolve_path

        if len(path_attrs) < 2:
            raise CatalogError("path indexes need at least two attributes")
        if resolve_path(self.catalog, class_name, path_attrs) is None:
            raise CatalogError(
                f"{class_name}.{'.'.join(path_attrs)} is not a reference "
                "path ending at an atomic attribute"
            )
        info = self.catalog.define_index(name, class_name,
                                         ".".join(path_attrs), "path")
        chain = resolve_path(self.catalog, class_name, path_attrs)
        path_index = PathIndex(
            name=name,
            class_name=class_name,
            path_attrs=path_attrs,
            tree=self.storage.create_btree_index(name),
            interior_classes=chain.classes[1:],
        )
        self.path_indexes[name] = path_index
        self._fill_path_index(path_index)
        return info

    def _fill_path_index(self, path_index: PathIndex) -> None:
        for obj in self.objects.iter_extent(path_index.class_name,
                                            deep=True):
            for value in self._path_values(obj, path_index.path_attrs):
                if value is not None:
                    path_index.tree.insert(value, obj.oid)

    def _path_values(self, obj: MoodObject,
                     path_attrs: tuple[str, ...]) -> list:
        current = [obj]
        for attribute in path_attrs[:-1]:
            reached = []
            for node in current:
                for oid in _ref_oids(node.state.get(attribute)):
                    reached.append(self.objects.deref(oid))
            current = reached
        return [node.state.get(path_attrs[-1]) for node in current]

    def rebuild_path_index(self, name: str) -> None:
        """Refresh a path index after interior-class mutations."""
        path_index = self.path_indexes[name]
        fresh = BPlusTree(
            order=path_index.tree.order,
            keysize=path_index.tree.keysize,
            on_node_access=self.storage._charge_index_page,
        )
        path_index.tree = fresh
        self.storage._btrees[name] = fresh  # swap under the same name
        self._fill_path_index(path_index)
        path_index.stale = False

    def remap_oids(self, mapping: dict[OID, OID]) -> int:
        """Rewrite every index entry naming a relocated OID.

        Relocation re-identifies objects (old OID -> new OID); secondary
        indexes hold OIDs as values, join indexes on both sides, path
        indexes as head values -- and a secondary index over a reference
        attribute can even hold OIDs as keys.  Returns the number of
        entries rewritten.
        """
        if not mapping:
            return 0
        rewritten = 0
        for info in self.catalog.all_indexes():
            if info.kind == "join":
                join_index = self.join_indexes[info.name]
                rewritten += _remap_entries(join_index.forward, mapping)
                rewritten += _remap_entries(join_index.backward, mapping)
            elif info.kind == "path":
                rewritten += _remap_entries(
                    self.path_indexes[info.name].tree, mapping
                )
            else:
                rewritten += _remap_entries(
                    self.physical_index(info.name), mapping
                )
        return rewritten

    def needs_verification(self, index_name: str) -> bool:
        """Whether an index probe's hits must be re-verified against the
        live data (true for stale path indexes; other kinds verify cheaply
        against the already-fetched object)."""
        path_index = self.path_indexes.get(index_name)
        if path_index is not None:
            return path_index.stale
        return True

    def drop_index(self, name: str) -> None:
        info = self.catalog.index_info(name)
        self.catalog.drop_index(name)
        if info.kind == "join":
            self.storage.drop_index(f"{name}__fwd")
            self.storage.drop_index(f"{name}__bwd")
            del self.join_indexes[name]
        elif info.kind == "path":
            self.storage.drop_index(name)
            del self.path_indexes[name]
        else:
            self.storage.drop_index(name)

    # -- lookup helpers ----------------------------------------------------------

    def physical_index(self, name: str):
        info = self.catalog.index_info(name)
        if info.kind in ("btree", "path"):
            return self.storage.btree_index(name)
        if info.kind == "hash":
            return self.storage.hash_index(name)
        return self.join_indexes[name]

    def btree_params_of(self, name: str) -> BTreeParams | None:
        info = self.catalog.index_info(name)
        if info.kind in ("btree", "path"):
            return self.storage.btree_index(name).params()
        if info.kind == "join":
            return self.join_indexes[name].params()
        return None

    def path_index_for(self, class_name: str,
                       path_attrs: tuple[str, ...]) -> PathIndex | None:
        for path_index in self.path_indexes.values():
            if path_index.path_attrs != path_attrs:
                continue
            if self.catalog.hierarchy.is_subclass(class_name,
                                                  path_index.class_name):
                return path_index
        return None

    def path_index_params(self) -> dict[tuple[str, tuple[str, ...]],
                                        tuple[str, BTreeParams]]:
        """(head class, path attrs) -> (index name, Table 9 params)."""
        return {
            (pi.class_name, pi.path_attrs): (pi.name, pi.params())
            for pi in self.path_indexes.values()
        }

    def join_index_for(self, class_name: str,
                       attribute: str) -> BinaryJoinIndex | None:
        for join_index in self.join_indexes.values():
            if join_index.attribute != attribute:
                continue
            if self.catalog.hierarchy.is_subclass(class_name,
                                                  join_index.class_name):
                return join_index
        return None

    def join_index_params(self) -> dict[str, BTreeParams]:
        """Link attribute -> Table 9 parameters, for the planner."""
        return {
            ji.attribute: ji.params() for ji in self.join_indexes.values()
        }

    # -- maintenance ------------------------------------------------------------

    def _applicable(self, class_name: str) -> list[IndexInfo]:
        result = []
        for info in self.catalog.all_indexes():
            if self.catalog.hierarchy.is_subclass(class_name,
                                                  info.class_name):
                result.append(info)
        return result

    def _on_change(self, event: str, obj: MoodObject, old_state) -> None:
        for info in self._applicable(obj.class_name):
            if info.kind == "join":
                self._maintain_join(info, event, obj, old_state)
            elif info.kind == "path":
                self._maintain_path(info, event, obj, old_state)
            else:
                self._maintain_secondary(info, event, obj, old_state)
        # A mutation of an interior class of any path index strands its
        # entries: mark the index stale so probes verify until rebuilt.
        for path_index in self.path_indexes.values():
            if any(
                self.catalog.hierarchy.is_subclass(obj.class_name, interior)
                for interior in path_index.interior_classes
            ):
                path_index.stale = True

    def _maintain_secondary(self, info: IndexInfo, event: str,
                            obj: MoodObject, old_state) -> None:
        index = self.physical_index(info.name)
        new_key = obj.state.get(info.attribute)
        old_key = old_state.get(info.attribute) if old_state else None
        if event == "insert":
            if new_key is not None:
                index.insert(new_key, obj.oid)
        elif event == "delete":
            key = obj.state.get(info.attribute)
            if key is not None:
                index.delete(key, obj.oid)
        elif event == "update" and old_key != new_key:
            if old_key is not None:
                index.delete(old_key, obj.oid)
            if new_key is not None:
                index.insert(new_key, obj.oid)

    def _maintain_join(self, info: IndexInfo, event: str,
                       obj: MoodObject, old_state) -> None:
        join_index = self.join_indexes[info.name]
        new_targets = set(_ref_oids(obj.state.get(info.attribute)))
        old_targets = set(
            _ref_oids(old_state.get(info.attribute)) if old_state else []
        )
        if event == "insert":
            added, removed = new_targets, set()
        elif event == "delete":
            added, removed = set(), new_targets
        else:
            added = new_targets - old_targets
            removed = old_targets - new_targets
        for target in removed:
            join_index.forward.delete(obj.oid, target)
            join_index.backward.delete(target, obj.oid)
        for target in added:
            join_index.forward.insert(obj.oid, target)
            join_index.backward.insert(target, obj.oid)


    def _maintain_path(self, info: IndexInfo, event: str,
                       obj: MoodObject, old_state) -> None:
        """Head-class maintenance of a path index.  Interior-class changes
        are not tracked; probes re-verify and rebuild_path_index refreshes."""
        path_index = self.path_indexes[info.name]
        if event in ("delete", "update"):
            state = old_state if event == "update" else obj.state
            stale = MoodObject(obj.oid, obj.class_name, state)
            for value in self._path_values(stale, path_index.path_attrs):
                if value is not None:
                    path_index.tree.delete(value, obj.oid)
        if event in ("insert", "update"):
            for value in self._path_values(obj, path_index.path_attrs):
                if value is not None:
                    path_index.tree.insert(value, obj.oid)


def _remap_entries(index, mapping: dict[OID, OID]) -> int:
    """Delete/re-insert every ``(key, value)`` of ``index`` touched by the
    OID ``mapping``; works over any index exposing items/delete/insert."""
    stale = []
    for key, value in index.items():
        new_key = mapping.get(key, key) if isinstance(key, OID) else key
        new_value = (
            mapping.get(value, value) if isinstance(value, OID) else value
        )
        if new_key is not key or new_value is not value:
            stale.append((key, value, new_key, new_value))
    for key, value, new_key, new_value in stale:
        index.delete(key, value)
        index.insert(new_key, new_value)
    return len(stale)


def _ref_oids(value) -> list[OID]:
    if isinstance(value, OID):
        return [] if value.is_null else [value]
    if isinstance(value, (set, frozenset)):
        return [oid for oid in sorted(value) if isinstance(oid, OID)]
    if isinstance(value, list):
        return [oid for oid in value if isinstance(oid, OID)]
    return []
