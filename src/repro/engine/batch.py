"""Set-oriented execution: the :class:`RowBatch` unit and the batch gate.

The paper's executor -- and our reproduction up to PR 5 -- is row-at-a-
time: every Volcano operator processes one binding per step, so a
traversal join pays one dispatch, one cache probe, and (uncached) one
random read *per object*.  PR 2 batched the deref I/O inside individual
join kernels; this module batches the *operators*: a :class:`RowBatch`
is the unit of exchange between plan nodes, and each operator consumes
and produces whole batches, giving the join kernels and the expression
evaluator a full frontier of rows to dereference through one
page-clustered :meth:`~repro.engine.objects.ObjectManager.deref_many`
call per step.

Two independent switches govern the physical behaviour:

* ``objects.cache_enabled`` -- the PR 2 deref fast path (the LRU object
  cache and ``deref_many``);
* ``objects.batch_enabled`` -- set-oriented operator execution: frontier
  OID collection, fused traversals, and batch predicate prefetch.

:func:`batch_deref_enabled` is the single gate the executor, the join
kernels and the evaluator consult: batched dereferencing requires *both*
switches, so disabling either one restores the paper-faithful
one-chase-one-read charging that the Table 16/17 cost validation
replays (those runs disable the cache, which alone is sufficient).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.evaluator import Row


def batch_deref_enabled(objects) -> bool:
    """True when set-oriented dereferencing may be used: the store has the
    page-clustered ``deref_many`` fast path, the object cache backing it
    is on, *and* batched execution has not been switched off."""
    return (
        getattr(objects, "cache_enabled", False)
        and getattr(objects, "batch_enabled", True)
        and hasattr(objects, "deref_many")
    )


class RowBatch:
    """An ordered batch of binding rows flowing between plan operators.

    Semantically a ``list[Row]`` (same rows, same order, duplicates
    preserved); operationally the set-at-a-time unit: operators receive
    the whole batch and may dereference, filter, project, or deduplicate
    it collectively instead of row by row.
    """

    __slots__ = ("rows",)

    def __init__(self, rows: list["Row"] | None = None):
        self.rows: list["Row"] = rows if rows is not None else []

    # -- list protocol -----------------------------------------------------

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator["Row"]:
        return iter(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def __getitem__(self, index):
        return self.rows[index]

    def append(self, row: "Row") -> None:
        self.rows.append(row)

    def extend(self, rows: Iterable["Row"]) -> None:
        self.rows.extend(rows)

    # -- construction ------------------------------------------------------

    @classmethod
    def of(cls, rows: Iterable["Row"]) -> "RowBatch":
        """A batch over ``rows`` (materialising iterables)."""
        return cls(rows if isinstance(rows, list) else list(rows))

    @classmethod
    def concat(cls, batches: Iterable["RowBatch"]) -> "RowBatch":
        merged: list["Row"] = []
        for batch in batches:
            merged.extend(batch.rows)
        return cls(merged)

    # -- set-level operators ----------------------------------------------

    def project(self, keep: set[str]) -> "RowBatch":
        """Restrict every row to the variables in ``keep`` (the batch
        form of PROJECT; multiplicity is preserved, this is not DISTINCT)."""
        return RowBatch([
            {var: obj for var, obj in row.items() if var in keep}
            for row in self.rows
        ])

    def dedup(self, key_vars: tuple[str, ...] | None = None) -> "RowBatch":
        """First-occurrence duplicate elimination keyed on the OIDs of
        ``key_vars`` (all bound variables when ``None``)."""
        seen: set = set()
        result: list["Row"] = []
        for row in self.rows:
            members = (
                ((var, row[var].oid) for var in key_vars if var in row)
                if key_vars is not None
                else ((var, obj.oid) for var, obj in row.items())
            )
            key = tuple(sorted(members))
            if key not in seen:
                seen.add(key)
                result.append(row)
        return RowBatch(result)

    def reference_oids(self, var: str, attr: str) -> list[tuple["Row", list]]:
        """Per-row reference OIDs of ``var.attr``: the frontier a
        traversal hop dereferences, in row order."""
        from repro.algebra.collection_ops import _reference_oids

        return [
            (row, _reference_oids(row[var].state.get(attr)))
            for row in self.rows
        ]
