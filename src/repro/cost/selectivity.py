"""Selectivity estimation (Section 4.1).

Atomic selectivities under the uniform-distribution assumption, the
``fref`` forward-reference recursion, and the paper's path-expression
selectivity

.. math::

    f_s(p.A_1...A_m) = o\\big(totref_{m-1},\\;
        fref(p.A_1..A_{m-1}, 1),\\;
        k_m \\cdot hitprb(A_{m-1}, C_{m-1}, C_m)\\big)

with :math:`k_m = |C_m| \\cdot f_s(A_m\\,\\theta\\,c)`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import OptimizerError
from repro.cost.approx import c_approx, overlap_probability
from repro.cost.params import DatabaseStats

#: Fallback selectivity when statistics cannot answer (System R tradition).
DEFAULT_EQ_SELECTIVITY = 0.1
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
DEFAULT_OTHER_SELECTIVITY = 0.5

COMPARISON_OPS = ("=", "<>", "<", "<=", ">", ">=")


def _clamp(value: float) -> float:
    return max(0.0, min(1.0, value))


def atomic_selectivity(
    stats: DatabaseStats,
    class_name: str,
    attribute: str,
    op: str,
    constant,
    constant2=None,
) -> float:
    """Selectivity of ``s.A op constant`` for an atomic attribute.

    * ``=``: 1 / dist(A, C)
    * ``>``: (max - c) / (max - min); other inequalities by symmetry
    * ``BETWEEN``: (c2 - c1) / (max - min)
    * ``<>``: 1 - 1/dist

    Non-numeric attributes fall back to the classic default fractions for
    range operators.
    """
    if not stats.has_attribute(class_name, attribute):
        return _default_for(op)
    attr = stats.attributes[(class_name, attribute)]
    if op == "=":
        return _clamp(1.0 / attr.dist) if attr.dist > 0 else DEFAULT_EQ_SELECTIVITY
    if op == "<>":
        if attr.dist > 0:
            return _clamp(1.0 - 1.0 / attr.dist)
        return 1.0 - DEFAULT_EQ_SELECTIVITY
    numeric = (
        attr.max is not None
        and attr.min is not None
        and isinstance(constant, (int, float))
        and not isinstance(constant, bool)
    )
    if not numeric:
        return _default_for(op)
    span = attr.max - attr.min
    if span <= 0:
        return 1.0 if attr.min <= constant <= attr.max else 0.0
    if op == "BETWEEN":
        if constant2 is None:
            raise OptimizerError("BETWEEN needs two constants")
        low, high = min(constant, constant2), max(constant, constant2)
        return _clamp((high - low) / span)
    if op == ">":
        return _clamp((attr.max - constant) / span)
    if op == ">=":
        return _clamp((attr.max - constant) / span + 1.0 / max(attr.dist, 1))
    if op == "<":
        return _clamp((constant - attr.min) / span)
    if op == "<=":
        return _clamp((constant - attr.min) / span + 1.0 / max(attr.dist, 1))
    raise OptimizerError(f"unknown comparison operator {op!r}")


def _default_for(op: str) -> float:
    if op == "=":
        return DEFAULT_EQ_SELECTIVITY
    if op == "<>":
        return 1.0 - DEFAULT_EQ_SELECTIVITY
    if op in ("<", "<=", ">", ">=", "BETWEEN"):
        return DEFAULT_RANGE_SELECTIVITY
    return DEFAULT_OTHER_SELECTIVITY


# --------------------------------------------------------------------------
# Path expressions
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class PathExpression:
    """A resolved path ``p.A_1.A_2...A_m``.

    ``classes`` are :math:`C_1..C_m` (the class each attribute belongs to),
    ``reference_attrs`` are :math:`A_1..A_{m-1}` (set/reference
    constructors), and ``final_attr`` is the atomic :math:`A_m`.
    """

    classes: tuple[str, ...]
    reference_attrs: tuple[str, ...]
    final_attr: str

    def __post_init__(self):
        if len(self.classes) != len(self.reference_attrs) + 1:
            raise OptimizerError(
                "path expression needs one class per attribute plus the "
                "final class"
            )

    @property
    def length(self) -> int:
        """m: the number of attributes in the path."""
        return len(self.reference_attrs) + 1

    def text(self, variable: str = "p") -> str:
        return ".".join([variable, *self.reference_attrs, self.final_attr])


def fref(stats: DatabaseStats, path: PathExpression, k: float,
         upto: int | None = None) -> float:
    """Expected number of C_{i+1} objects after forward-traversing the
    first ``upto`` reference attributes starting from ``k`` objects of C_1.

    .. math::

        fref(p.A_1..A_i, k) = c(totlinks_i, totref_i,
                                fref(p.A_1..A_{i-1}, k) \\cdot fan_i)
    """
    steps = len(path.reference_attrs) if upto is None else upto
    value = float(k)
    for i in range(steps):
        attr = path.reference_attrs[i]
        owner = path.classes[i]
        totlinks = stats.totlinks(attr, owner)
        totref = stats.totref(attr, owner)
        fan = stats.fan(attr, owner)
        value = c_approx(totlinks, totref, value * fan)
    return value


def path_selectivity(
    stats: DatabaseStats,
    path: PathExpression,
    op: str,
    constant,
    constant2=None,
) -> float:
    """Selectivity of the single-path predicate ``p.A_1...A_m theta c``."""
    final_class = path.classes[-1]
    f_final = atomic_selectivity(
        stats, final_class, path.final_attr, op, constant, constant2
    )
    if len(path.reference_attrs) == 0:
        return f_final  # degenerate: an immediate selection
    k_m = stats.card(final_class) * f_final
    forward = fref(stats, path, 1.0)
    last_attr = path.reference_attrs[-1]
    last_owner = path.classes[-2]
    hit = stats.hitprb(last_attr, last_owner)
    totref_last = stats.totref(last_attr, last_owner)
    return overlap_probability(totref_last, forward, k_m * hit)


def expected_matches(stats: DatabaseStats, class_name: str,
                     selectivity: float) -> float:
    """k = |C| * f_s : expected qualifying instances."""
    return stats.card(class_name) * selectivity
