"""The MOOD cost model (Sections 4-6): parameters, selectivity, I/O costs."""

from repro.cost.approx import c_approx, cardenas, overlap_probability, yao
from repro.cost.fileops import indcost, rndcost, rngxcost, seqcost
from repro.cost.joincost import (
    DEFAULT_CPU_COST,
    JoinCostEstimate,
    JoinStrategy,
    backward_traversal_cost,
    best_join_strategy,
    binary_join_index_cost,
    forward_traversal_cost,
    hash_partition_cost,
    pages_hit,
)
from repro.cost.params import AttrStats, ClassCard, DatabaseStats, RefStats
from repro.cost.selectivity import (
    DEFAULT_EQ_SELECTIVITY,
    DEFAULT_RANGE_SELECTIVITY,
    PathExpression,
    atomic_selectivity,
    expected_matches,
    fref,
    path_selectivity,
)
from repro.cost.statistics import collect_statistics

__all__ = [
    "AttrStats",
    "ClassCard",
    "DEFAULT_CPU_COST",
    "DEFAULT_EQ_SELECTIVITY",
    "DEFAULT_RANGE_SELECTIVITY",
    "DatabaseStats",
    "JoinCostEstimate",
    "JoinStrategy",
    "PathExpression",
    "RefStats",
    "atomic_selectivity",
    "backward_traversal_cost",
    "best_join_strategy",
    "binary_join_index_cost",
    "c_approx",
    "cardenas",
    "collect_statistics",
    "expected_matches",
    "forward_traversal_cost",
    "fref",
    "hash_partition_cost",
    "indcost",
    "overlap_probability",
    "pages_hit",
    "path_selectivity",
    "rndcost",
    "rngxcost",
    "seqcost",
    "yao",
]
