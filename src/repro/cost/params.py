"""Cost model parameters (Section 4, Tables 8-10).

:class:`DatabaseStats` is the statistics the optimizer consults -- the
paper's Table 8 parameters per class/attribute, with the derived quantities

.. math::

    totlinks(A,C,D) = fan(A,C,D) \\cdot |C|
    \\qquad
    hitprb(A,C,D) = totref(A,C,D) / |D|

Table 9 (B+-tree parameters) is carried by
:class:`repro.storage.btree.BTreeParams`; Table 10 (disk parameters) by
:class:`repro.storage.disk.DiskParams`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import OptimizerError


@dataclass
class ClassCard:
    """Per-class statistics: |C|, nbpages(C), size(C)."""

    count: int
    nbpages: int
    size: int


@dataclass
class AttrStats:
    """Per atomic attribute: dist, max, min, notnull (Table 8)."""

    dist: int
    max: float | None = None
    min: float | None = None
    notnull: float = 1.0


@dataclass
class RefStats:
    """Per reference attribute A of class C targeting class D."""

    target: str
    fan: float          # avg D instances referenced per C instance
    totref: int         # distinct D objects referenced by at least one C


@dataclass
class DatabaseStats:
    """The statistics catalog the cost model reads (Table 8 accessors)."""

    classes: dict[str, ClassCard] = field(default_factory=dict)
    attributes: dict[tuple[str, str], AttrStats] = field(default_factory=dict)
    references: dict[tuple[str, str], RefStats] = field(default_factory=dict)
    #: Statistics-version stamp: every ANALYZE (or hand-built stats set)
    #: gets a fresh monotonic version, and compiled plans carry the stamp
    #: they were costed under so the plan cache can refuse stale entries.
    version: int = 0

    # -- setters ----------------------------------------------------------

    def set_class(self, name: str, count: int, nbpages: int, size: int) -> None:
        self.classes[name] = ClassCard(count, nbpages, size)

    def set_attribute(self, class_name: str, attr: str, dist: int,
                      max_value: float | None = None,
                      min_value: float | None = None,
                      notnull: float = 1.0) -> None:
        self.attributes[(class_name, attr)] = AttrStats(
            dist, max_value, min_value, notnull
        )

    def set_reference(self, class_name: str, attr: str, target: str,
                      fan: float, totref: int) -> None:
        self.references[(class_name, attr)] = RefStats(target, fan, totref)

    # -- Table 8 accessors -----------------------------------------------------

    def card(self, class_name: str) -> int:
        """|C|: total number of instances of C."""
        return self._class(class_name).count

    def nbpages(self, class_name: str) -> int:
        return self._class(class_name).nbpages

    def size(self, class_name: str) -> int:
        return self._class(class_name).size

    def notnull(self, attr: str, class_name: str) -> float:
        return self._attr(class_name, attr).notnull

    def dist(self, attr: str, class_name: str) -> int:
        return self._attr(class_name, attr).dist

    def max(self, attr: str, class_name: str) -> float | None:
        return self._attr(class_name, attr).max

    def min(self, attr: str, class_name: str) -> float | None:
        return self._attr(class_name, attr).min

    def fan(self, attr: str, class_name: str, target: str | None = None) -> float:
        return self._ref(class_name, attr, target).fan

    def totref(self, attr: str, class_name: str, target: str | None = None) -> int:
        return self._ref(class_name, attr, target).totref

    def totlinks(self, attr: str, class_name: str,
                 target: str | None = None) -> float:
        """totlinks(A, C, D) = fan(A, C, D) * |C|."""
        return self.fan(attr, class_name, target) * self.card(class_name)

    def hitprb(self, attr: str, class_name: str,
               target: str | None = None) -> float:
        """hitprb(A, C, D) = totref(A, C, D) / |D|."""
        ref = self._ref(class_name, attr, target)
        target_count = self.card(ref.target)
        if target_count == 0:
            return 0.0
        return ref.totref / target_count

    def ref_target(self, attr: str, class_name: str) -> str:
        return self._ref(class_name, attr, None).target

    def has_reference(self, class_name: str, attr: str) -> bool:
        return (class_name, attr) in self.references

    def has_attribute(self, class_name: str, attr: str) -> bool:
        return (class_name, attr) in self.attributes

    def has_class(self, class_name: str) -> bool:
        return class_name in self.classes

    # -- internals --------------------------------------------------------------

    def _class(self, class_name: str) -> ClassCard:
        try:
            return self.classes[class_name]
        except KeyError:
            raise OptimizerError(
                f"no statistics for class {class_name!r}; run ANALYZE"
            ) from None

    def _attr(self, class_name: str, attr: str) -> AttrStats:
        try:
            return self.attributes[(class_name, attr)]
        except KeyError:
            raise OptimizerError(
                f"no statistics for {class_name}.{attr}; run ANALYZE"
            ) from None

    def _ref(self, class_name: str, attr: str, target: str | None) -> RefStats:
        try:
            ref = self.references[(class_name, attr)]
        except KeyError:
            raise OptimizerError(
                f"no reference statistics for {class_name}.{attr}"
            ) from None
        if target is not None and ref.target != target:
            raise OptimizerError(
                f"{class_name}.{attr} references {ref.target!r}, "
                f"not {target!r}"
            )
        return ref
