"""Counting approximations used by the cost model (Section 4.1).

``c(n, m, r)`` approximates the number of distinct colours obtained when
``r`` objects are chosen out of ``n`` objects uniformly distributed over
``m`` colours [Cer 85]:

.. math::

    c(n,m,r) = \\begin{cases}
        r & r < m/2 \\\\
        (r+m)/3 & m/2 \\le r < 2m \\\\
        m & r \\ge 2m
    \\end{cases}

The paper notes that better approximations exist ([Yao 77], [Car 75]) "but
it has been validated that c(n, m, r) well serves our purposes"; we provide
Yao's and Cardenas' formulas as well so the S5 benchmark can compare them.

``o(t, x, y)`` is the probability that two sets of cardinalities ``x`` and
``y`` drawn from ``t`` distinct objects share at least one member:
``o(t,x,y) = 1 - C(t-x,y)/C(t,y)``.
"""

from __future__ import annotations

import math


def c_approx(n: float, m: float, r: float) -> float:
    """The paper's c(n, m, r) colour-count approximation.

    ``n`` (the population size) does not appear in the piecewise formula --
    the paper carries it for interface compatibility with the exact
    formulas -- but the result is still capped at both ``m`` and ``n``.
    """
    if r <= 0 or m <= 0:
        return 0.0
    if r < m / 2:
        result = float(r)
    elif r < 2 * m:
        result = (r + m) / 3.0
    else:
        result = float(m)
    if n > 0:
        result = min(result, float(n))
    return result


def yao(n: float, m: float, r: float) -> float:
    """Yao's formula [Yao 77]: expected blocks hit when selecting ``r`` of
    ``n`` records packed ``n/m`` per block."""
    if r <= 0 or m <= 0 or n <= 0:
        return 0.0
    if r >= n:
        return float(m)
    blocking = n / m
    # m * (1 - prod_{i=1..r} (n - blocking - i + 1) / (n - i + 1))
    log_product = 0.0
    for i in range(1, int(r) + 1):
        numerator = n - blocking - i + 1
        denominator = n - i + 1
        if numerator <= 0:
            return float(m)
        log_product += math.log(numerator) - math.log(denominator)
    return m * (1.0 - math.exp(log_product))


def cardenas(m: float, r: float) -> float:
    """Cardenas' formula [Car 75]: ``m * (1 - (1 - 1/m)^r)``."""
    if r <= 0 or m <= 0:
        return 0.0
    return m * (1.0 - (1.0 - 1.0 / m) ** r)


def overlap_probability(t: float, x: float, y: float) -> float:
    """o(t, x, y) = 1 - C(t-x, y) / C(t, y).

    The probability that two sets with cardinalities ``x`` and ``y``,
    selected out of ``t`` distinct objects, intersect.  Computed in log
    space as ``prod_{i=0..y-1} (t-x-i)/(t-i)`` so large catalogs do not
    overflow.

    Fractional expected cardinalities are rounded *up*: a set with a
    positive expected size has at least one member.  This matches the
    paper's own Table 16 arithmetic, where ``k_m * hitprb = 0.1`` is
    treated as a one-element set, giving selectivity 5.00e-5 for the
    Company path.
    """
    if t <= 0 or x <= 0 or y <= 0:
        return 0.0
    x = math.ceil(x)
    y = math.ceil(y)
    if x + y > t:
        return 1.0
    log_product = 0.0
    for i in range(y):
        log_product += math.log(t - x - i) - math.log(t - i)
    miss = math.exp(log_product)
    return max(0.0, min(1.0, 1.0 - miss))
