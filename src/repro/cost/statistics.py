"""Statistics collection: measuring Table 8 parameters from live data.

The paper assumes the Table 8/14/15 statistics exist; a real system must
gather them.  :func:`collect_statistics` walks class extents and computes
every parameter the cost model reads -- |C|, nbpages, size, notnull, fan,
totref, dist, max, min (totlinks and hitprb are derived).  It can also be
bypassed entirely by building a :class:`DatabaseStats` by hand, which the
benchmarks use to inject the paper's own (synthetic) numbers.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.catalog.catalog import Catalog
from repro.cost.params import DatabaseStats
from repro.model.objects import MoodObject
from repro.model.serde import encode
from repro.model.types import is_atomic, is_reference_like, referenced_class
from repro.storage.oid import OID


def collect_statistics(
    catalog: Catalog,
    objects_of: Callable[[str], list[MoodObject]],
    nbpages_of: Callable[[str], int],
) -> DatabaseStats:
    """Measure every cost-model parameter from the database.

    ``objects_of(class_name)`` returns the class's own (shallow) extent;
    ``nbpages_of(class_name)`` its page count.

    Every collection gets a fresh :attr:`DatabaseStats.version` stamp, so
    plans costed under older statistics are recognisably stale.
    """
    from repro.core.prepare import next_stats_version

    stats = DatabaseStats(version=next_stats_version())
    for class_name in catalog.class_names():
        definition = catalog.class_def(class_name)
        if not definition.is_class:
            continue
        objects = objects_of(class_name)
        count = len(objects)
        nbpages = nbpages_of(class_name)
        if count:
            size = round(
                sum(len(encode(obj.state)) for obj in objects) / count
            )
        else:
            size = 0
        stats.set_class(class_name, count, nbpages, size)
        for attribute in catalog.hierarchy.all_attributes(class_name):
            from repro.catalog.typeparse import parse_type

            mood_type = parse_type(attribute.type_name)
            values = [obj.state.get(attribute.name) for obj in objects]
            if is_atomic(mood_type):
                _collect_atomic(stats, class_name, attribute.name, values)
            elif is_reference_like(mood_type):
                _collect_reference(
                    stats, class_name, attribute.name,
                    referenced_class(mood_type) or "", values,
                )
    return stats


def _collect_atomic(stats: DatabaseStats, class_name: str, attr: str,
                    values: list) -> None:
    present = [v for v in values if v is not None]
    distinct = len(set(present))
    numeric = [v for v in present
               if isinstance(v, (int, float)) and not isinstance(v, bool)]
    max_value = max(numeric) if numeric and len(numeric) == len(present) else None
    min_value = min(numeric) if numeric and len(numeric) == len(present) else None
    notnull = len(present) / len(values) if values else 1.0
    stats.set_attribute(class_name, attr, distinct, max_value, min_value, notnull)


def _collect_reference(stats: DatabaseStats, class_name: str, attr: str,
                       target: str, values: list) -> None:
    total_refs = 0
    referenced: set[OID] = set()
    for value in values:
        for oid in _oids_in(value):
            total_refs += 1
            referenced.add(oid)
    fan = total_refs / len(values) if values else 0.0
    stats.set_reference(class_name, attr, target, fan, len(referenced))


def _oids_in(value) -> list[OID]:
    if isinstance(value, OID):
        return [] if value.is_null else [value]
    if isinstance(value, (set, frozenset, list, tuple)):
        result = []
        for element in value:
            result.extend(_oids_in(element))
        return result
    return []
