"""Cost of basic file operations (Section 5).

* ``SEQCOST(b) = s + r + b*ebt`` -- sequential access to b pages (with the
  ESM caveat that a file stored as a B+-tree costs random instead).
* ``RNDCOST(b) = b * (s + r + btt)`` -- random access to b pages.
* ``INDCOST(k)`` -- accessing OIDs for k random keys through a secondary
  B+-tree index, level by level through the c(n, m, r) approximation.
* ``RNGXCOST(fract) = fract * leaves(I) * (s + r + btt)`` -- a range query
  touching the given fraction of the key domain.
"""

from __future__ import annotations

import math

from repro.cost.approx import c_approx
from repro.storage.btree import BTreeParams
from repro.storage.disk import DiskParams


def seqcost(params: DiskParams, pages: float) -> float:
    """SEQCOST(b) = s + r + b * ebt."""
    if pages <= 0:
        return 0.0
    if params.esm_sequential_is_random:
        return rndcost(params, pages)
    return params.s + params.r + pages * params.ebt


def rndcost(params: DiskParams, pages: float) -> float:
    """RNDCOST(b) = b * (s + r + btt).  Fractional b is the expected-page
    count mid-derivation and is costed linearly."""
    if pages <= 0:
        return 0.0
    return pages * (params.s + params.r + params.btt)


def indcost(params: DiskParams, index: BTreeParams, k: float) -> float:
    """INDCOST(k): k random key probes through B+-tree index I.

    .. math::

        INDCOST(k) = \\Big(\\sum_{i=1}^{level(I)}
            \\lceil c(n_i, m_i, r_i) \\rceil\\Big) \\cdot RNDCOST(1)

    with :math:`n_i = leaves(I)/(2v\\ln 2)^{i-2}`,
    :math:`m_i = leaves(I)/(2v\\ln 2)^{i-1}`, :math:`r_1 = k` and
    :math:`r_i = c(n_{i-1}, m_{i-1}, r_{i-1})`.
    """
    if k <= 0:
        return 0.0
    fanout = 2.0 * index.v * math.log(2.0)
    total_nodes = 0.0
    r_i = float(k)
    for i in range(1, index.level + 1):
        n_i = index.leaves / (fanout ** (i - 2))
        m_i = index.leaves / (fanout ** (i - 1))
        touched = c_approx(n_i, m_i, r_i)
        total_nodes += math.ceil(touched)
        r_i = touched
    return total_nodes * rndcost(params, 1)


def rngxcost(params: DiskParams, index: BTreeParams, fract: float) -> float:
    """RNGXCOST(fract) = fract * leaves(I) * (s + r + btt)."""
    if fract <= 0:
        return 0.0
    fract = min(1.0, fract)
    return fract * index.leaves * (params.s + params.r + params.btt)
