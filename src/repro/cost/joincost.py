"""Cost of the implicit join operation (Section 6).

``k_c`` objects of class C are implicitly joined through attribute A with
``k_d`` objects of class D (``C.A = D.self``); when no prior selection
applies, ``k_c = |C|`` and ``k_d = |D|``.  Four strategies are costed:

* forward traversal (``ftc``),
* backward traversal (``btc``) -- a sequential scan over C's extent,
* binary join index (``bjc = INDCOST(k)``),
* pointer-based hash-partition join (``hhc``) -- applicable only when A's
  constructor is Reference.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cost.approx import c_approx
from repro.cost.fileops import indcost, rndcost, seqcost
from repro.cost.params import DatabaseStats
from repro.storage.btree import BTreeParams
from repro.storage.disk import DiskParams

#: CPU cost of one in-memory reference comparison, in the same milliseconds
#: unit as the disk parameters.  The paper's btc formula charges
#: ``k_c * fan * k_d * CPUCOST`` for matching; the constant is configurable.
DEFAULT_CPU_COST = 1e-5


def pages_hit(nbpages: float, k: float) -> float:
    """Expected distinct pages touched by k uniform record probes:
    ``nbpages * (1 - (1 - 1/nbpages)^k)`` (Cardenas)."""
    if nbpages <= 0 or k <= 0:
        return 0.0
    return nbpages * (1.0 - (1.0 - 1.0 / nbpages) ** k)


def forward_traversal_cost(
    params: DiskParams,
    stats: DatabaseStats,
    class_c: str,
    attr: str,
    k_c: float,
) -> float:
    """ftc = RNDCOST(nbpg_c) + RNDCOST(k_c * fan(A, C, D)).

    ``nbpg_c`` is the expected number of C pages holding the ``k_c``
    starting objects; the second term chases every induced reference with
    no buffer hits (the paper's worst case).
    """
    nbpg_c = pages_hit(stats.nbpages(class_c), k_c)
    fan = stats.fan(attr, class_c)
    return rndcost(params, nbpg_c) + rndcost(params, k_c * fan)


def backward_traversal_cost(
    params: DiskParams,
    stats: DatabaseStats,
    class_c: str,
    attr: str,
    k_c: float,
    k_d: float,
    d_accessed_previously: bool = False,
    cpu_cost: float = DEFAULT_CPU_COST,
) -> float:
    """btc = SEQCOST(nbpages(C)) + k_c*fan*k_d*CPUCOST
    [+ SEQCOST(nbpages(D)) unless D was accessed previously].

    Backward traversal must sequentially scan the referencing extent C.
    """
    fan = stats.fan(attr, class_c)
    cost = seqcost(params, stats.nbpages(class_c))
    cost += k_c * fan * k_d * cpu_cost
    if not d_accessed_previously:
        target = stats.ref_target(attr, class_c)
        cost += seqcost(params, stats.nbpages(target))
    return cost


def binary_join_index_cost(
    params: DiskParams,
    index: BTreeParams,
    k: float,
) -> float:
    """bjc = INDCOST(k): probing the binary join index for k objects of
    either class."""
    return indcost(params, index, k)


def hash_partition_cost(
    params: DiskParams,
    stats: DatabaseStats,
    class_c: str,
    attr: str,
    k_c: float,
) -> float:
    """Pointer-based hash-partition join.

    The referencing class C is hashed on the pointer field A (the classic
    3(b+b') pass structure scaled by the fraction of C participating), then
    each pointer is chased into D:

    .. math::

        hhc = 3 \\frac{k_c}{|C|} SEQCOST(nbpages(C)) + RNDCOST(nbpg)

    with :math:`nbpg = nbpages(D)(1 - (1 - 1/nbpages(D))^{\\alpha})` and
    :math:`\\alpha = c(|C|\\,fan, totref, k_c\\,fan)`.  Only applicable when
    A's constructor is Reference.
    """
    card_c = stats.card(class_c)
    if card_c == 0:
        return 0.0
    fan = stats.fan(attr, class_c)
    totref = stats.totref(attr, class_c)
    target = stats.ref_target(attr, class_c)
    alpha = c_approx(card_c * fan, totref, k_c * fan)
    nbpg = pages_hit(stats.nbpages(target), alpha)
    return 3.0 * (k_c / card_c) * seqcost(params, stats.nbpages(class_c)) \
        + rndcost(params, nbpg)


class JoinStrategy:
    FORWARD = "FORWARD_TRAVERSAL"
    BACKWARD = "BACKWARD_TRAVERSAL"
    BINARY_JOIN_INDEX = "BINARY_JOIN_INDEX"
    HASH_PARTITION = "HASH_PARTITION"


@dataclass(frozen=True)
class JoinCostEstimate:
    strategy: str
    cost: float


def best_join_strategy(
    params: DiskParams,
    stats: DatabaseStats,
    class_c: str,
    attr: str,
    k_c: float,
    k_d: float,
    join_index: BTreeParams | None = None,
    attr_is_reference: bool = True,
    d_accessed_previously: bool = False,
    cpu_cost: float = DEFAULT_CPU_COST,
) -> JoinCostEstimate:
    """Cost all applicable strategies and return the cheapest (Section 8.3:
    'jc is the minimum cost join technique among the four join
    algorithms')."""
    candidates = [
        JoinCostEstimate(
            JoinStrategy.FORWARD,
            forward_traversal_cost(params, stats, class_c, attr, k_c),
        ),
        JoinCostEstimate(
            JoinStrategy.BACKWARD,
            backward_traversal_cost(
                params, stats, class_c, attr, k_c, k_d,
                d_accessed_previously, cpu_cost,
            ),
        ),
    ]
    if join_index is not None:
        candidates.append(
            JoinCostEstimate(
                JoinStrategy.BINARY_JOIN_INDEX,
                binary_join_index_cost(params, join_index, min(k_c, k_d)),
            )
        )
    if attr_is_reference:
        candidates.append(
            JoinCostEstimate(
                JoinStrategy.HASH_PARTITION,
                hash_partition_cost(params, stats, class_c, attr, k_c),
            )
        )
    return min(candidates, key=lambda estimate: estimate.cost)
