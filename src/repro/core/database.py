"""MoodDatabase: the user-facing facade.

Wraps :class:`~repro.core.kernel.MoodKernel` with conveniences: statement
scripts, automatic statistics collection before planning, a direct object
API (the 'defined through C++' route), and I/O accounting helpers for
experiments.
"""

from __future__ import annotations

from repro.core.kernel import (
    ExplainResult,
    MoodKernel,
    QueryResult,
    StatementResult,
)
from repro.model.objects import MoodObject
from repro.sql.ast import (
    DeallocateStmt,
    ExplainStmt,
    PrepareStmt,
    SelectQuery,
)
from repro.sql.parser import parse_script
from repro.storage.disk import DiskParams, IOStats
from repro.storage.oid import OID


class MoodDatabase:
    """A MOOD database instance."""

    def __init__(
        self,
        disk_params: DiskParams | None = None,
        buffer_capacity: int = 512,
        auto_analyze: bool = True,
        cache_enabled: bool = True,
        cache_capacity: int = 4096,
        plan_cache_capacity: int = 256,
        batch_enabled: bool = True,
        page_base: int = 0,
    ):
        self.kernel = MoodKernel(
            disk_params, buffer_capacity,
            cache_enabled=cache_enabled, cache_capacity=cache_capacity,
            plan_cache_capacity=plan_cache_capacity,
            batch_enabled=batch_enabled,
            page_base=page_base,
        )
        self.auto_analyze = auto_analyze
        self._schema_version = 0
        self._analyzed_version = -1
        self._recluster_daemon = None

    # -- statements -------------------------------------------------------------

    def execute(self, sql: str) -> QueryResult | StatementResult:
        """Execute one statement (auto-analyzing before SELECTs)."""
        results = self.execute_script(sql)
        return results[-1]

    def execute_script(self, sql: str) -> list[QueryResult | StatementResult]:
        """Execute a ';'-separated script; returns one result per statement."""
        statements = parse_script(sql)
        results = []
        for statement in statements:
            # EXECUTE resolves to its inner statement *before* the
            # read-only classification: EXECUTE of a SELECT must not bump
            # the schema version (that would spuriously re-ANALYZE and
            # cold the plan cache on every warm execution).
            resolved = self.kernel.resolve_statement(statement)
            read_only = isinstance(
                resolved,
                (SelectQuery, ExplainStmt, PrepareStmt, DeallocateStmt),
            )
            if read_only:
                self._ensure_statistics()
            result = self.kernel.execute_statement(resolved)
            if not read_only:
                self._schema_version += 1
            results.append(result)
        return results

    def query(self, sql: str) -> QueryResult:
        result = self.execute(sql)
        if not isinstance(result, QueryResult):
            raise TypeError("query() is for SELECT statements")
        return result

    def explain(self, sql: str, analyze: bool = True) -> ExplainResult:
        """``EXPLAIN [ANALYZE]`` a query; a bare SELECT is prefixed."""
        text = sql.strip().rstrip(";")
        if not text.upper().startswith("EXPLAIN"):
            text = ("EXPLAIN ANALYZE " if analyze else "EXPLAIN ") + text
        result = self.execute(text)
        if not isinstance(result, ExplainResult):
            raise TypeError("explain() is for SELECT statements")
        return result

    def _ensure_statistics(self) -> None:
        if not self.auto_analyze:
            return
        if self._analyzed_version != self._schema_version:
            self.kernel.analyze()
            self._analyzed_version = self._schema_version

    def analyze(self):
        stats = self.kernel.analyze()
        self._analyzed_version = self._schema_version
        return stats

    # -- direct object API (the C++ route) -----------------------------------------

    def new_object(self, class_name: str, state: dict) -> MoodObject:
        """Create an object directly; MoodObject values become references."""
        converted = {key: _to_storable(value) for key, value in state.items()}
        self._schema_version += 1  # data changed; stats are stale
        return self.kernel.objects.new_object(class_name, converted)

    def get(self, oid: OID) -> MoodObject:
        return self.kernel.objects.deref(oid)

    def save(self, obj: MoodObject) -> None:
        self.kernel.objects.update_object(obj)
        self._schema_version += 1

    def delete(self, oid: OID) -> None:
        self.kernel.objects.delete_object(oid)
        self._schema_version += 1

    def extent(self, class_name: str, deep: bool = True) -> list[MoodObject]:
        return list(self.kernel.objects.iter_extent(class_name, deep=deep))

    def invoke(self, obj: MoodObject, method: str, args: list | None = None):
        """Invoke a member function with late binding."""
        return self.kernel.functions.invoke(
            obj, method, args or [], resolve=self.kernel.objects.deref
        )

    # -- dynamic clustering ------------------------------------------------------

    @property
    def reclusterer(self):
        """The kernel's online reclusterer (status via ``SYS$CLUSTERING``)."""
        return self.kernel.reclusterer

    def recluster(self) -> dict:
        """Run one synchronous reclustering pass; returns its run stats."""
        return self.kernel.reclusterer.run_once()

    def start_reclusterer(self, interval: float = 30.0) -> None:
        """Start (or retune) the background reclustering daemon."""
        if self._recluster_daemon is not None:
            self._recluster_daemon.stop()
        from repro.cluster.recluster import ReclusterDaemon

        self._recluster_daemon = ReclusterDaemon(
            self.kernel.reclusterer, interval=interval
        )
        self._recluster_daemon.start()

    def stop_reclusterer(self) -> None:
        if self._recluster_daemon is not None:
            self._recluster_daemon.stop()
            self._recluster_daemon = None

    @property
    def reclusterer_running(self) -> bool:
        return (
            self._recluster_daemon is not None
            and self._recluster_daemon.running
        )

    # -- accounting -------------------------------------------------------------

    @property
    def object_cache(self):
        """The deref cache (``None`` when disabled); its ``.stats`` carries
        hits/misses/invalidations for experiments."""
        return self.kernel.objects.cache

    def set_cache_enabled(self, enabled: bool) -> None:
        """Toggle the deref fast path (off = paper-faithful I/O charging)."""
        self.kernel.objects.set_cache_enabled(enabled)

    @property
    def batch_enabled(self) -> bool:
        return self.kernel.objects.batch_enabled

    def set_batch_enabled(self, enabled: bool) -> None:
        """Toggle set-oriented execution (off = the paper's row-at-a-time
        operators, and no join fusion)."""
        self.kernel.set_batch_enabled(enabled)

    @property
    def io_stats(self) -> IOStats:
        return self.kernel.storage.io_stats

    def reset_io(self) -> None:
        self.kernel.storage.io_stats.reset()

    def io_probe(self):
        """Snapshot for measuring a single operation's I/O."""
        return self.kernel.storage.io_snapshot()

    def io_since(self, snapshot) -> IOStats:
        return self.kernel.storage.io_stats.since(snapshot)


def _to_storable(value):
    if isinstance(value, MoodObject):
        return value.oid
    if isinstance(value, (set, frozenset)):
        return {_to_storable(v) for v in value}
    if isinstance(value, list):
        return [_to_storable(v) for v in value]
    return value
