"""The MOOD kernel and database facade."""

from repro.core.database import MoodDatabase
from repro.core.errors import MoodError
from repro.core.kernel import MoodKernel, QueryResult, StatementResult

__all__ = ["MoodDatabase", "MoodError", "MoodKernel", "QueryResult",
           "StatementResult"]
