"""The staged statement pipeline: parse -> rewrite -> bind -> optimize.

The paper's kernel interprets every MOODSQL statement from scratch; this
module splits that monolith into explicit compile phases so the expensive
front half can be paid once and reused:

* **parse** produces the AST (``repro.sql.parser``);
* **rewrite** simplifies predicates (constant folding, De Morgan) while
  bind parameters (:class:`~repro.sql.ast.Param`) pass through opaquely;
* **bind** substitutes parameter values as :class:`~repro.sql.ast.Literal`
  nodes, so the optimizer's selectivity estimation always sees concrete
  bind-time constants;
* **optimize** runs the cost-based planner (Algorithms 8.1/8.2) -- and its
  output is memoised in the :class:`PlanCache`, keyed by the normalized
  text of the fully-bound statement and stamped with the catalog
  schema-version and statistics-version counters.

A cached plan re-validates its stamp on every lookup, so DDL or ANALYZE
can never leak a stale plan into execution; the kernel additionally
invalidates eagerly from its DDL dispatch table.

:class:`PreparedStatement` is the immutable compile artifact;
:class:`PreparedRegistry` is a (session- or kernel-scoped) namespace of
them, behind the ``PREPARE`` / ``EXECUTE`` / ``DEALLOCATE`` statements.
"""

from __future__ import annotations

import dataclasses
import itertools
import time
from collections import OrderedDict
from collections.abc import Mapping, Sequence

from repro.core.errors import (
    ExecutionError,
    MoodSqlError,
    UnknownPreparedStatementError,
)
from repro.sql.ast import (
    DeleteStmt,
    ExplainStmt,
    Literal,
    OrderItem,
    Param,
    SelectQuery,
    Statement,
    UpdateStmt,
)
from repro.sql.rewrite import simplify

#: Monotonic stamp source for statistics versions (shared with
#: :func:`repro.cost.statistics.collect_statistics`).
_stats_version_counter = itertools.count(1)


def next_stats_version() -> int:
    """The next statistics-version stamp (process-wide monotonic)."""
    return next(_stats_version_counter)


# --------------------------------------------------------------------------
# Generic AST walking (every node is a frozen dataclass)
# --------------------------------------------------------------------------

def _map_params(node, fn):
    """Rebuild ``node`` with every :class:`Param` replaced by ``fn(param)``;
    shares unchanged subtrees."""
    if isinstance(node, Param):
        return fn(node)
    if isinstance(node, tuple):
        mapped = tuple(_map_params(item, fn) for item in node)
        return node if mapped == node else mapped
    if dataclasses.is_dataclass(node) and not isinstance(node, type):
        changed = {}
        for field in dataclasses.fields(node):
            value = getattr(node, field.name)
            mapped = _map_params(value, fn)
            if mapped is not value and mapped != value:
                changed[field.name] = mapped
        return dataclasses.replace(node, **changed) if changed else node
    return node


def collect_params(statement: Statement) -> tuple[Param, ...]:
    """Every distinct bind parameter in the statement, in positional
    (first-appearance) order."""
    found: dict[int, Param] = {}

    def visit(param: Param) -> Param:
        found.setdefault(param.index, param)
        return param

    _map_params(statement, visit)
    return tuple(found[index] for index in sorted(found))


# --------------------------------------------------------------------------
# Canonical statement text (the plan-cache key)
# --------------------------------------------------------------------------

def render_statement(statement: Statement) -> str:
    """Normalized statement text: whitespace- and case-insensitive for the
    clauses, deterministic for the expressions (their ``__str__``).  Two
    statements that parse to the same AST render identically, so this is
    the plan cache's key for bound SELECTs and the display text of
    SYS$PLANS rows."""
    if isinstance(statement, SelectQuery):
        return _render_select(statement)
    if isinstance(statement, ExplainStmt):
        prefix = "EXPLAIN ANALYZE " if statement.analyze else "EXPLAIN "
        return prefix + _render_select(statement.query)
    if isinstance(statement, DeleteStmt):
        text = f"DELETE FROM {statement.range_var}"
        if statement.where is not None:
            text += f" WHERE {statement.where}"
        return text
    if isinstance(statement, UpdateStmt):
        sets = ", ".join(
            f"{attr} = {expr}" for attr, expr in statement.assignments
        )
        text = f"UPDATE {statement.range_var} SET {sets}"
        if statement.where is not None:
            text += f" WHERE {statement.where}"
        return text
    # DDL / NEW / ANALYZE never enter the plan cache; a deterministic
    # dataclass repr is identity enough for display and registries.
    return repr(statement)


def _render_select(query: SelectQuery) -> str:
    parts = ["SELECT"]
    if query.distinct:
        parts.append("DISTINCT")
    parts.append(
        ", ".join(str(p) for p in query.projections)
        if query.projections else "*"
    )
    parts.append("FROM")
    parts.append(", ".join(str(r) for r in query.ranges))
    if query.where is not None:
        parts.append(f"WHERE {query.where}")
    if query.group_by:
        parts.append("GROUP BY " + ", ".join(str(p) for p in query.group_by))
    if query.having is not None:
        parts.append(f"HAVING {query.having}")
    if query.order_by:
        parts.append("ORDER BY " + ", ".join(
            _render_order_item(item) for item in query.order_by
        ))
    return " ".join(parts)


def _render_order_item(item: OrderItem) -> str:
    return f"{item.expr}" + ("" if item.ascending else " DESC")


# --------------------------------------------------------------------------
# Rewrite and bind phases
# --------------------------------------------------------------------------

def rewrite_statement(statement: Statement) -> Statement:
    """The rewrite phase: simplify predicate clauses once, at compile
    time.  :class:`Param` nodes are opaque to the simplifier, so the
    rewritten tree is reusable across every future binding."""
    if isinstance(statement, SelectQuery):
        changed = {}
        if statement.where is not None:
            changed["where"] = simplify(statement.where)
        if statement.having is not None:
            changed["having"] = simplify(statement.having)
        return dataclasses.replace(statement, **changed) \
            if changed else statement
    if isinstance(statement, (DeleteStmt, UpdateStmt)) \
            and statement.where is not None:
        return dataclasses.replace(statement, where=simplify(statement.where))
    return statement


_BINDABLE = (int, float, str, bool, type(None))


def bind_statement(
    statement: Statement,
    params: tuple[Param, ...],
    values: Sequence | Mapping,
) -> Statement:
    """The bind phase: substitute constants for parameters, producing a
    fully-ground statement the optimizer can estimate selectivity on.

    ``values`` binds positionally (sequence, first-appearance order) or by
    name (mapping, for ``:name`` parameters).
    """
    if isinstance(values, Mapping):
        assignments = _bind_by_name(params, values)
    else:
        assignments = _bind_positional(params, values)
    for value in assignments.values():
        if not isinstance(value, _BINDABLE):
            raise ExecutionError(
                f"parameter values must be constants, got "
                f"{type(value).__name__}"
            )

    def substitute(param: Param) -> Literal:
        return Literal(assignments[param.index])

    return _map_params(statement, substitute)


def _bind_positional(
    params: tuple[Param, ...], values: Sequence
) -> dict[int, object]:
    if len(values) != len(params):
        raise ExecutionError(
            f"statement takes {len(params)} parameter(s), "
            f"{len(values)} given"
        )
    return {param.index: value for param, value in zip(params, values)}


def _bind_by_name(
    params: tuple[Param, ...], values: Mapping
) -> dict[int, object]:
    assignments: dict[int, object] = {}
    names = set()
    for param in params:
        if param.name is None:
            raise ExecutionError(
                "positional '?' parameters cannot be bound by name"
            )
        if param.name not in values:
            raise ExecutionError(f"missing value for parameter :{param.name}")
        names.add(param.name)
        assignments[param.index] = values[param.name]
    extra = set(values) - names
    if extra:
        raise ExecutionError(
            f"unknown parameter name(s): {', '.join(sorted(extra))}"
        )
    return assignments


# --------------------------------------------------------------------------
# The compile artifact and its registry
# --------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class PreparedStatement:
    """An immutable, reusable compile artifact: the parsed + rewritten
    statement with its parameter signature.  ``bind`` yields the ground
    statement for one execution; the optimize phase (and its memoisation)
    happens downstream in the kernel."""

    name: str
    sql: str                        # normalized text, placeholders intact
    statement: Statement            # parse + rewrite output
    params: tuple[Param, ...]

    @property
    def param_names(self) -> tuple[str, ...]:
        return tuple(
            param.name or f"?{param.index + 1}" for param in self.params
        )

    def bind(self, values: Sequence | Mapping = ()) -> Statement:
        return bind_statement(self.statement, self.params, values)


def compile_statement(name: str, statement: Statement) -> PreparedStatement:
    """Run the compile-time phases (rewrite; parse already happened) and
    freeze the artifact."""
    if isinstance(statement, ExplainStmt):
        raise MoodSqlError("EXPLAIN cannot be prepared; EXPLAIN the query")
    rewritten = rewrite_statement(statement)
    return PreparedStatement(
        name=name,
        sql=render_statement(rewritten),
        statement=rewritten,
        params=collect_params(rewritten),
    )


class PreparedRegistry:
    """Name -> :class:`PreparedStatement`; one per session (the wire
    protocol's namespace) or per kernel (embedded use).  Re-PREPARE of an
    existing name replaces it."""

    def __init__(self):
        self._statements: dict[str, PreparedStatement] = {}

    def prepare(self, name: str, statement: Statement) -> PreparedStatement:
        prepared = compile_statement(name, statement)
        self._statements[name] = prepared
        return prepared

    def get(self, name: str) -> PreparedStatement:
        try:
            return self._statements[name]
        except KeyError:
            raise UnknownPreparedStatementError(
                f"no prepared statement {name!r}"
            ) from None

    def deallocate(self, name: str) -> None:
        if name not in self._statements:
            raise UnknownPreparedStatementError(
                f"no prepared statement {name!r}"
            )
        del self._statements[name]

    def names(self) -> list[str]:
        return sorted(self._statements)

    def clear(self) -> None:
        self._statements.clear()

    def __len__(self) -> int:
        return len(self._statements)


# --------------------------------------------------------------------------
# The plan cache
# --------------------------------------------------------------------------

@dataclasses.dataclass
class CachedPlan:
    """One memoised optimizer output, stamped with the catalog and
    statistics versions it was planned under."""

    key: str
    plan: object                    # optimizer.planner.QueryPlan
    schema_version: int
    stats_version: int
    hits: int = 0
    created_at: float = 0.0
    last_used_at: float = 0.0


class PlanCache:
    """Capacity-bounded LRU of compiled query plans.

    Keys are the normalized text of the *fully-bound* statement, so the
    same prepared statement executed with equal parameters hits, while a
    new parameter vector misses (and is re-optimized under its own
    bind-time selectivities).  Every entry re-validates its
    ``(schema_version, stats_version)`` stamp at lookup: a stale entry is
    dropped, never executed.  Disabled (``enabled=False``) the cache is
    bypassed entirely -- the paper-faithful compile-per-statement mode.
    """

    def __init__(self, capacity: int = 256, metrics=None, events=None,
                 enabled: bool = True):
        self.capacity = max(1, capacity)
        self.enabled = enabled
        self.events = events
        self._entries: OrderedDict[str, CachedPlan] = OrderedDict()
        if metrics is not None:
            self._m_hits = metrics.counter("hits")
            self._m_misses = metrics.counter("misses")
            self._m_stores = metrics.counter("stores")
            self._m_invalidations = metrics.counter("invalidations")
            self._m_evictions = metrics.counter("evictions")
        else:
            from repro.obs.metrics import Counter

            self._m_hits = Counter("hits")
            self._m_misses = Counter("misses")
            self._m_stores = Counter("stores")
            self._m_invalidations = Counter("invalidations")
            self._m_evictions = Counter("evictions")

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: str, schema_version: int,
               stats_version: int) -> CachedPlan | None:
        """The stamped lookup: a hit must match both version counters."""
        if not self.enabled:
            return None
        entry = self._entries.get(key)
        if entry is None:
            self._m_misses.inc()
            return None
        if (entry.schema_version != schema_version
                or entry.stats_version != stats_version):
            # The eager DDL/ANALYZE invalidation normally got here first;
            # the stamp check is the backstop that makes staleness
            # impossible rather than merely unlikely.
            del self._entries[key]
            self._m_invalidations.inc()
            self._m_misses.inc()
            return None
        self._entries.move_to_end(key)
        entry.hits += 1
        entry.last_used_at = time.time()
        self._m_hits.inc()
        return entry

    def store(self, key: str, plan, schema_version: int,
              stats_version: int) -> None:
        if not self.enabled:
            return
        while len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self._m_evictions.inc()
        now = time.time()
        self._entries[key] = CachedPlan(
            key=key, plan=plan,
            schema_version=schema_version, stats_version=stats_version,
            created_at=now, last_used_at=now,
        )
        self._m_stores.inc()

    def invalidate_all(self, reason: str = "") -> int:
        """Eager invalidation (DDL, ANALYZE): drop every entry."""
        dropped = len(self._entries)
        if dropped:
            self._entries.clear()
            self._m_invalidations.inc(dropped)
            if self.events is not None:
                self.events.emit(
                    "plancache.invalidate", reason=reason, dropped=dropped
                )
        return dropped

    # -- reporting ---------------------------------------------------------

    def hit_rate(self) -> float:
        looked = self._m_hits.value + self._m_misses.value
        return self._m_hits.value / looked if looked else 0.0

    def stats(self) -> dict:
        return {
            "enabled": self.enabled,
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self._m_hits.value,
            "misses": self._m_misses.value,
            "stores": self._m_stores.value,
            "invalidations": self._m_invalidations.value,
            "evictions": self._m_evictions.value,
            "hit_rate": round(self.hit_rate(), 4),
        }

    def rows(self, schema_version: int, stats_version: int) -> list[dict]:
        """SYS$PLANS rows, most recently used first."""
        rows = []
        for entry in reversed(self._entries.values()):
            rows.append({
                "statement": entry.key,
                "hits": entry.hits,
                "schema_version": entry.schema_version,
                "stats_version": entry.stats_version,
                "valid": (entry.schema_version == schema_version
                          and entry.stats_version == stats_version),
                "created_at": entry.created_at,
                "last_used_at": entry.last_used_at,
            })
        return rows
