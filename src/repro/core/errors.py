"""Exception hierarchy for the MOOD reproduction.

The paper (Section 2) routes *all* system errors -- including signals raised
by dynamically linked, separately compiled member functions -- through a
single ``Exception`` class so that compiled code fails as gracefully as
interpreted code.  We mirror that with a single rooted hierarchy: every error
the library raises derives from :class:`MoodError`.
"""

from __future__ import annotations


class MoodError(Exception):
    """Root of all errors raised by the MOOD reproduction."""


# --------------------------------------------------------------------------
# Storage layer
# --------------------------------------------------------------------------

class StorageError(MoodError):
    """Base class for storage-manager failures."""


class PageFullError(StorageError):
    """A slotted page had insufficient free space for a record."""


class RecordNotFoundError(StorageError):
    """An OID did not resolve to a live record."""


class FileNotFoundStorageError(StorageError):
    """A storage file id did not resolve to a file."""


class VolumeError(StorageError):
    """A volume id did not resolve to a mounted volume."""


class IndexStructureError(StorageError):
    """An index (B+-tree, hash, R-tree) violated a structural expectation."""


class LockError(MoodError):
    """Base class for lock-manager failures."""


class DeadlockError(LockError):
    """A lock wait would have closed a cycle in the wait-for graph."""


class LockTimeoutError(LockError):
    """A lock could not be acquired within the allotted time."""


class TransactionError(MoodError):
    """Illegal transaction state transition or use of a dead transaction."""


class RecoveryError(MoodError):
    """Restart recovery could not be completed."""


# --------------------------------------------------------------------------
# Data model / type system
# --------------------------------------------------------------------------

class TypeSystemError(MoodError):
    """Base class for type-system failures."""


class TypeMismatchError(TypeSystemError):
    """A value did not conform to its declared MOOD type."""


class UnknownTypeError(TypeSystemError):
    """A type id or type name did not resolve in the type registry."""


class SerdeError(MoodError):
    """Value (de)serialisation failed."""


# --------------------------------------------------------------------------
# Catalog and schema
# --------------------------------------------------------------------------

class CatalogError(MoodError):
    """Base class for catalog failures."""


class SchemaError(CatalogError):
    """Illegal schema definition or modification."""


class UnknownClassError(CatalogError):
    """A class name or type id did not resolve in the catalog."""


class UnknownAttributeError(CatalogError):
    """An attribute name did not resolve on a class."""


# --------------------------------------------------------------------------
# Function manager
# --------------------------------------------------------------------------

class FunctionError(MoodError):
    """Base class for function-manager failures."""


class FunctionNotFoundError(FunctionError):
    """No member function matched the requested signature."""


class CompilationError(FunctionError):
    """A member-function body failed to compile."""


class FunctionRuntimeError(FunctionError):
    """A dynamically linked member function raised at run time.

    This is the reproduction of the paper's ``Exception`` class: errors from
    compiled functions are caught and surfaced 'as if they are interpreted'.
    """

    def __init__(self, signature: str, original: BaseException):
        super().__init__(f"member function {signature!r} failed: {original!r}")
        self.signature = signature
        self.original = original


# --------------------------------------------------------------------------
# MOODSQL front end
# --------------------------------------------------------------------------

class MoodSqlError(MoodError):
    """Base class for MOODSQL front-end failures."""


class LexerError(MoodSqlError):
    """The MOODSQL lexer met an illegal character sequence."""

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"{message} at line {line}, column {column}")
        self.line = line
        self.column = column


class ParseError(MoodSqlError):
    """The MOODSQL parser met an unexpected token."""


# --------------------------------------------------------------------------
# Algebra / optimizer / executor
# --------------------------------------------------------------------------

class AlgebraError(MoodError):
    """An algebra operator was applied to an unsupported argument kind."""


class OptimizerError(MoodError):
    """The optimizer could not produce a plan."""


class ExecutionError(MoodError):
    """Plan execution failed."""
