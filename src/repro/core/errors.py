"""Exception hierarchy for the MOOD reproduction.

The paper (Section 2) routes *all* system errors -- including signals raised
by dynamically linked, separately compiled member functions -- through a
single ``Exception`` class so that compiled code fails as gracefully as
interpreted code.  We mirror that with a single rooted hierarchy: every error
the library raises derives from :class:`MoodError`.

Every class carries a stable identity usable across process boundaries:

* ``code`` -- a short mnemonic string (``"DEADLOCK"``, ``"PARSE"``), and
* ``errno`` -- a numeric code, allocated in per-subsystem blocks
  (``11xx`` storage, ``12xx`` locks, ..., ``20xx`` server).

The wire protocol (:mod:`repro.server.protocol`) ships ``code``/``errno``
in every error frame so a :class:`~repro.server.client.MoodClient` can
re-raise faithfully, and ``retryable`` marks the errors a client may
safely retry after backing off (deadlock victims, lock/admission
timeouts): the transaction was rolled back, the statement had no effect.
"""

from __future__ import annotations


class MoodError(Exception):
    """Root of all errors raised by the MOOD reproduction."""

    #: Stable mnemonic identifying the error class on the wire.
    code: str = "MOOD"
    #: Stable numeric code (per-subsystem blocks, see module docstring).
    errno: int = 1000
    #: True when a client may retry the failed unit of work.
    retryable: bool = False


# --------------------------------------------------------------------------
# Storage layer
# --------------------------------------------------------------------------

class StorageError(MoodError):
    """Base class for storage-manager failures."""

    code = "STORAGE"
    errno = 1100


class PageFullError(StorageError):
    """A slotted page had insufficient free space for a record."""

    code = "PAGE_FULL"
    errno = 1101


class RecordNotFoundError(StorageError):
    """An OID did not resolve to a live record."""

    code = "RECORD_NOT_FOUND"
    errno = 1102


class FileNotFoundStorageError(StorageError):
    """A storage file id did not resolve to a file."""

    code = "FILE_NOT_FOUND"
    errno = 1103


class VolumeError(StorageError):
    """A volume id did not resolve to a mounted volume."""

    code = "VOLUME"
    errno = 1104


class IndexStructureError(StorageError):
    """An index (B+-tree, hash, R-tree) violated a structural expectation."""

    code = "INDEX_STRUCTURE"
    errno = 1105


class LockError(MoodError):
    """Base class for lock-manager failures."""

    code = "LOCK"
    errno = 1200


class DeadlockError(LockError):
    """A lock wait would have closed a cycle in the wait-for graph."""

    code = "DEADLOCK"
    errno = 1201
    retryable = True


class LockTimeoutError(LockError):
    """A lock could not be acquired within the allotted time."""

    code = "LOCK_TIMEOUT"
    errno = 1202
    retryable = True


class TransactionError(MoodError):
    """Illegal transaction state transition or use of a dead transaction."""

    code = "TRANSACTION"
    errno = 1300


class RecoveryError(MoodError):
    """Restart recovery could not be completed."""

    code = "RECOVERY"
    errno = 1400


# --------------------------------------------------------------------------
# Data model / type system
# --------------------------------------------------------------------------

class TypeSystemError(MoodError):
    """Base class for type-system failures."""

    code = "TYPE_SYSTEM"
    errno = 1500


class TypeMismatchError(TypeSystemError):
    """A value did not conform to its declared MOOD type."""

    code = "TYPE_MISMATCH"
    errno = 1501


class UnknownTypeError(TypeSystemError):
    """A type id or type name did not resolve in the type registry."""

    code = "UNKNOWN_TYPE"
    errno = 1502


class SerdeError(MoodError):
    """Value (de)serialisation failed."""

    code = "SERDE"
    errno = 1510


# --------------------------------------------------------------------------
# Catalog and schema
# --------------------------------------------------------------------------

class CatalogError(MoodError):
    """Base class for catalog failures."""

    code = "CATALOG"
    errno = 1600


class SchemaError(CatalogError):
    """Illegal schema definition or modification."""

    code = "SCHEMA"
    errno = 1601


class UnknownClassError(CatalogError):
    """A class name or type id did not resolve in the catalog."""

    code = "UNKNOWN_CLASS"
    errno = 1602


class UnknownAttributeError(CatalogError):
    """An attribute name did not resolve on a class."""

    code = "UNKNOWN_ATTRIBUTE"
    errno = 1603


# --------------------------------------------------------------------------
# Function manager
# --------------------------------------------------------------------------

class FunctionError(MoodError):
    """Base class for function-manager failures."""

    code = "FUNCTION"
    errno = 1700


class FunctionNotFoundError(FunctionError):
    """No member function matched the requested signature."""

    code = "FUNCTION_NOT_FOUND"
    errno = 1701


class CompilationError(FunctionError):
    """A member-function body failed to compile."""

    code = "COMPILATION"
    errno = 1702


class FunctionRuntimeError(FunctionError):
    """A dynamically linked member function raised at run time.

    This is the reproduction of the paper's ``Exception`` class: errors from
    compiled functions are caught and surfaced 'as if they are interpreted'.
    """

    code = "FUNCTION_RUNTIME"
    errno = 1703

    def __init__(self, signature: str, original: BaseException):
        super().__init__(f"member function {signature!r} failed: {original!r}")
        self.signature = signature
        self.original = original


# --------------------------------------------------------------------------
# MOODSQL front end
# --------------------------------------------------------------------------

class MoodSqlError(MoodError):
    """Base class for MOODSQL front-end failures."""

    code = "MOODSQL"
    errno = 1800


class LexerError(MoodSqlError):
    """The MOODSQL lexer met an illegal character sequence."""

    code = "LEXER"
    errno = 1801

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"{message} at line {line}, column {column}")
        self.line = line
        self.column = column


class ParseError(MoodSqlError):
    """The MOODSQL parser met an unexpected token."""

    code = "PARSE"
    errno = 1802


# --------------------------------------------------------------------------
# Algebra / optimizer / executor
# --------------------------------------------------------------------------

class AlgebraError(MoodError):
    """An algebra operator was applied to an unsupported argument kind."""

    code = "ALGEBRA"
    errno = 1900


class OptimizerError(MoodError):
    """The optimizer could not produce a plan."""

    code = "OPTIMIZER"
    errno = 1901


class ExecutionError(MoodError):
    """Plan execution failed."""

    code = "EXECUTION"
    errno = 1902


class LockCancelledError(LockError):
    """A lock wait was cancelled because its owner was aborted externally
    (e.g. the server timed the transaction out from another thread)."""

    code = "LOCK_CANCELLED"
    errno = 1203
    retryable = True


# --------------------------------------------------------------------------
# Server (repro.server)
# --------------------------------------------------------------------------

class ServerError(MoodError):
    """Base class for database-server failures."""

    code = "SERVER"
    errno = 2000


class ServerBusyError(ServerError):
    """Admission control rejected the statement: worker pool saturated and
    the wait queue full (or the queue wait timed out)."""

    code = "SERVER_BUSY"
    errno = 2001
    retryable = True


class StatementTimeoutError(ServerError):
    """A statement exceeded its per-statement time budget."""

    code = "STATEMENT_TIMEOUT"
    errno = 2002
    retryable = True


class SessionClosedError(ServerError):
    """An operation was issued against a closed session."""

    code = "SESSION_CLOSED"
    errno = 2003


class ProtocolError(ServerError):
    """A malformed frame or an unknown operation arrived on the wire."""

    code = "PROTOCOL"
    errno = 2004


class ServerShuttingDownError(ServerError):
    """The server is draining and no longer admits new statements."""

    code = "SHUTTING_DOWN"
    errno = 2005
    retryable = True


class TransactionAbortedError(ServerError):
    """The session's transaction was rolled back by the server (deadlock
    victim, lock timeout, statement timeout); the client should retry the
    whole transaction."""

    code = "TXN_ABORTED"
    errno = 2006
    retryable = True


class UnknownPreparedStatementError(ServerError):
    """EXECUTE / DEALLOCATE named a prepared statement the session does
    not hold (never prepared, deallocated, or lost with a previous
    session).  Not retryable as-is: the client must re-PREPARE first --
    :class:`~repro.server.client.MoodClient` does so transparently from
    its retained statement text."""

    code = "UNKNOWN_PREPARED"
    errno = 2007


class ShardUnavailableError(ServerError):
    """A shard worker could not be reached (starting up, crashed, or
    restarting).  Presumed abort guarantees any transaction this statement
    belonged to rolls back, so the client may retry the whole transaction
    once the shard is back."""

    code = "SHARD_UNAVAILABLE"
    errno = 2008
    retryable = True


class TransactionInDoubtError(ServerError):
    """A cross-shard commit could not reach its decision point (a
    participant vanished mid-prepare).  No commit decision was logged, so
    presumed abort resolves every prepared branch to rollback; the client
    may retry the transaction."""

    code = "TXN_IN_DOUBT"
    errno = 2009
    retryable = True


# --------------------------------------------------------------------------
# The code registry
# --------------------------------------------------------------------------

def error_classes() -> list[type[MoodError]]:
    """The canonical taxonomy: every :class:`MoodError` subclass defined
    here (including the root), by errno.  Subclasses other modules define
    (e.g. the client's wire-error wrapper) inherit an identity but are not
    part of the registry."""
    found: list[type[MoodError]] = [MoodError]
    stack: list[type[MoodError]] = [MoodError]
    while stack:
        for sub in stack.pop().__subclasses__():
            if sub.__module__ == __name__:
                found.append(sub)
            stack.append(sub)
    return sorted(found, key=lambda cls: cls.errno)


def error_class_for(code: str | int) -> type[MoodError]:
    """Resolve a mnemonic or numeric code back to its exception class.

    Unknown codes resolve to :class:`MoodError` itself, so a newer server
    never crashes an older client (and vice versa).
    """
    for cls in error_classes():
        if cls.code == code or cls.errno == code:
            return cls
    return MoodError


def describe_error(exc: BaseException) -> dict:
    """The wire-protocol identity of an exception: a JSON-ready dict of
    ``code``/``errno``/``retryable``/``message``.  Non-MOOD exceptions map
    to the root class's identity (the paper's single ``Exception`` story:
    foreign errors surface as gracefully as native ones)."""
    if isinstance(exc, MoodError):
        return {
            "code": exc.code,
            "errno": exc.errno,
            "retryable": exc.retryable,
            "message": str(exc),
        }
    return {
        "code": MoodError.code,
        "errno": MoodError.errno,
        "retryable": False,
        "message": f"{type(exc).__name__}: {exc}",
    }
