"""The MOOD kernel (Figure 2.1).

One object wiring every subsystem the paper describes: ESM (storage), the
CATALOG, the Function Manager, the MOODSQL interpreter with its optimizer,
and the execution engine.  ``execute`` is the single entry point the paper
prescribes -- *"interfaces access the database through SQL statements
interpreted by the kernel"* -- including the DDL, ``new`` object creation,
DML, and ad-hoc queries.

The kernel traces each statement's processing steps (parse, simplify, DNF,
optimize, execute, and the operator events of Figure 7.2); the trace of the
last statement is kept on :attr:`MoodKernel.trace`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.catalog import Catalog
from repro.catalog.cppfront import generate_header
from repro.catalog.entities import MoodsFunction
from repro.core.errors import ExecutionError, MoodSqlError
from repro.cost.params import DatabaseStats
from repro.cost.statistics import collect_statistics
from repro.engine.cursor import ObjectCursor
from repro.engine.evaluator import ExpressionEvaluator, Row
from repro.engine.executor import Executor, TraceEvent
from repro.engine.indexes import IndexManager
from repro.engine.objects import ObjectManager
from repro.functions.manager import FunctionManager
from repro.model.objects import MoodObject
from repro.obs.explain import (
    ExplainReport,
    analyze_query_plan,
    explain_query_plan,
)
from repro.obs.spans import Span, SpanRecorder
from repro.obs.trace import SlowQueryLog, StatementLog
from repro.obs.views import SystemViewRegistry, register_kernel_views
from repro.optimizer.planner import Planner, QueryPlan
from repro.sql.ast import (
    AlterClass,
    AnalyzeStmt,
    CreateClass,
    CreateIndex,
    CreateMethod,
    DeleteStmt,
    DropClass,
    DropIndex,
    DropMethod,
    ExplainStmt,
    NewObject,
    SelectQuery,
    Statement,
    UpdateStmt,
)
from repro.sql.parser import parse as parse_sql
from repro.sql.rewrite import describe_rewrite
from repro.storage.disk import DiskParams
from repro.storage.manager import StorageManager
from repro.storage.oid import NULL_OID


@dataclass
class QueryResult:
    """Result of a SELECT: projected rows plus planning artifacts."""

    columns: list[str]
    rows: list[tuple]
    binding_rows: list[Row]
    plan: QueryPlan | None       # None for SYS$ system-view selects
    trace: list[TraceEvent]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def scalars(self) -> list:
        """First-column values (convenient for single-projection queries)."""
        return [row[0] for row in self.rows]


@dataclass
class ExplainResult:
    """Result of ``EXPLAIN [ANALYZE]``: the report, the plan, the spans,
    and (for ANALYZE) the executed query's full :class:`QueryResult`."""

    report: ExplainReport
    plan: QueryPlan
    spans: list[Span]
    result: QueryResult | None = None

    def render(self) -> str:
        return self.report.render()

    def __str__(self) -> str:
        return self.render()


@dataclass
class StatementResult:
    """Result of a non-SELECT statement."""

    kind: str
    detail: str = ""
    obj: MoodObject | None = None
    count: int = 0
    header: str | None = None    # generated C++ header for CREATE CLASS
    #: Stable error code (``repro.core.errors``) when the statement's
    #: outcome was a *handled* failure -- e.g. the server reports a
    #: deadlock-victim rollback as kind="ROLLBACK", code="DEADLOCK".
    code: str | None = None


class MoodKernel:
    """The kernel: catalog + functions + optimizer + executor over ESM."""

    def __init__(
        self,
        disk_params: DiskParams | None = None,
        buffer_capacity: int = 512,
        cache_enabled: bool = True,
        cache_capacity: int = 4096,
    ):
        self.storage = StorageManager(disk_params, buffer_capacity)
        self.catalog = Catalog(self.storage)
        self.functions = FunctionManager(self.catalog)
        self.objects = ObjectManager(
            self.storage, self.catalog,
            cache_enabled=cache_enabled, cache_capacity=cache_capacity,
        )
        self.indexes = IndexManager(self.storage, self.catalog, self.objects)
        self.evaluator = ExpressionEvaluator(self.objects, self.functions)
        self.stats = DatabaseStats()
        self.trace: list[TraceEvent] = []
        self.last_plan: QueryPlan | None = None
        #: Telemetry rings the sessions feed and the SYS$ views read.
        self.statement_log = StatementLog()
        self.slow_log = SlowQueryLog()
        self.system_views = SystemViewRegistry(self.catalog)
        register_kernel_views(self)

    # -- statistics and planning -------------------------------------------------

    def analyze(self) -> DatabaseStats:
        """Collect the Table 8 statistics from the live database."""
        self.stats = collect_statistics(
            self.catalog,
            objects_of=lambda name: list(
                self.objects.iter_extent(name, deep=False)
            ),
            nbpages_of=lambda name: self.catalog.extent_file(name).nbpages(),
        )
        return self.stats

    def has_statistics(self) -> bool:
        return bool(self.stats.classes)

    def planner(self) -> Planner:
        if not self.has_statistics():
            self.analyze()
        return Planner(
            self.catalog,
            self.stats,
            self.storage.params,
            btree_params_of=self.indexes.btree_params_of,
            join_indexes=self.indexes.join_index_params(),
            path_indexes=self.indexes.path_index_params(),
        )

    # -- the entry point ----------------------------------------------------------

    def execute(self, sql: str) -> QueryResult | StatementResult:
        """Parse and execute one MOODSQL statement."""
        statement = parse_sql(sql)
        return self.execute_statement(statement)

    def is_system_select(self, statement: Statement) -> bool:
        """True when the statement is a SELECT whose every range is a
        registered SYS$ view (those run without plans or statistics)."""
        return isinstance(statement, SelectQuery) and bool(
            statement.ranges
        ) and all(self.system_views.has(r.class_name) for r in statement.ranges)

    def execute_statement(
        self, statement: Statement, spans: SpanRecorder | None = None
    ) -> QueryResult | StatementResult:
        self.trace = [TraceEvent("PARSE")]
        if isinstance(statement, SelectQuery):
            if any(self.system_views.has(r.class_name)
                   for r in statement.ranges):
                return self._execute_system_select(statement, spans=spans)
            return self._execute_select(statement, spans=spans)
        if isinstance(statement, ExplainStmt):
            return self._execute_explain(statement)
        if isinstance(statement, CreateClass):
            return self._execute_create_class(statement)
        if isinstance(statement, DropClass):
            self.catalog.drop_class(statement.name)
            self.objects.rebuild_page_map()
            return StatementResult("DROP CLASS", statement.name)
        if isinstance(statement, AlterClass):
            return self._execute_alter(statement)
        if isinstance(statement, CreateIndex):
            self.indexes.create_index(
                statement.name, statement.class_name, statement.attribute,
                statement.kind, statement.unique,
            )
            return StatementResult("CREATE INDEX", statement.name)
        if isinstance(statement, DropIndex):
            self.indexes.drop_index(statement.name)
            return StatementResult("DROP INDEX", statement.name)
        if isinstance(statement, CreateMethod):
            return self._execute_create_method(statement)
        if isinstance(statement, DropMethod):
            types = ",".join(statement.parameter_types)
            signature = f"{statement.class_name}::{statement.name}({types})"
            self.functions.delete_function(signature)
            return StatementResult("DROP METHOD", signature)
        if isinstance(statement, NewObject):
            return self._execute_new(statement)
        if isinstance(statement, DeleteStmt):
            return self._execute_delete(statement)
        if isinstance(statement, UpdateStmt):
            return self._execute_update(statement)
        if isinstance(statement, AnalyzeStmt):
            self.analyze()
            return StatementResult(
                "ANALYZE", f"{len(self.stats.classes)} classes"
            )
        raise MoodSqlError(f"unsupported statement {type(statement).__name__}")

    # -- SELECT -----------------------------------------------------------------

    def _execute_select(
        self, query: SelectQuery, spans: SpanRecorder | None = None
    ) -> QueryResult:
        self.trace.append(TraceEvent("SIMPLIFY"))
        self.trace.append(TraceEvent("DNF"))
        self.trace.append(TraceEvent("OPTIMIZE"))
        plan = self.planner().plan_query(query)
        self.last_plan = plan
        executor = Executor(
            objects=self.objects,
            evaluator=self.evaluator,
            catalog=self.catalog,
            index_manager=self.indexes,
            trace=self.trace,
            spans=spans,
        )
        binding_rows = executor.execute_plan(plan)
        columns, rows = self._project(query, binding_rows)
        if query.distinct:
            rows = _dedup_tuples(rows)
        self.functions.end_scope()  # statement boundary unloads functions
        return QueryResult(
            columns=columns,
            rows=rows,
            binding_rows=binding_rows,
            plan=plan,
            trace=list(self.trace),
        )

    # -- SYS$ monitor views --------------------------------------------------

    def _execute_system_select(
        self, query: SelectQuery, spans: SpanRecorder | None = None
    ) -> QueryResult:
        """Evaluate a SELECT over SYS$ monitor views.

        The rows are live supplier snapshots wrapped as transient objects,
        so WHERE / projection / ORDER BY / DISTINCT go through the standard
        evaluator; there is no plan, no statistics, and no locking.
        """
        for range_var in query.ranges:
            if not self.system_views.has(range_var.class_name):
                raise MoodSqlError(
                    "system views cannot be joined with stored classes "
                    f"(range {range_var.class_name!r})"
                )
            if range_var.every or range_var.minus:
                raise MoodSqlError(
                    "EVERY / class subtraction does not apply to system "
                    f"view {range_var.class_name}"
                )
        if len(query.ranges) != 1:
            raise MoodSqlError("system view queries take exactly one range")
        if query.group_by or query.having is not None:
            raise MoodSqlError("GROUP BY is not supported over system views")
        range_var = query.ranges[0]
        view = self.system_views.get(range_var.class_name)
        self.trace.append(TraceEvent("SYSVIEW", view.name))

        def scan() -> list[Row]:
            binding_rows = [
                {range_var.var: MoodObject(NULL_OID, view.name, dict(values))}
                for values in view.supplier()
            ]
            if query.where is not None:
                binding_rows = [
                    row for row in binding_rows
                    if self.evaluator.predicate(query.where, row)
                ]
            return binding_rows

        if spans is not None:
            with spans.span("SYSVIEW", view.name) as span:
                binding_rows = scan()
                span.rows_out = len(binding_rows)
        else:
            binding_rows = scan()
        for item in reversed(query.order_by):
            binding_rows.sort(
                key=lambda row: self.evaluator.value(item.expr, row),
                reverse=not item.ascending,
            )
        columns, rows = self._project(query, binding_rows)
        if query.distinct:
            rows = _dedup_tuples(rows)
        return QueryResult(
            columns=columns,
            rows=rows,
            binding_rows=binding_rows,
            plan=None,
            trace=list(self.trace),
        )

    # -- EXPLAIN [ANALYZE] --------------------------------------------------

    def _execute_explain(self, statement: ExplainStmt) -> ExplainResult:
        if any(self.system_views.has(r.class_name)
               for r in statement.query.ranges):
            raise MoodSqlError(
                "EXPLAIN over system views is not supported: monitor rows "
                "have no statistics for the cost model"
            )
        pipeline = describe_rewrite(statement.query)
        if not statement.analyze:
            self.trace.append(TraceEvent("SIMPLIFY"))
            self.trace.append(TraceEvent("DNF"))
            self.trace.append(TraceEvent("OPTIMIZE"))
            plan = self.planner().plan_query(statement.query)
            self.last_plan = plan
            report = explain_query_plan(plan, pipeline)
            return ExplainResult(report=report, plan=plan, spans=[])
        spans = SpanRecorder(io_probe=self.storage.io_snapshot)
        before = self.storage.metrics.snapshot()
        result = self._execute_select(statement.query, spans=spans)
        report = analyze_query_plan(
            result.plan, spans.roots, pipeline,
            cache_stats=self._cache_stats_since(before),
        )
        return ExplainResult(
            report=report, plan=result.plan, spans=spans.roots, result=result
        )

    def analyze_plan(self, plan: QueryPlan) -> ExplainResult:
        """Execute an arbitrary plan under span recording and build its
        ANALYZE report.  The entry point tests and benchmarks use to
        validate hand-built plans (e.g. the paper's own Example 8.1 plan)
        against the simulated disk."""
        spans = SpanRecorder(io_probe=self.storage.io_snapshot)
        before = self.storage.metrics.snapshot()
        executor = Executor(
            objects=self.objects,
            evaluator=self.evaluator,
            catalog=self.catalog,
            index_manager=self.indexes,
            trace=self.trace,
            spans=spans,
        )
        binding_rows = executor.execute_plan(plan)
        report = analyze_query_plan(
            plan, spans.roots,
            cache_stats=self._cache_stats_since(before),
        )
        result = QueryResult(
            columns=list(plan.output_vars),
            rows=[
                tuple(row[var] for var in plan.output_vars if var in row)
                for row in binding_rows
            ],
            binding_rows=binding_rows,
            plan=plan,
            trace=list(self.trace),
        )
        return ExplainResult(
            report=report, plan=plan, spans=spans.roots, result=result
        )

    def _cache_stats_since(self, before: dict[str, float]) -> dict[str, float]:
        """Object-cache counter deltas over one statement, for the
        EXPLAIN ANALYZE report's cache line."""
        after = self.storage.metrics.snapshot()
        stats = {
            name.split(".", 1)[1]: after.get(name, 0.0) - value
            for name, value in before.items()
            if name.startswith("objcache.")
        }
        for name, value in after.items():
            if name.startswith("objcache."):
                stats.setdefault(name.split(".", 1)[1], value)
        for key in ("hits", "misses", "invalidations", "batches"):
            stats.setdefault(key, 0.0)
        stats["enabled"] = 1.0 if self.objects.cache_enabled else 0.0
        return stats

    def _project(self, query: SelectQuery, binding_rows: list[Row]):
        if query.projections:
            columns = [str(p) for p in query.projections]
            rows = [
                tuple(
                    self.evaluator.value(projection, row)
                    for projection in query.projections
                )
                for row in binding_rows
            ]
        else:
            columns = [r.var for r in query.ranges]
            rows = [
                tuple(row[column] for column in columns)
                for row in binding_rows
            ]
        return columns, rows

    # -- DDL ---------------------------------------------------------------------

    def _execute_create_class(self, statement: CreateClass) -> StatementResult:
        methods = [
            MoodsFunction(
                owner=statement.name,
                name=decl.name,
                return_type=decl.return_type,
                parameters=list(decl.parameters),
                source=decl.body or "",
            )
            for decl in statement.methods
        ]
        self.catalog.define_class(
            statement.name,
            attributes=list(statement.attributes),
            superclasses=list(statement.superclasses),
            methods=methods,
            is_class=statement.is_class,
        )
        # 'a C++ header file is created for future compilation'
        header = generate_header(statement.name, self.catalog.hierarchy)
        return StatementResult(
            "CREATE CLASS" if statement.is_class else "CREATE TYPE",
            statement.name,
            header=header,
        )

    def _execute_alter(self, statement: AlterClass) -> StatementResult:
        if statement.action == "add":
            self.catalog.add_attribute(statement.name, statement.attribute,
                                       statement.type_text)
        elif statement.action == "drop":
            self.catalog.drop_attribute(statement.name, statement.attribute)
            self._migrate_attribute(statement.name, "drop",
                                    statement.attribute)
        else:
            self.catalog.rename_attribute(statement.name, statement.attribute,
                                          statement.new_name)
            self._migrate_attribute(statement.name, "rename",
                                    statement.attribute, statement.new_name)
        return StatementResult("ALTER CLASS", statement.name)

    def _migrate_attribute(self, class_name: str, action: str,
                           old: str, new: str | None = None) -> None:
        """Rewrite stored instances after a rename/drop (MOOD's dynamic
        schema changes apply to existing objects)."""
        from repro.model.serde import decode, encode

        for member in self.catalog.hierarchy.extent_classes(class_name):
            extent = self.catalog.extent_file(member)
            for oid, payload in list(self.storage.scan(extent)):
                state = decode(payload)
                if old not in state:
                    continue
                if action == "rename":
                    state[new] = state.pop(old)
                else:
                    state.pop(old)
                self.storage.update(extent, oid, encode(state))
                # The rewrite bypasses the object manager; keep its deref
                # cache honest.
                self.objects.invalidate_cache(oid)

    def _execute_create_method(self, statement: CreateMethod) -> StatementResult:
        function = MoodsFunction(
            owner=statement.class_name,
            name=statement.decl.name,
            return_type=statement.decl.return_type,
            parameters=list(statement.decl.parameters),
            source=statement.decl.body or "",
        )
        existing = self.catalog.class_def(statement.class_name).own_method(
            statement.decl.name
        )
        if existing is not None and existing.signature == function.signature:
            self.functions.update_function(function)
            return StatementResult("UPDATE METHOD", function.signature)
        self.functions.add_function(function)
        return StatementResult("CREATE METHOD", function.signature)

    # -- DML ---------------------------------------------------------------------

    def _execute_new(self, statement: NewObject) -> StatementResult:
        attributes = self.catalog.hierarchy.all_attributes(statement.class_name)
        if len(statement.values) > len(attributes):
            raise ExecutionError(
                f"new {statement.class_name}: {len(statement.values)} values "
                f"for {len(attributes)} attributes"
            )
        state = {}
        for attribute, expr in zip(attributes, statement.values):
            state[attribute.name] = self.evaluator.value(expr, {})
        obj = self.objects.new_object(statement.class_name, state)
        if statement.bind_name:
            self.catalog.bind_name(statement.bind_name, obj.oid)
        return StatementResult("NEW", str(obj.oid), obj=obj)

    def _matching_rows(self, range_var, where) -> list[Row]:
        include = tuple(
            self.catalog.hierarchy.extent_classes(range_var.class_name,
                                                  list(range_var.minus))
        )
        rows = [
            {range_var.var: obj}
            for obj in self.objects.iter_extent(range_var.class_name,
                                                include=include)
        ]
        if where is not None:
            rows = [r for r in rows if self.evaluator.predicate(where, r)]
        return rows

    def _execute_delete(self, statement: DeleteStmt) -> StatementResult:
        rows = self._matching_rows(statement.range_var, statement.where)
        for row in rows:
            self.objects.delete_object(row[statement.range_var.var].oid)
        return StatementResult("DELETE", count=len(rows))

    def _execute_update(self, statement: UpdateStmt) -> StatementResult:
        rows = self._matching_rows(statement.range_var, statement.where)
        for row in rows:
            obj = row[statement.range_var.var]
            for attribute, expr in statement.assignments:
                obj.state[attribute] = self.evaluator.value(expr, row)
            self.objects.update_object(obj)
        return StatementResult("UPDATE", count=len(rows))

    # -- MoodView services ----------------------------------------------------------

    def cursor_for(self, result: QueryResult, var: str | None = None) -> ObjectCursor:
        """An object cursor over one output variable of a query result."""
        if var is None:
            var = result.plan.output_vars[0]
        objects = []
        seen = set()
        for row in result.binding_rows:
            obj = row.get(var)
            if obj is not None and obj.oid not in seen:
                seen.add(obj.oid)
                objects.append(obj)
        return ObjectCursor(self.catalog, objects)


def _dedup_tuples(rows: list[tuple]) -> list[tuple]:
    seen = set()
    result = []
    for row in rows:
        try:
            key = tuple(
                value.oid if isinstance(value, MoodObject) else repr(value)
                for value in row
            )
        except TypeError:
            key = repr(row)
        if key not in seen:
            seen.add(key)
            result.append(row)
    return result
