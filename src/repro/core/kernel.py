"""The MOOD kernel (Figure 2.1).

One object wiring every subsystem the paper describes: ESM (storage), the
CATALOG, the Function Manager, the MOODSQL interpreter with its optimizer,
and the execution engine.  ``execute`` is the single entry point the paper
prescribes -- *"interfaces access the database through SQL statements
interpreted by the kernel"* -- including the DDL, ``new`` object creation,
DML, and ad-hoc queries.

The kernel traces each statement's processing steps (parse, simplify, DNF,
optimize, execute, and the operator events of Figure 7.2); the trace of the
last statement is kept on :attr:`MoodKernel.trace`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.catalog.catalog import Catalog
from repro.catalog.cppfront import generate_header
from repro.catalog.entities import MoodsFunction
from repro.cluster.coaccess import CoAccessGraph
from repro.cluster.recluster import Reclusterer
from repro.core.errors import ExecutionError, MoodSqlError
from repro.core.prepare import (
    PlanCache,
    PreparedRegistry,
    render_statement,
)
from repro.cost.params import DatabaseStats
from repro.cost.statistics import collect_statistics
from repro.engine.cursor import ObjectCursor
from repro.engine.evaluator import ExpressionEvaluator, Row
from repro.engine.executor import Executor, TraceEvent
from repro.engine.indexes import IndexManager
from repro.engine.objects import ObjectManager
from repro.functions.manager import FunctionManager
from repro.model.objects import MoodObject
from repro.obs.explain import (
    ExplainReport,
    analyze_query_plan,
    explain_query_plan,
)
from repro.obs.spans import Span, SpanRecorder
from repro.obs.trace import SlowQueryLog, StatementLog
from repro.obs.views import SystemViewRegistry, register_kernel_views
from repro.optimizer.fuse import fuse_query_plan
from repro.optimizer.planner import Planner, QueryPlan
from repro.sql.ast import (
    AlterClass,
    AnalyzeStmt,
    CreateClass,
    CreateIndex,
    CreateMethod,
    DeallocateStmt,
    DeleteStmt,
    DropClass,
    DropIndex,
    DropMethod,
    ExecuteStmt,
    ExplainStmt,
    Literal,
    NewObject,
    PrepareStmt,
    SelectQuery,
    Statement,
    UpdateStmt,
)
from repro.sql.parser import parse as parse_sql
from repro.sql.rewrite import describe_rewrite, simplify
from repro.storage.disk import DiskParams
from repro.storage.manager import StorageManager
from repro.storage.oid import NULL_OID


@dataclass
class QueryResult:
    """Result of a SELECT: projected rows plus planning artifacts."""

    columns: list[str]
    rows: list[tuple]
    binding_rows: list[Row]
    plan: QueryPlan | None       # None for SYS$ system-view selects
    trace: list[TraceEvent]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def scalars(self) -> list:
        """First-column values (convenient for single-projection queries)."""
        return [row[0] for row in self.rows]


@dataclass
class ExplainResult:
    """Result of ``EXPLAIN [ANALYZE]``: the report, the plan, the spans,
    and (for ANALYZE) the executed query's full :class:`QueryResult`."""

    report: ExplainReport
    plan: QueryPlan
    spans: list[Span]
    result: QueryResult | None = None

    def render(self) -> str:
        return self.report.render()

    def __str__(self) -> str:
        return self.render()


@dataclass
class StatementResult:
    """Result of a non-SELECT statement."""

    kind: str
    detail: str = ""
    obj: MoodObject | None = None
    count: int = 0
    header: str | None = None    # generated C++ header for CREATE CLASS
    #: Stable error code (``repro.core.errors``) when the statement's
    #: outcome was a *handled* failure -- e.g. the server reports a
    #: deadlock-victim rollback as kind="ROLLBACK", code="DEADLOCK".
    code: str | None = None


class MoodKernel:
    """The kernel: catalog + functions + optimizer + executor over ESM."""

    def __init__(
        self,
        disk_params: DiskParams | None = None,
        buffer_capacity: int = 512,
        cache_enabled: bool = True,
        cache_capacity: int = 4096,
        plan_cache_capacity: int = 256,
        batch_enabled: bool = True,
        page_base: int = 0,
    ):
        self.storage = StorageManager(disk_params, buffer_capacity,
                                      page_base=page_base)
        self.catalog = Catalog(self.storage)
        self.functions = FunctionManager(self.catalog)
        self.objects = ObjectManager(
            self.storage, self.catalog,
            cache_enabled=cache_enabled, cache_capacity=cache_capacity,
            batch_enabled=batch_enabled,
        )
        self.indexes = IndexManager(self.storage, self.catalog, self.objects)
        #: Dynamic clustering: deref traffic feeds the co-access graph,
        #: the reclusterer executes DSTC-style placements online.
        self.coaccess = CoAccessGraph()
        self.objects.coaccess = self.coaccess
        self.reclusterer = Reclusterer(
            self.storage, self.catalog, self.objects, self.indexes,
            self.coaccess,
        )
        self.evaluator = ExpressionEvaluator(self.objects, self.functions)
        self.stats = DatabaseStats()
        self.trace: list[TraceEvent] = []
        self.last_plan: QueryPlan | None = None
        #: Compiled-plan reuse.  ``cache_enabled=False`` is the
        #: paper-faithful mode: every statement recompiles from scratch.
        self.plan_cache = PlanCache(
            capacity=plan_cache_capacity,
            metrics=self.storage.metrics.component("plancache"),
            events=self.storage.events,
            enabled=cache_enabled,
        )
        #: Kernel-level PREPARE registry (sessions hold their own).
        self.prepared = PreparedRegistry()
        #: Trace id of the statement currently executing, so events raised
        #: from inside planning (implicit ANALYZE) attribute correctly.
        self.active_trace_id = ""
        self._compile_ms = self.storage.metrics.component(
            "plancache").histogram("compile_ms")
        self._implicit_analyze_count = self.storage.metrics.component(
            "kernel").counter("implicit_analyze")
        #: Statement dispatch: type -> (handler, plan-cache invalidation
        #: reason).  DDL handlers declare their invalidation effect here,
        #: in one place, instead of scattering cache resets around.
        self._handlers = {
            SelectQuery: (self._handle_select, None),
            ExplainStmt: (self._handle_explain, None),
            CreateClass: (self._handle_create_class, "CREATE CLASS"),
            DropClass: (self._handle_drop_class, "DROP CLASS"),
            AlterClass: (self._handle_alter, "ALTER CLASS"),
            CreateIndex: (self._handle_create_index, "CREATE INDEX"),
            DropIndex: (self._handle_drop_index, "DROP INDEX"),
            CreateMethod: (self._handle_create_method, "CREATE METHOD"),
            DropMethod: (self._handle_drop_method, "DROP METHOD"),
            NewObject: (self._handle_new, None),
            DeleteStmt: (self._handle_delete, None),
            UpdateStmt: (self._handle_update, None),
            AnalyzeStmt: (self._handle_analyze, "ANALYZE"),
            PrepareStmt: (self._handle_prepare, None),
            ExecuteStmt: (self._handle_execute_prepared, None),
            DeallocateStmt: (self._handle_deallocate, None),
        }
        #: Telemetry rings the sessions feed and the SYS$ views read.
        self.statement_log = StatementLog()
        self.slow_log = SlowQueryLog()
        self.system_views = SystemViewRegistry(self.catalog)
        register_kernel_views(self)

    # -- statistics and planning -------------------------------------------------

    def analyze(self) -> DatabaseStats:
        """Collect the Table 8 statistics from the live database."""
        self.stats = collect_statistics(
            self.catalog,
            objects_of=lambda name: list(
                self.objects.iter_extent(name, deep=False)
            ),
            nbpages_of=lambda name: self.catalog.extent_file(name).nbpages(),
        )
        return self.stats

    def has_statistics(self) -> bool:
        return bool(self.stats.classes)

    def planner(self) -> Planner:
        if not self.has_statistics():
            self._implicit_analyze()
        return Planner(
            self.catalog,
            self.stats,
            self.storage.params,
            btree_params_of=self.indexes.btree_params_of,
            join_indexes=self.indexes.join_index_params(),
            path_indexes=self.indexes.path_index_params(),
        )

    def set_batch_enabled(self, enabled: bool) -> None:
        """Flip set-oriented execution.  Cached plans were fused (or not)
        under the previous setting, so the plan cache is dropped -- the
        schema/stats stamps alone would not catch this."""
        if enabled == self.objects.batch_enabled:
            return
        self.objects.set_batch_enabled(enabled)
        self.plan_cache.invalidate_all("SET BATCH")

    def _implicit_analyze(self) -> None:
        """ANALYZE triggered from inside planning (no statistics yet).

        This used to be invisible: the statement that happened to arrive
        first silently paid a full database scan with no trace, counter,
        or journal entry.  Now the I/O is measured and the event carries
        the trace id of the statement that footed the bill.
        """
        before = self.storage.io_snapshot()
        started = time.perf_counter()
        self.analyze()
        delta = self.storage.io_snapshot().since(before)
        self._implicit_analyze_count.inc()
        self.storage.events.emit(
            "implicit_analyze",
            trace_id=self.active_trace_id,
            classes=len(self.stats.classes),
            io_pages=delta.page_ios,
            ms=round((time.perf_counter() - started) * 1e3, 3),
        )
        self.trace.append(TraceEvent("IMPLICIT_ANALYZE"))
        self.plan_cache.invalidate_all("implicit ANALYZE")

    # -- the entry point ----------------------------------------------------------

    def execute(self, sql: str) -> QueryResult | StatementResult:
        """Parse and execute one MOODSQL statement."""
        statement = parse_sql(sql)
        return self.execute_statement(statement)

    def is_system_select(self, statement: Statement) -> bool:
        """True when the statement is a SELECT whose every range is a
        registered SYS$ view (those run without plans or statistics)."""
        return isinstance(statement, SelectQuery) and bool(
            statement.ranges
        ) and all(self.system_views.has(r.class_name) for r in statement.ranges)

    def execute_statement(
        self, statement: Statement, spans: SpanRecorder | None = None
    ) -> QueryResult | StatementResult:
        self.trace = [TraceEvent("PARSE")]
        return self.dispatch_statement(statement, spans)

    def dispatch_statement(
        self, statement: Statement, spans: SpanRecorder | None = None
    ) -> QueryResult | StatementResult:
        """Route one parsed statement through the handler table.

        Does not reset the trace: EXECUTE recurses here for its bound
        inner statement, keeping the PARSE event of the outer one.
        Handlers whose table entry declares an invalidation reason drop
        every cached plan after they succeed (the version stamps on the
        cache entries are the backstop for paths that bypass this).
        """
        try:
            handler, invalidates = self._handlers[type(statement)]
        except KeyError:
            raise MoodSqlError(
                f"unsupported statement {type(statement).__name__}"
            ) from None
        result = handler(statement, spans)
        if invalidates is not None:
            self.plan_cache.invalidate_all(invalidates)
        return result

    # -- statement handlers (dispatch table targets) -------------------------

    def _handle_select(self, statement: SelectQuery, spans):
        if any(self.system_views.has(r.class_name)
               for r in statement.ranges):
            return self._execute_system_select(statement, spans=spans)
        return self._execute_select(statement, spans=spans)

    def _handle_explain(self, statement: ExplainStmt, spans):
        return self._execute_explain(statement)

    def _handle_create_class(self, statement: CreateClass, spans):
        return self._execute_create_class(statement)

    def _handle_drop_class(self, statement: DropClass, spans):
        self.catalog.drop_class(statement.name)
        self.objects.rebuild_page_map()
        return StatementResult("DROP CLASS", statement.name)

    def _handle_alter(self, statement: AlterClass, spans):
        return self._execute_alter(statement)

    def _handle_create_index(self, statement: CreateIndex, spans):
        self.indexes.create_index(
            statement.name, statement.class_name, statement.attribute,
            statement.kind, statement.unique,
        )
        return StatementResult("CREATE INDEX", statement.name)

    def _handle_drop_index(self, statement: DropIndex, spans):
        self.indexes.drop_index(statement.name)
        return StatementResult("DROP INDEX", statement.name)

    def _handle_create_method(self, statement: CreateMethod, spans):
        return self._execute_create_method(statement)

    def _handle_drop_method(self, statement: DropMethod, spans):
        types = ",".join(statement.parameter_types)
        signature = f"{statement.class_name}::{statement.name}({types})"
        self.functions.delete_function(signature)
        return StatementResult("DROP METHOD", signature)

    def _handle_new(self, statement: NewObject, spans):
        return self._execute_new(statement)

    def _handle_delete(self, statement: DeleteStmt, spans):
        return self._execute_delete(statement)

    def _handle_update(self, statement: UpdateStmt, spans):
        return self._execute_update(statement)

    def _handle_analyze(self, statement: AnalyzeStmt, spans):
        self.analyze()
        return StatementResult(
            "ANALYZE", f"{len(self.stats.classes)} classes"
        )

    # -- PREPARE / EXECUTE / DEALLOCATE --------------------------------------

    def _handle_prepare(self, statement: PrepareStmt, spans):
        prepared = self.prepared.prepare(statement.name, statement.statement)
        return StatementResult(
            "PREPARE",
            f"{prepared.name} ({len(prepared.params)} parameters)",
        )

    def _handle_execute_prepared(self, statement: ExecuteStmt, spans):
        return self.dispatch_statement(self.resolve_statement(statement), spans)

    def _handle_deallocate(self, statement: DeallocateStmt, spans):
        self.prepared.deallocate(statement.name)
        return StatementResult("DEALLOCATE", statement.name)

    def resolve_statement(
        self, statement: Statement, registry: PreparedRegistry | None = None
    ) -> Statement:
        """Map EXECUTE onto the bound statement it names (looked up in
        *registry*, defaulting to the kernel's own); anything else passes
        through unchanged.  Sessions call this *before* taking locks so
        the lock closure covers the inner statement."""
        if not isinstance(statement, ExecuteStmt):
            return statement
        registry = registry if registry is not None else self.prepared
        prepared = registry.get(statement.name)
        return prepared.bind(
            [self._argument_value(arg) for arg in statement.args]
        )

    def _argument_value(self, expr):
        """EXECUTE arguments must fold to constants without touching the
        engine (binding happens before planning, locks, or I/O)."""
        folded = simplify(expr)
        if isinstance(folded, Literal):
            return folded.value
        raise ExecutionError(
            f"EXECUTE arguments must be constant expressions, got {expr}"
        )

    def prepare(
        self, sql: str, name: str | None = None
    ):
        """Embedded-API PREPARE: compile *sql* once, returning the
        immutable :class:`~repro.core.prepare.PreparedStatement`."""
        statement = parse_sql(sql)
        if isinstance(statement, PrepareStmt):
            return self.prepared.prepare(statement.name, statement.statement)
        if name is None:
            name = f"stmt{len(self.prepared) + 1}"
        return self.prepared.prepare(name, statement)

    def execute_prepared(
        self, name: str, values=()
    ) -> QueryResult | StatementResult:
        """Embedded-API EXECUTE: bind *values* into the named prepared
        statement and run it, skipping parse entirely (and, on a plan
        cache hit, rewrite/optimize too)."""
        self.trace = [TraceEvent("BIND")]
        bound = self.prepared.get(name).bind(values)
        return self.dispatch_statement(bound)

    # -- SELECT -----------------------------------------------------------------

    def _execute_select(
        self, query: SelectQuery, spans: SpanRecorder | None = None
    ) -> QueryResult:
        plan = self._plan_select(query)
        self.last_plan = plan
        executor = Executor(
            objects=self.objects,
            evaluator=self.evaluator,
            catalog=self.catalog,
            index_manager=self.indexes,
            trace=self.trace,
            spans=spans,
        )
        binding_rows = executor.execute_plan(plan)
        columns, rows = self._project(query, binding_rows)
        if query.distinct:
            rows = _dedup_tuples(rows)
        self.functions.end_scope()  # statement boundary unloads functions
        return QueryResult(
            columns=columns,
            rows=rows,
            binding_rows=binding_rows,
            plan=plan,
            trace=list(self.trace),
        )

    def _plan_select(self, query: SelectQuery) -> QueryPlan:
        """Optimize a bound SELECT, memoised through the plan cache.

        A hit skips the whole compile back half (simplify, DNF,
        optimize); a miss pays it once and stores the plan under the
        catalog/statistics stamps it was costed with.  The stamps are
        read *after* planning because the planner itself may run the
        implicit first ANALYZE, which moves the statistics version.
        """
        key = None
        if self.plan_cache.enabled:
            key = render_statement(query)
            entry = self.plan_cache.lookup(
                key, self.catalog.schema_version, self.stats.version
            )
            if entry is not None:
                self.trace.append(TraceEvent("PLAN_CACHE", "hit"))
                return entry.plan
        self.trace.append(TraceEvent("SIMPLIFY"))
        self.trace.append(TraceEvent("DNF"))
        self.trace.append(TraceEvent("OPTIMIZE"))
        started = time.perf_counter()
        plan = self.planner().plan_query(query)
        self._fuse_plan(plan)
        self._compile_ms.observe((time.perf_counter() - started) * 1e3)
        if key is not None:
            # Fusion runs before the store, so fused plans are cached and
            # invalidated under the same schema/stats stamps as any plan.
            self.plan_cache.store(
                key, plan, self.catalog.schema_version, self.stats.version
            )
        return plan

    def _fuse_plan(self, plan: QueryPlan) -> None:
        """Apply the join-fusion rewrite when set-oriented execution is
        on (the physical rewrite is pointless -- and EXPLAIN-visible --
        without batching, so the switch keeps plan shapes paper-faithful
        in one-at-a-time mode)."""
        if not self.objects.batch_enabled:
            return
        fused = fuse_query_plan(plan)
        if fused:
            self.trace.append(
                TraceEvent("FUSE", f"{fused} traversal chain(s)")
            )

    # -- SYS$ monitor views --------------------------------------------------

    def _execute_system_select(
        self, query: SelectQuery, spans: SpanRecorder | None = None
    ) -> QueryResult:
        """Evaluate a SELECT over SYS$ monitor views.

        The rows are live supplier snapshots wrapped as transient objects,
        so WHERE / projection / ORDER BY / DISTINCT go through the standard
        evaluator; there is no plan, no statistics, and no locking.
        """
        for range_var in query.ranges:
            if not self.system_views.has(range_var.class_name):
                raise MoodSqlError(
                    "system views cannot be joined with stored classes "
                    f"(range {range_var.class_name!r})"
                )
            if range_var.every or range_var.minus:
                raise MoodSqlError(
                    "EVERY / class subtraction does not apply to system "
                    f"view {range_var.class_name}"
                )
        if len(query.ranges) != 1:
            raise MoodSqlError("system view queries take exactly one range")
        if query.group_by or query.having is not None:
            raise MoodSqlError("GROUP BY is not supported over system views")
        range_var = query.ranges[0]
        view = self.system_views.get(range_var.class_name)
        self.trace.append(TraceEvent("SYSVIEW", view.name))

        def scan() -> list[Row]:
            binding_rows = [
                {range_var.var: MoodObject(NULL_OID, view.name, dict(values))}
                for values in view.supplier()
            ]
            if query.where is not None:
                binding_rows = [
                    row for row in binding_rows
                    if self.evaluator.predicate(query.where, row)
                ]
            return binding_rows

        if spans is not None:
            with spans.span("SYSVIEW", view.name) as span:
                binding_rows = scan()
                span.rows_out = len(binding_rows)
        else:
            binding_rows = scan()
        for item in reversed(query.order_by):
            binding_rows.sort(
                key=lambda row: self.evaluator.value(item.expr, row),
                reverse=not item.ascending,
            )
        columns, rows = self._project(query, binding_rows)
        if query.distinct:
            rows = _dedup_tuples(rows)
        return QueryResult(
            columns=columns,
            rows=rows,
            binding_rows=binding_rows,
            plan=None,
            trace=list(self.trace),
        )

    # -- EXPLAIN [ANALYZE] --------------------------------------------------

    def _execute_explain(self, statement: ExplainStmt) -> ExplainResult:
        if any(self.system_views.has(r.class_name)
               for r in statement.query.ranges):
            raise MoodSqlError(
                "EXPLAIN over system views is not supported: monitor rows "
                "have no statistics for the cost model"
            )
        pipeline = describe_rewrite(statement.query)
        if not statement.analyze:
            self.trace.append(TraceEvent("SIMPLIFY"))
            self.trace.append(TraceEvent("DNF"))
            self.trace.append(TraceEvent("OPTIMIZE"))
            plan = self.planner().plan_query(statement.query)
            self._fuse_plan(plan)
            self.last_plan = plan
            report = explain_query_plan(plan, pipeline)
            return ExplainResult(report=report, plan=plan, spans=[])
        spans = SpanRecorder(io_probe=self.storage.io_snapshot)
        before = self.storage.metrics.snapshot()
        result = self._execute_select(statement.query, spans=spans)
        report = analyze_query_plan(
            result.plan, spans.roots, pipeline,
            cache_stats=self._cache_stats_since(before),
        )
        return ExplainResult(
            report=report, plan=result.plan, spans=spans.roots, result=result
        )

    def analyze_plan(self, plan: QueryPlan) -> ExplainResult:
        """Execute an arbitrary plan under span recording and build its
        ANALYZE report.  The entry point tests and benchmarks use to
        validate hand-built plans (e.g. the paper's own Example 8.1 plan)
        against the simulated disk."""
        spans = SpanRecorder(io_probe=self.storage.io_snapshot)
        before = self.storage.metrics.snapshot()
        executor = Executor(
            objects=self.objects,
            evaluator=self.evaluator,
            catalog=self.catalog,
            index_manager=self.indexes,
            trace=self.trace,
            spans=spans,
        )
        binding_rows = executor.execute_plan(plan)
        report = analyze_query_plan(
            plan, spans.roots,
            cache_stats=self._cache_stats_since(before),
        )
        result = QueryResult(
            columns=list(plan.output_vars),
            rows=[
                tuple(row[var] for var in plan.output_vars if var in row)
                for row in binding_rows
            ],
            binding_rows=binding_rows,
            plan=plan,
            trace=list(self.trace),
        )
        return ExplainResult(
            report=report, plan=plan, spans=spans.roots, result=result
        )

    def _cache_stats_since(self, before: dict[str, float]) -> dict[str, float]:
        """Object-cache counter deltas over one statement, for the
        EXPLAIN ANALYZE report's cache line."""
        after = self.storage.metrics.snapshot()
        stats = {
            name.split(".", 1)[1]: after.get(name, 0.0) - value
            for name, value in before.items()
            if name.startswith("objcache.")
        }
        for name, value in after.items():
            if name.startswith("objcache."):
                stats.setdefault(name.split(".", 1)[1], value)
        for key in ("hits", "misses", "invalidations", "batches"):
            stats.setdefault(key, 0.0)
        stats["enabled"] = 1.0 if self.objects.cache_enabled else 0.0
        return stats

    def _project(self, query: SelectQuery, binding_rows: list[Row]):
        if query.projections:
            columns = [str(p) for p in query.projections]
            rows = [
                tuple(
                    self.evaluator.value(projection, row)
                    for projection in query.projections
                )
                for row in binding_rows
            ]
        else:
            columns = [r.var for r in query.ranges]
            rows = [
                tuple(row[column] for column in columns)
                for row in binding_rows
            ]
        return columns, rows

    # -- DDL ---------------------------------------------------------------------

    def _execute_create_class(self, statement: CreateClass) -> StatementResult:
        methods = [
            MoodsFunction(
                owner=statement.name,
                name=decl.name,
                return_type=decl.return_type,
                parameters=list(decl.parameters),
                source=decl.body or "",
            )
            for decl in statement.methods
        ]
        self.catalog.define_class(
            statement.name,
            attributes=list(statement.attributes),
            superclasses=list(statement.superclasses),
            methods=methods,
            is_class=statement.is_class,
        )
        # 'a C++ header file is created for future compilation'
        header = generate_header(statement.name, self.catalog.hierarchy)
        return StatementResult(
            "CREATE CLASS" if statement.is_class else "CREATE TYPE",
            statement.name,
            header=header,
        )

    def _execute_alter(self, statement: AlterClass) -> StatementResult:
        if statement.action == "add":
            self.catalog.add_attribute(statement.name, statement.attribute,
                                       statement.type_text)
        elif statement.action == "drop":
            self.catalog.drop_attribute(statement.name, statement.attribute)
            self._migrate_attribute(statement.name, "drop",
                                    statement.attribute)
        else:
            self.catalog.rename_attribute(statement.name, statement.attribute,
                                          statement.new_name)
            self._migrate_attribute(statement.name, "rename",
                                    statement.attribute, statement.new_name)
        return StatementResult("ALTER CLASS", statement.name)

    def _migrate_attribute(self, class_name: str, action: str,
                           old: str, new: str | None = None) -> None:
        """Rewrite stored instances after a rename/drop (MOOD's dynamic
        schema changes apply to existing objects)."""
        from repro.model.serde import decode, encode

        for member in self.catalog.hierarchy.extent_classes(class_name):
            extent = self.catalog.extent_file(member)
            for oid, payload in list(self.storage.scan(extent)):
                state = decode(payload)
                if old not in state:
                    continue
                if action == "rename":
                    state[new] = state.pop(old)
                else:
                    state.pop(old)
                self.storage.update(extent, oid, encode(state))
                # The rewrite bypasses the object manager; keep its deref
                # cache honest.
                self.objects.invalidate_cache(oid)

    def _execute_create_method(self, statement: CreateMethod) -> StatementResult:
        function = MoodsFunction(
            owner=statement.class_name,
            name=statement.decl.name,
            return_type=statement.decl.return_type,
            parameters=list(statement.decl.parameters),
            source=statement.decl.body or "",
        )
        existing = self.catalog.class_def(statement.class_name).own_method(
            statement.decl.name
        )
        if existing is not None and existing.signature == function.signature:
            self.functions.update_function(function)
            return StatementResult("UPDATE METHOD", function.signature)
        self.functions.add_function(function)
        return StatementResult("CREATE METHOD", function.signature)

    # -- DML ---------------------------------------------------------------------

    def _execute_new(self, statement: NewObject) -> StatementResult:
        attributes = self.catalog.hierarchy.all_attributes(statement.class_name)
        if len(statement.values) > len(attributes):
            raise ExecutionError(
                f"new {statement.class_name}: {len(statement.values)} values "
                f"for {len(attributes)} attributes"
            )
        state = {}
        for attribute, expr in zip(attributes, statement.values):
            state[attribute.name] = self.evaluator.value(expr, {})
        obj = self.objects.new_object(statement.class_name, state)
        if statement.bind_name:
            self.catalog.bind_name(statement.bind_name, obj.oid)
        return StatementResult("NEW", str(obj.oid), obj=obj)

    def _matching_rows(self, range_var, where) -> list[Row]:
        include = tuple(
            self.catalog.hierarchy.extent_classes(range_var.class_name,
                                                  list(range_var.minus))
        )
        rows = [
            {range_var.var: obj}
            for obj in self.objects.iter_extent(range_var.class_name,
                                                include=include)
        ]
        if where is not None:
            rows = [r for r in rows if self.evaluator.predicate(where, r)]
        return rows

    def _execute_delete(self, statement: DeleteStmt) -> StatementResult:
        rows = self._matching_rows(statement.range_var, statement.where)
        for row in rows:
            self.objects.delete_object(row[statement.range_var.var].oid)
        return StatementResult("DELETE", count=len(rows))

    def _execute_update(self, statement: UpdateStmt) -> StatementResult:
        rows = self._matching_rows(statement.range_var, statement.where)
        for row in rows:
            obj = row[statement.range_var.var]
            for attribute, expr in statement.assignments:
                obj.state[attribute] = self.evaluator.value(expr, row)
            self.objects.update_object(obj)
        return StatementResult("UPDATE", count=len(rows))

    # -- MoodView services ----------------------------------------------------------

    def cursor_for(self, result: QueryResult, var: str | None = None) -> ObjectCursor:
        """An object cursor over one output variable of a query result."""
        if var is None:
            var = result.plan.output_vars[0]
        objects = []
        seen = set()
        for row in result.binding_rows:
            obj = row.get(var)
            if obj is not None and obj.oid not in seen:
                seen.add(obj.oid)
                objects.append(obj)
        return ObjectCursor(self.catalog, objects)


def _dedup_tuples(rows: list[tuple]) -> list[tuple]:
    seen = set()
    result = []
    for row in rows:
        try:
            key = tuple(
                value.oid if isinstance(value, MoodObject) else repr(value)
                for value in row
            )
        except TypeError:
            key = repr(row)
        if key not in seen:
            seen.add(key)
            result.append(row)
    return result
