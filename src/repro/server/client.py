"""MoodClient: the connection handle a MOOD interface process would hold.

Wraps one TCP connection to a :class:`~repro.server.server.MoodServer`
in a blocking request/response API:

* ``execute`` / ``query`` / ``explain`` send SQL and decode results into
  plain client-side values (:class:`~repro.server.protocol.RemoteObject`
  stand-ins, never live kernel objects);
* ``begin`` / ``commit`` / ``rollback`` manage the session transaction;
* server-side failures re-raise as :class:`MoodServerError` carrying the
  stable ``code`` / ``errno`` / ``retryable`` identity from the wire;
* ``run_transaction`` retries a whole transaction body on *retryable*
  errors (deadlock victim, lock timeout, server busy) with exponential
  backoff plus jitter -- the client half of the server's load shedding.
"""

from __future__ import annotations

import random
import socket
import time
from dataclasses import dataclass

from repro.core.errors import MoodError, ProtocolError, error_class_for
from repro.obs.trace import new_trace_id
from repro.server.protocol import decode_value, recv_frame, send_frame

#: Retry schedule defaults for :meth:`MoodClient.run_transaction`.
DEFAULT_RETRIES = 5
DEFAULT_BACKOFF = 0.02   # seconds; doubles per attempt, +/- 50% jitter


class MoodServerError(MoodError):
    """A server-reported failure, carrying its wire identity."""

    def __init__(self, code: str, errno: int, retryable: bool, message: str):
        super().__init__(message)
        self.code = code
        self.errno = errno
        self.retryable = retryable

    def __repr__(self) -> str:
        return f"MoodServerError({self.code}, {self.args[0]!r})"


@dataclass
class QueryRows:
    """A decoded query result: column names plus row tuples."""

    columns: list
    rows: list

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def scalars(self) -> list:
        return [row[0] for row in self.rows]


@dataclass
class StatementOutcome:
    """A decoded non-SELECT result."""

    kind: str
    detail: str = ""
    count: int = 0
    code: str | None = None
    obj: object | None = None


class MoodClient:
    """One session against a MOOD server."""

    def __init__(
        self,
        host: str,
        port: int,
        connect_timeout: float = 5.0,
        io_timeout: float | None = 60.0,
    ):
        self._sock = socket.create_connection(
            (host, port), timeout=connect_timeout
        )
        self._sock.settimeout(io_timeout)
        self._closed = False
        #: SQL text of every statement this client PREPAREd, by name.  If
        #: the server loses the handle (UNKNOWN_PREPARED -- e.g. after a
        #: reconnect or a server-side deallocate), ``execute_prepared``
        #: re-PREPAREs from this text and retries, so a retry never runs
        #: against a stale handle.
        self._prepared: dict[str, str] = {}
        #: Trace id the client attached to its most recent statement; join
        #: it against SYS$STATEMENTS.trace_id to find that statement's
        #: server-side trace.
        self.last_trace_id: str | None = None
        #: Trace id of the current explicit transaction (minted by
        #: :meth:`begin`): statements inside it derive child ids
        #: ``<txn>.1``, ``<txn>.2`` ... and COMMIT/ROLLBACK carry the
        #: parent id itself, so a distributed transaction reads as one
        #: trace across the router and every participant shard.
        self.txn_trace_id: str | None = None
        #: The most recently completed transaction's trace id (kept after
        #: COMMIT/ROLLBACK for joining against SYS$STATEMENTS/SYS$EVENTS).
        self.last_txn_trace_id: str | None = None
        self._txn_statement_seq = 0

    # -- plumbing ------------------------------------------------------------

    def _call(self, op: str, **fields) -> dict:
        if self._closed:
            raise ProtocolError("client is closed")
        request = {"op": op, **fields}
        send_frame(self._sock, request)
        response = recv_frame(self._sock)
        if response is None:
            raise ProtocolError("server closed the connection")
        if response.get("ok"):
            return response
        error = response.get("error") or {}
        raise self._rebuild_error(error)

    @staticmethod
    def _rebuild_error(error: dict) -> MoodServerError:
        cls = error_class_for(error.get("code", "MOOD"))
        return MoodServerError(
            code=error.get("code", cls.code),
            errno=int(error.get("errno", cls.errno)),
            retryable=bool(error.get("retryable", cls.retryable)),
            message=error.get("message", "server error"),
        )

    def close(self) -> None:
        if self._closed:
            return
        try:
            self._call("CLOSE")
        except (MoodError, OSError):
            pass
        finally:
            self._closed = True
            self._sock.close()

    def __enter__(self) -> "MoodClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- verbs ---------------------------------------------------------------

    def ping(self) -> bool:
        return bool(self._call("PING").get("pong"))

    def stats(self) -> dict:
        return self._call("STATS")["stats"]

    def metrics(self) -> str:
        """The server's metrics in Prometheus text exposition format.
        Against a sharded router this is the *merged* cluster export:
        per-shard samples carry a ``shard`` label."""
        return self._call("METRICS")["metrics"]

    def telemetry(self, view: str | None = None) -> dict:
        """Raw observability payload: a SYS$ view's rows (``rows``), or
        -- with no view -- the counters plus mergeable histogram dumps."""
        fields = {"view": view} if view is not None else {}
        return self._call("TELEMETRY", **fields)

    def recluster(
        self,
        action: str = "run",
        interval: float | None = None,
        shard: int | None = None,
    ) -> dict:
        """Dynamic-clustering control: ``run`` one synchronous pass,
        ``start``/``stop`` the background daemon, or fetch ``status``.
        Against a sharded router the command broadcasts to every shard
        (or just ``shard`` when given) and returns per-shard answers."""
        fields: dict = {"action": action}
        if interval is not None:
            fields["interval"] = interval
        if shard is not None:
            fields["shard"] = shard
        return self._call("RECLUSTER", **fields)

    def execute(
        self,
        sql: str,
        timeout: float | None = None,
        trace_id: str | None = None,
        shard: int | None = None,
        shard_key=None,
    ) -> list:
        """Run a script; returns one decoded result per statement.

        Every call carries a trace id (minted here unless supplied) that
        the server threads through the statement's whole execution; it is
        kept on :attr:`last_trace_id` for joining against the server's
        ``SYS$STATEMENTS`` view.

        Against a sharded router, ``shard`` pins the script to a shard
        index and ``shard_key`` hashes an application key to one;
        a plain server ignores both.
        """
        if trace_id is None:
            trace_id = self._mint_trace_id()
        self.last_trace_id = trace_id
        fields = {"sql": sql, "trace": trace_id}
        if timeout is not None:
            fields["timeout"] = timeout
        if shard is not None:
            fields["shard"] = shard
        if shard_key is not None:
            fields["shard_key"] = shard_key
        response = self._call("EXECUTE", **fields)
        return [_decode_result(item) for item in response["results"]]

    def query(
        self,
        sql: str,
        timeout: float | None = None,
        trace_id: str | None = None,
        shard: int | None = None,
        shard_key=None,
    ) -> QueryRows:
        """Run one SELECT; returns its rows."""
        results = self.execute(sql, timeout=timeout, trace_id=trace_id,
                               shard=shard, shard_key=shard_key)
        for result in reversed(results):
            if isinstance(result, QueryRows):
                return result
        raise ProtocolError("statement did not produce rows")

    def explain(self, sql: str, trace_id: str | None = None) -> str:
        if trace_id is None:
            trace_id = self._mint_trace_id()
        self.last_trace_id = trace_id
        response = self._call("EXPLAIN", sql=sql, trace=trace_id)
        return response["results"][-1]["report"]

    # -- prepared statements -------------------------------------------------

    def prepare(self, name: str, sql: str) -> StatementOutcome:
        """PREPARE ``sql`` under ``name`` in this session (compile once);
        the text is retained client-side for transparent re-PREPARE."""
        response = self._call("PREPARE", name=name, sql=sql)
        self._prepared[name] = sql
        return _decode_result(response["results"][0])

    def execute_prepared(
        self,
        name: str,
        params=None,
        timeout: float | None = None,
        trace_id: str | None = None,
        shard: int | None = None,
        shard_key=None,
    ):
        """EXECUTE the prepared statement with ``params`` (list for ``?``,
        dict for ``:name``); decodes like :meth:`execute` for one result.

        If the server no longer knows the handle, re-PREPAREs from the
        retained SQL and retries exactly once.
        """
        if trace_id is None:
            trace_id = self._mint_trace_id()
        self.last_trace_id = trace_id
        fields = {"name": name, "params": params if params is not None else []}
        if timeout is not None:
            fields["timeout"] = timeout
        if shard is not None:
            fields["shard"] = shard
        if shard_key is not None:
            fields["shard_key"] = shard_key
        try:
            response = self._call(
                "EXECUTE_PREPARED", trace=trace_id, **fields
            )
        except MoodServerError as exc:
            if exc.code != "UNKNOWN_PREPARED" or name not in self._prepared:
                raise
            self._call("PREPARE", name=name, sql=self._prepared[name])
            response = self._call(
                "EXECUTE_PREPARED", trace=trace_id, **fields
            )
        return _decode_result(response["results"][0])

    def deallocate(self, name: str) -> StatementOutcome:
        response = self._call("DEALLOCATE", name=name)
        self._prepared.pop(name, None)
        return _decode_result(response["results"][0])

    def begin(self, trace_id: str | None = None) -> None:
        """Open an explicit transaction under one transaction-level trace
        id (minted here unless supplied); see :attr:`txn_trace_id`."""
        if trace_id is None:
            trace_id = new_trace_id()
        self._call("BEGIN", trace=trace_id)
        self.txn_trace_id = trace_id
        self.last_txn_trace_id = trace_id
        self.last_trace_id = trace_id
        self._txn_statement_seq = 0

    def commit(self) -> None:
        trace_id, self.txn_trace_id = self.txn_trace_id, None
        fields = {"trace": trace_id} if trace_id is not None else {}
        self._call("COMMIT", **fields)

    def rollback(self) -> None:
        trace_id, self.txn_trace_id = self.txn_trace_id, None
        fields = {"trace": trace_id} if trace_id is not None else {}
        self._call("ROLLBACK", **fields)

    def _mint_trace_id(self) -> str:
        """A fresh statement trace id: inside an explicit transaction,
        a child of the transaction trace (``<txn>.N``); otherwise a new
        root id."""
        if self.txn_trace_id is not None:
            self._txn_statement_seq += 1
            return f"{self.txn_trace_id}.{self._txn_statement_seq}"
        return new_trace_id()

    # -- retry loop ----------------------------------------------------------

    def run_transaction(
        self,
        body,
        retries: int = DEFAULT_RETRIES,
        backoff: float = DEFAULT_BACKOFF,
        rng: random.Random | None = None,
    ):
        """Run ``body(client)`` inside BEGIN/COMMIT, retrying on retryable
        errors (deadlock victimisation, lock/statement timeouts, admission
        rejection, and -- against a sharded router -- SHARD_UNAVAILABLE /
        TXN_IN_DOUBT, both safe to retry under presumed abort) with
        exponential backoff plus jitter.

        Returns ``(result, attempts)``; raises the last error once the
        retry budget is spent or on any non-retryable failure.
        """
        rng = rng or random
        delay = backoff
        for attempt in range(1, retries + 2):
            try:
                self.begin()
                result = body(self)
                self.commit()
                return result, attempt
            except MoodServerError as exc:
                self._quiet_rollback()
                if not exc.retryable or attempt > retries:
                    raise
                # Full jitter keeps N backed-off clients from re-colliding.
                time.sleep(delay * (0.5 + rng.random()))
                delay *= 2

    def _quiet_rollback(self) -> None:
        try:
            self.rollback()
        except (MoodError, OSError):
            pass  # no open transaction (autocommit abort already ran)


def _decode_result(item: dict):
    kind = item.get("type")
    if kind == "query":
        return QueryRows(
            columns=item["columns"],
            rows=[tuple(decode_value(row)) for row in item["rows"]],
        )
    if kind == "explain":
        return item["report"]
    if kind == "statement":
        return StatementOutcome(
            kind=item["kind"],
            detail=item.get("detail", ""),
            count=item.get("count", 0),
            code=item.get("code"),
            obj=decode_value(item["object"])
            if item.get("object") is not None else None,
        )
    return item
