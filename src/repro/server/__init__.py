"""repro.server: the MOOD kernel served to concurrent clients over TCP.

The paper runs MOOD's interfaces (MoodView, MoodSQL shells) as client
processes of one kernel built on the Exodus Storage Manager.  This package
reproduces that process boundary:

* :mod:`~repro.server.protocol` -- length-prefixed JSON frames;
* :mod:`~repro.server.session` -- per-client transactions over the shared
  kernel (conservative 2PL closure first, engine latch second);
* :mod:`~repro.server.admission` -- bounded statement gate (load shedding);
* :mod:`~repro.server.server` -- the TCP server and graceful shutdown;
* :mod:`~repro.server.client` -- ``MoodClient`` with retryable-error
  backoff.

Run one with ``python -m repro.server`` and talk to it with
:class:`MoodClient`.
"""

from repro.server.client import (
    MoodClient,
    MoodServerError,
    QueryRows,
    StatementOutcome,
)
from repro.server.server import MoodServer, ServerConfig
from repro.server.session import Session, SessionManager

__all__ = [
    "MoodClient",
    "MoodServer",
    "MoodServerError",
    "QueryRows",
    "ServerConfig",
    "Session",
    "SessionManager",
    "StatementOutcome",
]
