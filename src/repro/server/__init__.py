"""repro.server: the MOOD kernel served to concurrent clients over TCP.

The paper runs MOOD's interfaces (MoodView, MoodSQL shells) as client
processes of one kernel built on the Exodus Storage Manager.  This package
reproduces that process boundary:

* :mod:`~repro.server.protocol` -- length-prefixed JSON frames;
* :mod:`~repro.server.session` -- per-client transactions over the shared
  kernel (conservative 2PL closure first, engine latch second);
* :mod:`~repro.server.admission` -- bounded statement gate (load shedding);
* :mod:`~repro.server.server` -- the TCP server and graceful shutdown;
* :mod:`~repro.server.client` -- ``MoodClient`` with retryable-error
  backoff;
* :mod:`~repro.server.worker` / :mod:`~repro.server.router` /
  :mod:`~repro.server.txlog` -- shard-per-core scale-out: engine workers
  over disjoint OID ranges behind a routing front end with
  presumed-abort two-phase commit.

Run one with ``python -m repro.server`` (``--shards N`` for a sharded
deployment) and talk to it with :class:`MoodClient`.
"""

from repro.server.client import (
    MoodClient,
    MoodServerError,
    QueryRows,
    StatementOutcome,
)
from repro.server.router import RouterConfig, ShardedServer, shard_of_key
from repro.server.server import MoodServer, ServerConfig
from repro.server.session import Session, SessionManager
from repro.server.txlog import CoordinatorLog
from repro.server.worker import LocalShard, ProcessShard

__all__ = [
    "CoordinatorLog",
    "LocalShard",
    "MoodClient",
    "MoodServer",
    "MoodServerError",
    "ProcessShard",
    "QueryRows",
    "RouterConfig",
    "ServerConfig",
    "Session",
    "SessionManager",
    "ShardedServer",
    "StatementOutcome",
    "shard_of_key",
]
