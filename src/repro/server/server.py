"""The MOOD server: sessions over TCP, with admission control.

One process owns the :class:`~repro.core.database.MoodDatabase`; clients
connect over TCP and speak the frame protocol of
:mod:`repro.server.protocol`.  Each connection gets a dedicated handler
thread (``socketserver.ThreadingTCPServer``) and one
:class:`~repro.server.session.Session`; statements pass through the
:class:`~repro.server.admission.AdmissionController` before touching the
kernel, so a client burst sheds load with retryable ``SERVER_BUSY``
errors instead of convoying on the engine latch.

Graceful shutdown (:meth:`MoodServer.stop`) runs in order: stop
accepting connections, refuse new statements (``SHUTTING_DOWN``), wait
for in-flight statements to drain, roll back every session's open
transaction, cut a checkpoint, and close the listener.  The store is
then cold-restartable: recovery finds only committed work.
"""

from __future__ import annotations

import socket
import socketserver
import threading
import time
from dataclasses import dataclass

from repro.core.database import MoodDatabase
from repro.core.errors import (
    MoodError,
    ProtocolError,
    describe_error,
)
from repro.obs.promtext import render_prometheus
from repro.obs.trace import DEFAULT_SLOW_MS
from repro.server.admission import AdmissionController
from repro.server.protocol import (
    REQUEST_OPS,
    encode_value,
    error_response,
    ok_response,
    recv_frame,
    send_frame,
)
from repro.server.session import (
    DEFAULT_STATEMENT_TIMEOUT,
    Session,
    SessionManager,
)


@dataclass
class ServerConfig:
    """Knobs for one server instance."""

    host: str = "127.0.0.1"
    port: int = 0                     # 0 = ephemeral, read back after start()
    max_workers: int = 8              # statements inside the kernel at once
    max_queue: int = 16               # statements parked awaiting admission
    admission_timeout: float = 5.0    # seconds a statement may queue
    statement_timeout: float = DEFAULT_STATEMENT_TIMEOUT
    shutdown_drain: float = 10.0      # seconds to wait for in-flight work
    slow_query_ms: float = DEFAULT_SLOW_MS   # slow-query log threshold
    stats_top_slow: int = 5           # slow queries reported by STATS
    #: Record statement traces, slow-query entries and plan-tree spans.
    #: Counters and latency histograms stay on either way; turning this
    #: off removes only the per-statement ring/span bookkeeping (the
    #: overhead the PR 9 benchmark measures).
    tracing: bool = True
    #: Seconds between background reclustering passes; ``None`` leaves the
    #: daemon off (it can still be started per-request over RECLUSTER).
    recluster_interval: float | None = None


class MoodServer:
    """Serves one MoodDatabase to many TCP clients."""

    def __init__(self, db: MoodDatabase, config: ServerConfig | None = None):
        self.db = db
        self.config = config or ServerConfig()
        self.sessions = SessionManager(
            db, statement_timeout=self.config.statement_timeout,
            slow_query_ms=self.config.slow_query_ms,
            tracing=self.config.tracing,
        )
        component = db.kernel.storage.metrics.component("server")
        self.admission = AdmissionController(
            self.config.max_workers,
            self.config.max_queue,
            metrics_component=db.kernel.storage.metrics.component(
                "server.admission"
            ),
            events=db.kernel.storage.events,
        )
        self._m_connections = component.counter("connections")
        self._m_frames = component.counter("frames")
        self._m_errors = component.counter("errors")
        self._tcp: _FrameTCPServer | None = None
        self._accept_thread: threading.Thread | None = None
        self._inflight = 0
        self._inflight_mutex = threading.Lock()
        self._drained = threading.Condition(self._inflight_mutex)
        self._stopped = False
        self._crashed = False
        # Established connection sockets, so a simulated crash can sever
        # them the way a process kill would.
        self._conn_socks: set = set()
        self._conn_mutex = threading.Lock()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> tuple[str, int]:
        """Bind, start accepting, and return the bound ``(host, port)``."""
        if self._tcp is not None:
            raise MoodError("server already started")
        self._tcp = _FrameTCPServer(
            (self.config.host, self.config.port), _ConnectionHandler, self
        )
        self._accept_thread = threading.Thread(
            target=self._tcp.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="mood-server-accept",
            daemon=True,
        )
        self._accept_thread.start()
        if self.config.recluster_interval is not None:
            self.db.start_reclusterer(self.config.recluster_interval)
        return self.address

    @property
    def address(self) -> tuple[str, int]:
        if self._tcp is None:
            raise MoodError("server not started")
        host, port = self._tcp.server_address[:2]
        return host, port

    def stop(self, graceful: bool = True) -> None:
        """Shut down; with ``graceful`` drain in-flight statements first."""
        if self._tcp is None or self._stopped:
            return
        self._stopped = True
        # 0. Park the background reclusterer: a half-finished batch would
        #    roll back anyway, but stopping it first keeps the drain quiet.
        self.db.stop_reclusterer()
        # 1. No new statements (frames already mid-execution keep going).
        self.sessions.begin_shutdown()
        # 2. No new connections.
        self._tcp.shutdown()
        if graceful:
            # 3. Drain: wait for every admitted statement to finish.
            deadline = time.monotonic() + self.config.shutdown_drain
            with self._drained:
                while self._inflight > 0:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._drained.wait(remaining)
            # 4. Roll back whatever transactions sessions still hold open.
            self.sessions.close_all()
            # 5. Leave a clean, replayable store behind.
            self.db.kernel.storage.checkpoint()
        else:
            self.sessions.close_all()
        # 6. Release the listener socket; handler threads are daemonic and
        #    exit as their clients hang up or their next statement is
        #    refused with SHUTTING_DOWN.
        self._tcp.server_close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)

    def simulate_crash(self) -> None:
        """Die without grace: sever every connection and the listener,
        skipping the drain / rollback / checkpoint tail of :meth:`stop`.
        Sessions' open transactions are simply abandoned, exactly as a
        process kill would leave them; pair with ``storage.crash()`` +
        ``restart()`` to exercise crash recovery (including in-doubt
        resurrection)."""
        if self._tcp is None or self._stopped:
            return
        self._stopped = True
        self._crashed = True  # handlers must not run their graceful tail
        # A process kill takes the reclusterer thread with it; stop it so
        # it cannot keep mutating the storage the test is about to crash.
        self.db.stop_reclusterer()
        self._tcp.shutdown()
        self._tcp.server_close()
        with self._conn_mutex:
            socks = list(self._conn_socks)
        for sock in socks:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)

    def __enter__(self) -> "MoodServer":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- in-flight accounting -------------------------------------------------

    def _statement_started(self) -> None:
        with self._inflight_mutex:
            self._inflight += 1

    def _statement_finished(self) -> None:
        with self._drained:
            self._inflight -= 1
            if self._inflight == 0:
                self._drained.notify_all()

    # -- request dispatch -----------------------------------------------------

    def handle_request(self, session: Session, request: dict) -> dict:
        """One request frame in, one response frame out."""
        self._m_frames.inc()
        op = request.get("op")
        if op not in REQUEST_OPS:
            raise ProtocolError(f"unknown op {op!r}")
        try:
            return self._dispatch(session, op, request)
        except MoodError as exc:
            self._m_errors.inc()
            return error_response(describe_error(exc))
        finally:
            self._reconcile_ticket(session)

    def _ensure_ticket(self, session: Session) -> float:
        """Admission is per *transaction*, not per statement: a session
        already holding a slot (its explicit transaction is admitted) runs
        its next statement ungated.  Gating mid-transaction statements
        would let a lock-holding transaction park in the admission queue
        while every admitted slot waits on its locks -- a deadlock between
        the two layers that neither one's detector can see.

        Returns the milliseconds spent in the admission queue so the
        statement's trace can attribute its queue wait."""
        if session.admitted:
            return 0.0
        waited_ms = self.admission.admit(
            timeout=self.config.admission_timeout
        )
        session.admitted = True
        return waited_ms

    def _reconcile_ticket(self, session: Session) -> None:
        """Release the slot once the session is back in autocommit."""
        if session.admitted and not session.in_transaction:
            session.admitted = False
            self.admission.release()

    def _dispatch(self, session: Session, op: str, request: dict) -> dict:
        if op == "PING":
            return ok_response({"pong": True})
        if op == "STATS":
            return ok_response({"stats": self._stats(session)})
        if op == "METRICS":
            return ok_response({"metrics": render_prometheus(
                self.db.kernel.storage.metrics
            )})
        if op == "TELEMETRY":
            return self._telemetry(request)
        if op == "RECLUSTER":
            return self._recluster(request)
        if op == "BEGIN":
            self._ensure_ticket(session)
            return _statement_payload(self.sessions.begin(session))
        if op == "COMMIT":
            return _statement_payload(self.sessions.commit(session))
        if op == "ROLLBACK":
            return _statement_payload(self.sessions.rollback(session))
        if op == "PREPARE_TXN":
            return _statement_payload(
                self.sessions.prepare_transaction(
                    session, _require_gid(request),
                    trace_id=_optional_trace(op, request),
                )
            )
        if op == "COMMIT_PREPARED":
            return _statement_payload(
                self.sessions.commit_prepared(
                    _require_gid(request),
                    trace_id=_optional_trace(op, request),
                )
            )
        if op == "ROLLBACK_PREPARED":
            return _statement_payload(
                self.sessions.rollback_prepared(
                    _require_gid(request),
                    trace_id=_optional_trace(op, request),
                )
            )
        if op == "IN_DOUBT":
            return ok_response({"gids": self.sessions.in_doubt_gids()})
        if op == "PREPARE":
            name = _require_name(op, request)
            sql = request.get("sql")
            if not isinstance(sql, str):
                raise ProtocolError("PREPARE needs a string 'sql' field")
            return _statement_payload(
                self.sessions.prepare(session, name, sql)
            )
        if op == "DEALLOCATE":
            return _statement_payload(
                self.sessions.deallocate(session, _require_name(op, request))
            )
        if op == "EXECUTE_PREPARED":
            name = _require_name(op, request)
            params = request.get("params", [])
            if not isinstance(params, (list, dict)):
                raise ProtocolError(
                    "EXECUTE_PREPARED 'params' must be a list or an object"
                )
            trace_id = request.get("trace")
            if trace_id is not None and not isinstance(trace_id, str):
                raise ProtocolError(f"{op} 'trace' field must be a string")
            queue_wait_ms = self._ensure_ticket(session)
            self._statement_started()
            try:
                result = self.sessions.execute_prepared(
                    session, name, params,
                    timeout=request.get("timeout"),
                    trace_id=trace_id, queue_wait_ms=queue_wait_ms,
                )
            finally:
                self._statement_finished()
            return ok_response({
                "results": [_encode_result(result)],
                "trace": session.last_trace_id,
            })
        # EXECUTE / QUERY / EXPLAIN enter the kernel: gate them.
        sql = request.get("sql")
        if not isinstance(sql, str):
            raise ProtocolError(f"{op} needs a string 'sql' field")
        if op == "EXPLAIN" and not sql.lstrip().upper().startswith("EXPLAIN"):
            sql = "EXPLAIN " + sql
        timeout = request.get("timeout")
        trace_id = request.get("trace")
        if trace_id is not None and not isinstance(trace_id, str):
            raise ProtocolError(f"{op} 'trace' field must be a string")
        queue_wait_ms = self._ensure_ticket(session)
        self._statement_started()
        try:
            results = self.sessions.execute(
                session, sql, timeout=timeout,
                trace_id=trace_id, queue_wait_ms=queue_wait_ms,
            )
        finally:
            self._statement_finished()
        return ok_response({
            "results": [_encode_result(result) for result in results],
            "trace": session.last_trace_id,
        })

    def _telemetry(self, request: dict) -> dict:
        """The router's observability scatter verb: one SYS$ view's rows,
        or the whole metrics registry with *mergeable* histogram dumps.
        Read-only and admission-free -- a monitoring poll must not queue
        behind (or shed with) the workload it is observing."""
        view = request.get("view")
        metrics = self.db.kernel.storage.metrics
        if view is None:
            return ok_response({
                "counters": metrics.counters(),
                "histograms": metrics.histogram_dumps(),
            })
        if not isinstance(view, str):
            raise ProtocolError("TELEMETRY 'view' must be a string")
        views = self.db.kernel.system_views
        # An unknown view answers empty rather than erroring so a newer
        # router can scatter to an older worker during a rolling upgrade.
        rows = views.rows(view) if views.has(view) else []
        return ok_response({"rows": [encode_value(row) for row in rows]})

    def _recluster(self, request: dict) -> dict:
        """Dynamic-clustering control: ``run`` a synchronous pass,
        ``start``/``stop`` the background daemon, or report ``status``.
        Admission-free like TELEMETRY -- a maintenance pass takes ordinary
        locks and yields on timeout, so it must not hold an admission slot
        while it waits behind the very statements it yields to."""
        action = request.get("action", "status")
        if action == "run":
            return ok_response({"recluster": self.db.recluster()})
        if action == "start":
            interval = request.get("interval", 30.0)
            if not isinstance(interval, (int, float)) or interval <= 0:
                raise ProtocolError(
                    "RECLUSTER 'interval' must be a positive number"
                )
            self.db.start_reclusterer(float(interval))
            return ok_response({"running": True})
        if action == "stop":
            self.db.stop_reclusterer()
            return ok_response({"running": False})
        if action == "status":
            return ok_response({
                "status": encode_value(self.db.reclusterer.status()),
                "running": self.db.reclusterer_running,
            })
        raise ProtocolError(f"unknown RECLUSTER action {action!r}")

    def _stats(self, session: Session) -> dict:
        kernel = self.db.kernel
        return {
            "session_id": session.session_id,
            "in_transaction": session.in_transaction,
            "sessions": len(self.sessions.sessions()),
            "admission_active": self.admission.active(),
            "admission_queued": self.admission.queue_depth(),
            "plancache": kernel.plan_cache.stats(),
            "metrics": {
                name: value
                for name, value in
                kernel.storage.metrics.snapshot().items()
                if name.startswith(("server.", "locks.", "plancache."))
            },
            "histograms": {
                name: summary
                for name, summary in
                kernel.storage.metrics.histograms().items()
                if name.startswith(("server.", "locks.", "plancache."))
            },
            "slow_queries": [
                trace.row()
                for trace in kernel.slow_log.top(self.config.stats_top_slow)
            ],
        }


# --------------------------------------------------------------------------
# Result encoding
# --------------------------------------------------------------------------

def _encode_result(result) -> dict:
    from repro.core.kernel import ExplainResult, QueryResult, StatementResult

    if isinstance(result, QueryResult):
        return {
            "type": "query",
            "columns": list(result.columns),
            "rows": [encode_value(list(row)) for row in result.rows],
        }
    if isinstance(result, ExplainResult):
        payload = {"type": "explain", "report": result.render()}
        if result.result is not None:
            payload["columns"] = list(result.result.columns)
            payload["rows"] = [
                encode_value(list(row)) for row in result.result.rows
            ]
        return payload
    if isinstance(result, StatementResult):
        return {
            "type": "statement",
            "kind": result.kind,
            "detail": result.detail,
            "count": result.count,
            "code": result.code,
            "object": encode_value(result.obj)
            if result.obj is not None else None,
        }
    return {"type": "opaque", "repr": repr(result)}


def _statement_payload(result) -> dict:
    return ok_response({"results": [_encode_result(result)]})


def _require_name(op: str, request: dict) -> str:
    name = request.get("name")
    if not isinstance(name, str) or not name:
        raise ProtocolError(f"{op} needs a non-empty string 'name' field")
    return name


def _optional_trace(op: str, request: dict) -> str | None:
    trace_id = request.get("trace")
    if trace_id is not None and not isinstance(trace_id, str):
        raise ProtocolError(f"{op} 'trace' field must be a string")
    return trace_id


def _require_gid(request: dict) -> str:
    gid = request.get("gid")
    if not isinstance(gid, str) or not gid:
        raise ProtocolError(
            f"{request.get('op')} needs a non-empty string 'gid' field"
        )
    return gid


# --------------------------------------------------------------------------
# socketserver plumbing
# --------------------------------------------------------------------------

class _FrameTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address, handler, mood_server: MoodServer):
        self.mood_server = mood_server
        super().__init__(address, handler)


class _ConnectionHandler(socketserver.BaseRequestHandler):
    """One thread per connection: a session plus a frame loop."""

    def handle(self) -> None:
        server: MoodServer = self.server.mood_server
        server._m_connections.inc()
        with server._conn_mutex:
            server._conn_socks.add(self.request)
        try:
            session = server.sessions.open_session()
        except MoodError as exc:
            send_frame(self.request, error_response(describe_error(exc)))
            return
        try:
            while True:
                try:
                    request = recv_frame(self.request)
                except ProtocolError as exc:
                    # Framing is gone; answer once and hang up.
                    send_frame(
                        self.request, error_response(describe_error(exc))
                    )
                    return
                if request is None or request.get("op") == "CLOSE":
                    if request is not None:
                        send_frame(self.request, ok_response({"bye": True}))
                    return
                response = server.handle_request(session, request)
                send_frame(self.request, response)
        except (ConnectionError, BrokenPipeError, OSError):
            pass  # client vanished; the finally still rolls its txn back
        finally:
            with server._conn_mutex:
                server._conn_socks.discard(self.request)
            if not server._crashed:
                server.sessions.close_session(session)
                # A connection that died mid-transaction still holds a slot.
                server._reconcile_ticket(session)
