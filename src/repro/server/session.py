"""Sessions: per-client transaction context over one shared MOOD kernel.

The paper's architecture runs MoodView/MoodSQL interfaces as *processes*
against one kernel on ESM; this module is the kernel-side half of that
contract.  Each connected client owns a :class:`Session`; the
:class:`SessionManager` executes its statements against the shared
:class:`~repro.core.database.MoodDatabase` under a two-level scheme:

**Locks first.**  Before a statement runs, its *lock closure* is computed
from the AST: S on every extent the FROM ranges (plus everything
reachable through reference-typed attributes -- path expressions chase
those) can touch, X on extents it writes, X on the ``("catalog",)``
resource for DDL and S for everything else.  The closure is acquired in
sorted resource order -- conservative (static) 2PL, so two predeclaring
statements cannot deadlock against each other; deadlocks can still arise
across *multi-statement* transactions whose closures interleave, and the
lock manager's wait-for graph catches those.

**Latch second.**  The statement then executes holding the *engine latch*
(one RLock shared with the storage and transaction managers), because the
kernel's buffer pool, capture windows and trace state are single-caller.
While latched, ``txn.lock_timeout`` is pinned to 0: any lock the
predeclared closure missed (e.g. a path through a freshly-named object)
degrades to a no-wait probe, so the latch is *never* held across a lock
wait and the latch/lock hierarchy stays deadlock-free.  A failed probe
surfaces as a retryable ``LOCK_TIMEOUT``.

Timeouts bound the waiting phases (lock closure, engine latch); a
statement already executing inside the engine cannot be preempted in
Python and runs to completion.  Externally aborting a session's
transaction (shutdown, deadlock victimisation) wakes its lock waits via
:class:`~repro.core.errors.LockCancelledError`.
"""

from __future__ import annotations

import threading
import time

from repro.core.database import MoodDatabase
from repro.core.errors import (
    DeadlockError,
    LockCancelledError,
    LockTimeoutError,
    MoodError,
    MoodSqlError,
    ServerShuttingDownError,
    SessionClosedError,
    StatementTimeoutError,
    TransactionAbortedError,
    TransactionError,
)
from repro.core.kernel import QueryResult, StatementResult
from repro.core.prepare import PreparedRegistry
from repro.catalog.typeparse import parse_type
from repro.model.types import referenced_class
from repro.obs.spans import SpanRecorder
from repro.obs.trace import (
    StatementTrace,
    server_trace_id,
    truncate_statement,
)
from repro.sql.ast import (
    AlterClass,
    AnalyzeStmt,
    CreateClass,
    CreateIndex,
    CreateMethod,
    DeallocateStmt,
    DeleteStmt,
    DropClass,
    DropIndex,
    DropMethod,
    ExecuteStmt,
    ExplainStmt,
    NewObject,
    PrepareStmt,
    SelectQuery,
    UpdateStmt,
)
from repro.sql.parser import parse_script
from repro.storage.locks import LockMode
from repro.storage.transactions import Transaction, TxnState

#: Resource representing the schema itself: S for any statement that
#: relies on it (all of them), X for DDL.
CATALOG_RESOURCE = ("catalog",)

#: Default per-statement budget for the waiting phases, seconds.
DEFAULT_STATEMENT_TIMEOUT = 30.0

_DDL_STATEMENTS = (
    CreateClass, DropClass, AlterClass,
    CreateIndex, DropIndex, CreateMethod, DropMethod,
)

_STATEMENT_KINDS = {
    "SelectQuery": "SELECT",
    "ExplainStmt": "EXPLAIN",
    "NewObject": "NEW",
    "UpdateStmt": "UPDATE",
    "DeleteStmt": "DELETE",
    "AnalyzeStmt": "ANALYZE",
    "CreateClass": "CREATE CLASS",
    "DropClass": "DROP CLASS",
    "AlterClass": "ALTER CLASS",
    "CreateIndex": "CREATE INDEX",
    "DropIndex": "DROP INDEX",
    "CreateMethod": "CREATE METHOD",
    "DropMethod": "DROP METHOD",
    "PrepareStmt": "PREPARE",
    "ExecuteStmt": "EXECUTE",
    "DeallocateStmt": "DEALLOCATE",
}


def _statement_kind(statement) -> str:
    name = type(statement).__name__
    return _STATEMENT_KINDS.get(name, name.upper())


class Session:
    """One client's state: an id, an optional open transaction, a flag."""

    def __init__(self, session_id: int, manager: "SessionManager"):
        self.session_id = session_id
        self.manager = manager
        self.txn: Transaction | None = None
        self.closed = False
        #: Serialises statements *within* the session: one client pipelining
        #: frames must not interleave its own statements.
        self.mutex = threading.Lock()
        self.statements = 0
        #: This session's PREPARE namespace (the wire protocol's handles
        #: are per-connection, like every real server's).
        self.prepared = PreparedRegistry()
        #: Trace id of the session's most recent statement ("" before any).
        self.last_trace_id = ""
        #: True while this session holds an admission slot.  A slot is
        #: taken per autocommit statement OR per explicit transaction
        #: (BEGIN..COMMIT) -- never per mid-transaction statement, because
        #: a lock-holding transaction parked in the admission queue while
        #: admitted statements wait on its locks would deadlock the two
        #: layers against each other.
        self.admitted = False

    @property
    def in_transaction(self) -> bool:
        return self.txn is not None and self.txn.state is TxnState.ACTIVE

    def __repr__(self) -> str:
        return (
            f"Session({self.session_id}, "
            f"{'txn' if self.in_transaction else 'autocommit'})"
        )


class SessionManager:
    """Executes sessions' statements against one shared database."""

    def __init__(
        self,
        db: MoodDatabase,
        statement_timeout: float = DEFAULT_STATEMENT_TIMEOUT,
        slow_query_ms: float | None = None,
        tracing: bool = True,
    ):
        self.db = db
        self.kernel = db.kernel
        self.statement_timeout = statement_timeout
        #: When off, skip the per-statement trace ring / slow log / span
        #: recording (counters and histograms stay on) -- the knob the
        #: observability-overhead benchmark toggles.
        self.tracing = tracing
        if slow_query_ms is not None:
            self.kernel.slow_log.threshold_ms = slow_query_ms
        #: The engine latch (== storage latch == txn-manager latch).
        self.latch = self.kernel.storage.latch
        self._mutex = threading.Lock()
        self._sessions: dict[int, Session] = {}
        self._next_id = 1
        self._shutting_down = False
        component = self.kernel.storage.metrics.component("server")
        self._component = component
        self._m_sessions = component.counter("sessions_opened")
        self._m_statements = component.counter("statements")
        self._m_statements_failed = component.counter("statements_failed")
        self._m_statement_ms = component.histogram("statement_ms")
        self._m_deadlocks = component.counter("deadlock_aborts")
        self._m_lock_timeouts = component.counter("lock_timeouts")
        self._m_stmt_timeouts = component.counter("statement_timeouts")
        self._m_commits = component.counter("commits")
        self._m_rollbacks = component.counter("rollbacks")
        self._m_prepares = component.counter("txn_prepares")
        self.kernel.system_views.register(
            "SYS$SESSIONS",
            [("session_id", "Integer"), ("state", "String"),
             ("txn_id", "Integer"), ("statements", "Integer"),
             ("admitted", "Boolean"), ("last_trace_id", "String")],
            self._session_rows,
            "every open session: transaction state, statement count, "
            "admission slot, last trace id",
        )

    def _session_rows(self) -> list[dict]:
        rows = []
        for session in self.sessions():
            txn = session.txn
            rows.append({
                "session_id": session.session_id,
                "state": "txn" if session.in_transaction else "autocommit",
                "txn_id": txn.txn_id if txn is not None else -1,
                "statements": session.statements,
                "admitted": session.admitted,
                "last_trace_id": session.last_trace_id,
            })
        return sorted(rows, key=lambda r: r["session_id"])

    # -- session lifecycle ----------------------------------------------------

    def open_session(self) -> Session:
        with self._mutex:
            if self._shutting_down:
                raise ServerShuttingDownError("server is shutting down")
            session = Session(self._next_id, self)
            self._next_id += 1
            self._sessions[session.session_id] = session
            self._m_sessions.inc()
            return session

    def close_session(self, session: Session) -> None:
        """Roll back any open transaction and retire the session."""
        with self._mutex:
            self._sessions.pop(session.session_id, None)
        session.closed = True
        self._rollback_if_open(session)

    def sessions(self) -> list[Session]:
        with self._mutex:
            return list(self._sessions.values())

    def begin_shutdown(self) -> None:
        """Refuse new sessions and new statements from here on."""
        with self._mutex:
            self._shutting_down = True

    def close_all(self) -> None:
        """Shutdown tail: roll back every session still in a transaction."""
        for session in self.sessions():
            self.close_session(session)

    def _rollback_if_open(self, session: Session) -> None:
        txn, session.txn = session.txn, None
        if txn is not None and txn.state is TxnState.ACTIVE:
            try:
                txn.abort()
            except TransactionError:
                pass  # a racing external abort already finished it
            self._m_rollbacks.inc()

    # -- transaction verbs ----------------------------------------------------

    def begin(self, session: Session) -> StatementResult:
        self._check_open(session)
        with session.mutex:
            if session.in_transaction:
                raise TransactionError(
                    f"session {session.session_id} already has an open "
                    "transaction"
                )
            session.txn = self.kernel.storage.begin()
            return StatementResult(
                kind="BEGIN", detail=f"transaction {session.txn.txn_id}"
            )

    def commit(self, session: Session) -> StatementResult:
        self._check_open(session)
        with session.mutex:
            txn, session.txn = session.txn, None
            if txn is None:
                raise TransactionError("no open transaction to commit")
            if txn.state is not TxnState.ACTIVE:
                # Externally aborted (victimised) underneath the client.
                raise TransactionAbortedError(
                    f"transaction {txn.txn_id} was already rolled back"
                )
            txn.commit()
            self._m_commits.inc()
            return StatementResult(
                kind="COMMIT", detail=f"transaction {txn.txn_id}"
            )

    def rollback(self, session: Session) -> StatementResult:
        self._check_open(session)
        with session.mutex:
            txn, session.txn = session.txn, None
            if txn is None:
                raise TransactionError("no open transaction to roll back")
            txn_id = txn.txn_id
            if txn.state is TxnState.ACTIVE:
                txn.abort()
            self._m_rollbacks.inc()
            return StatementResult(
                kind="ROLLBACK", detail=f"transaction {txn_id}"
            )

    # -- two-phase commit (participant verbs, driven by the router) -----------

    def prepare_transaction(
        self, session: Session, gid: str, trace_id: str | None = None,
    ) -> StatementResult:
        """Phase-1 vote for the session's open transaction.  On success the
        transaction detaches from the session (its fate now belongs to the
        coordinator) with all its locks still held.

        ``trace_id`` is the coordinator's transaction trace: the vote is
        recorded under it (trace ring + ``twopc.prepare`` journal event),
        so one cross-shard commit reads as one trace across the cluster.
        """
        self._check_open(session)
        started = time.monotonic()
        with session.mutex:
            txn = session.txn
            if txn is None:
                raise TransactionError("no open transaction to prepare")
            if txn.state is not TxnState.ACTIVE:
                session.txn = None
                raise TransactionAbortedError(
                    f"transaction {txn.txn_id} was already rolled back"
                )
            self.kernel.storage.txns.prepare(txn, gid)
            session.txn = None
            self._m_prepares.inc()
            self._record_twopc(
                "PREPARE_TXN", gid, trace_id, started,
                session_id=session.session_id, txn_id=txn.txn_id,
                event="twopc.prepare", vote="yes",
            )
            return StatementResult(
                kind="PREPARE_TXN", detail=f"transaction {txn.txn_id} gid {gid}"
            )

    def commit_prepared(
        self, gid: str, trace_id: str | None = None,
    ) -> StatementResult:
        """Idempotent phase-2 commit for a prepared transaction."""
        started = time.monotonic()
        applied = self.kernel.storage.txns.commit_prepared(gid)
        if applied:
            self._m_commits.inc()
            self._record_twopc(
                "COMMIT_PREPARED", gid, trace_id, started,
                event="twopc.commit",
            )
        return StatementResult(
            kind="COMMIT_PREPARED",
            detail=f"gid {gid} {'committed' if applied else 'already resolved'}",
        )

    def rollback_prepared(
        self, gid: str, trace_id: str | None = None,
    ) -> StatementResult:
        """Idempotent phase-2 abort (or presumed abort) for a prepared
        transaction."""
        started = time.monotonic()
        applied = self.kernel.storage.txns.rollback_prepared(gid)
        if applied:
            self._m_rollbacks.inc()
            self._record_twopc(
                "ROLLBACK_PREPARED", gid, trace_id, started,
                event="twopc.rollback",
            )
        return StatementResult(
            kind="ROLLBACK_PREPARED",
            detail=f"gid {gid} {'rolled back' if applied else 'already resolved'}",
        )

    def _record_twopc(
        self,
        kind: str,
        gid: str,
        trace_id: str | None,
        started: float,
        session_id: int = -1,
        txn_id: int = 0,
        event: str = "",
        **event_fields,
    ) -> None:
        """One applied 2PC lifecycle verb: a statement-ring trace under
        the coordinator's trace id plus a ``twopc.*`` journal event.
        ``session_id`` -1 marks coordinator-driven phase-2 verbs, which
        run outside any client session."""
        if not self.tracing:
            return
        total_ms = (time.monotonic() - started) * 1e3
        trace = StatementTrace(
            trace_id=trace_id if trace_id is not None else server_trace_id(),
            session_id=session_id,
            statement=truncate_statement(f"{kind} {gid}"),
            kind=kind,
            txn_id=txn_id,
            started_at=time.time() - total_ms / 1e3,
            total_ms=total_ms,
        )
        self.kernel.statement_log.record(trace)
        if event:
            self.kernel.storage.events.emit(
                event, gid=gid, trace_id=trace.trace_id,
                ms=round(total_ms, 3), **event_fields,
            )

    def in_doubt_gids(self) -> list[str]:
        """Global transaction ids prepared here and awaiting a decision."""
        return sorted(self.kernel.storage.txns.in_doubt)

    # -- statement execution --------------------------------------------------

    def execute(
        self,
        session: Session,
        sql: str,
        timeout: float | None = None,
        trace_id: str | None = None,
        queue_wait_ms: float = 0.0,
    ) -> list:
        """Run a ';'-separated script; one result per statement.

        Statements run under the session's open transaction, or each under
        its own autocommit transaction.  The first failing statement stops
        the script; under an explicit transaction, a failure also rolls the
        whole transaction back (strictness keeps the abort path simple: no
        statement-level undo exists at page-image granularity).

        ``trace_id`` (client-minted, or server-assigned when absent) labels
        the statement's trace; a multi-statement script derives per-
        statement ids (``<id>/2``, ``<id>/3`` ...).  ``queue_wait_ms`` is
        the admission wait the server already paid for this call; it is
        attributed to the first statement's trace.
        """
        self._check_open(session)
        budget = self.statement_timeout if timeout is None else timeout
        statements = parse_script(sql)
        if trace_id is None:
            trace_id = server_trace_id()
        results = []
        with session.mutex:
            for index, statement in enumerate(statements):
                results.append(self._execute_one(
                    session, statement, budget,
                    sql_text=sql,
                    trace_id=trace_id if index == 0
                    else f"{trace_id}/{index + 1}",
                    queue_wait_ms=queue_wait_ms if index == 0 else 0.0,
                ))
        return results

    def _check_open(self, session: Session) -> None:
        if session.closed:
            raise SessionClosedError(
                f"session {session.session_id} is closed"
            )
        if self._shutting_down:
            raise ServerShuttingDownError("server is shutting down")

    # -- prepared-statement verbs (the wire protocol's direct ops) -----------

    def prepare(self, session: Session, name: str, sql: str) -> StatementResult:
        """Compile ``sql`` once under ``name`` in the session's registry."""
        self._check_open(session)
        statements = parse_script(sql)
        if len(statements) != 1:
            raise MoodSqlError("PREPARE takes exactly one statement")
        statement = statements[0]
        if isinstance(statement, (PrepareStmt, ExecuteStmt, DeallocateStmt)):
            raise MoodSqlError(
                "PREPARE/EXECUTE/DEALLOCATE cannot themselves be prepared"
            )
        with session.mutex:
            prepared = session.prepared.prepare(name, statement)
            self._m_statements.inc()
            session.statements += 1
        return StatementResult(
            "PREPARE",
            f"{prepared.name} ({len(prepared.params)} parameters)",
        )

    def deallocate(self, session: Session, name: str) -> StatementResult:
        self._check_open(session)
        with session.mutex:
            session.prepared.deallocate(name)
            self._m_statements.inc()
            session.statements += 1
        return StatementResult("DEALLOCATE", name)

    def execute_prepared(
        self,
        session: Session,
        name: str,
        values=(),
        timeout: float | None = None,
        trace_id: str | None = None,
        queue_wait_ms: float = 0.0,
    ):
        """Bind ``values`` into the session's prepared statement ``name``
        and run it -- the compile-once/execute-many fast path: no parse,
        no rewrite, and (on a plan cache hit) no optimize either."""
        self._check_open(session)
        budget = self.statement_timeout if timeout is None else timeout
        if trace_id is None:
            trace_id = server_trace_id()
        prepared = session.prepared.get(name)   # UNKNOWN_PREPARED on miss
        bound = prepared.bind(values)
        with session.mutex:
            return self._execute_one(
                session, bound, budget,
                sql_text=f"EXECUTE {name}",
                trace_id=trace_id,
                queue_wait_ms=queue_wait_ms,
                kind="EXECUTE",
            )

    def _execute_one(
        self,
        session: Session,
        statement,
        budget: float,
        sql_text: str,
        trace_id: str,
        queue_wait_ms: float,
        kind: str | None = None,
    ):
        trace = StatementTrace(
            trace_id=trace_id,
            session_id=session.session_id,
            statement=truncate_statement(sql_text),
            kind=kind or _statement_kind(statement),
            started_at=time.time(),
            queue_wait_ms=queue_wait_ms,
        )
        session.last_trace_id = trace_id
        started = time.monotonic()
        try:
            return self._execute_traced(session, statement, budget, trace)
        except MoodError as exc:
            # Every failure -- including ones raised before the engine ran
            # -- lands in the trace, the failure counters, and (via the
            # finally) the latency histogram.
            trace.status = getattr(exc, "code", None) or "ERROR"
            self._m_statements_failed.inc()
            self._component.counter(f"errors.{trace.status}").inc()
            raise
        finally:
            trace.total_ms = (time.monotonic() - started) * 1e3
            self._m_statement_ms.observe(trace.total_ms)
            if self.tracing:
                self.kernel.statement_log.record(trace)
                if self.kernel.slow_log.consider(trace):
                    self.kernel.storage.events.emit(
                        "statement.slow",
                        trace_id=trace.trace_id,
                        session=trace.session_id,
                        statement_kind=trace.kind,
                        total_ms=round(trace.total_ms, 3),
                    )

    def _execute_traced(
        self,
        session: Session,
        statement,
        budget: float,
        trace: StatementTrace,
    ):
        deadline = time.monotonic() + budget
        # PREPARE / DEALLOCATE touch only the session's own registry:
        # compile-time work, no data, no locks, no transaction.
        if isinstance(statement, PrepareStmt):
            prepared = session.prepared.prepare(
                statement.name, statement.statement
            )
            self._m_statements.inc()
            session.statements += 1
            return StatementResult(
                "PREPARE",
                f"{prepared.name} ({len(prepared.params)} parameters)",
            )
        if isinstance(statement, DeallocateStmt):
            session.prepared.deallocate(statement.name)
            self._m_statements.inc()
            session.statements += 1
            return StatementResult("DEALLOCATE", statement.name)
        # EXECUTE resolves to its bound inner statement *before* locking,
        # so the lock closure, the DDL-autocommit rule, and the read-only
        # classification all see what will actually run.
        statement = self.kernel.resolve_statement(statement, session.prepared)
        autocommit = not session.in_transaction
        if isinstance(statement, _DDL_STATEMENTS) and not autocommit:
            # DDL writes the catalog's system files outside the WAL: it
            # cannot be rolled back, so it may not join a transaction.
            raise TransactionError(
                "DDL statements are autocommit-only; COMMIT or ROLLBACK "
                "first"
            )
        txn = self.kernel.storage.begin() if autocommit else session.txn
        trace.txn_id = txn.txn_id
        try:
            self._acquire_closure(txn, statement, deadline, trace)
            result = self._run_latched(txn, statement, deadline, trace)
            if autocommit:
                txn.commit()
            self._m_statements.inc()
            session.statements += 1
            return result
        except (DeadlockError, LockTimeoutError, LockCancelledError,
                StatementTimeoutError) as exc:
            self._count_concurrency_error(exc)
            self._surrender(session, txn, autocommit)
            raise
        except MoodError:
            self._surrender(session, txn, autocommit)
            raise

    def _count_concurrency_error(self, exc: MoodError) -> None:
        if isinstance(exc, DeadlockError):
            self._m_deadlocks.inc()
        elif isinstance(exc, StatementTimeoutError):
            self._m_stmt_timeouts.inc()
        else:
            self._m_lock_timeouts.inc()

    def _surrender(
        self, session: Session, txn: Transaction, autocommit: bool
    ) -> None:
        """Abort ``txn`` after a failed statement (strict: a failure inside
        an explicit transaction rolls the whole transaction back)."""
        if not autocommit:
            session.txn = None
            self._m_rollbacks.inc()
        if txn.state is TxnState.ACTIVE:
            try:
                txn.abort()
            except TransactionError:
                pass  # lost the completion race to an external abort

    # -- phase 1: the lock closure -------------------------------------------

    def _acquire_closure(
        self,
        txn: Transaction,
        statement,
        deadline: float,
        trace: StatementTrace | None = None,
    ) -> None:
        plan = self._lock_plan(statement)
        lock_started = time.monotonic()
        try:
            for resource, mode in sorted(plan.items()):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise StatementTimeoutError(
                        "statement timed out acquiring its lock closure"
                    )
                if txn.state is not TxnState.ACTIVE:
                    raise TransactionAbortedError(
                        f"transaction {txn.txn_id} was rolled back"
                    )
                self.kernel.storage.locks.acquire(
                    txn.txn_id, resource, mode, timeout=remaining
                )
        finally:
            if trace is not None:
                trace.lock_wait_ms = (time.monotonic() - lock_started) * 1e3

    def _lock_plan(self, statement) -> dict[tuple, LockMode]:
        """``resource -> strongest needed mode`` for one statement."""
        plan: dict[tuple, LockMode] = {}

        def need(resource: tuple, mode: LockMode) -> None:
            if mode is LockMode.X or resource not in plan:
                plan[resource] = mode

        def extent_files(classes, mode: LockMode) -> None:
            for name in classes:
                extent = self.kernel.catalog.extent_file(name)
                need(("file", extent.file_id), mode)

        if isinstance(statement, _DDL_STATEMENTS):
            need(CATALOG_RESOURCE, LockMode.X)
            target = getattr(statement, "name", None) or getattr(
                statement, "class_name", None
            )
            if isinstance(statement, CreateMethod):
                target = statement.class_name
            if target and self.kernel.catalog.has_class(target):
                # ALTER migrates instances, DROP destroys the extent,
                # CREATE INDEX scans and back-fills: X the data too.
                extent_files(
                    self.kernel.catalog.hierarchy.extent_classes(target),
                    LockMode.X,
                )
            return plan

        need(CATALOG_RESOURCE, LockMode.S)
        if isinstance(statement, AnalyzeStmt):
            extent_files(
                [
                    name
                    for name in self.kernel.catalog.class_names()
                    if self.kernel.catalog.class_def(name).is_class
                ],
                LockMode.S,
            )
        elif isinstance(statement, (SelectQuery, ExplainStmt)):
            query = statement.query if isinstance(statement, ExplainStmt) \
                else statement
            seeds = self._range_classes(query.ranges)
            extent_files(self._reference_closure(seeds), LockMode.S)
        elif isinstance(statement, NewObject):
            if self.kernel.catalog.has_class(statement.class_name):
                extent_files([statement.class_name], LockMode.X)
                # Positional values may embed paths through references.
                extent_files(
                    self._reference_closure({statement.class_name}),
                    LockMode.S,
                )
        elif isinstance(statement, (UpdateStmt, DeleteStmt)):
            seeds = self._range_classes([statement.range_var])
            extent_files(seeds, LockMode.X)
            extent_files(self._reference_closure(seeds), LockMode.S)
        return plan

    def _range_classes(self, ranges) -> set[str]:
        hierarchy = self.kernel.catalog.hierarchy
        seeds: set[str] = set()
        for range_var in ranges:
            if not self.kernel.catalog.has_class(range_var.class_name):
                continue  # the kernel will raise the proper schema error
            try:
                seeds.update(
                    hierarchy.extent_classes(
                        range_var.class_name, list(range_var.minus)
                    )
                )
            except MoodError:
                continue
        return seeds

    def _reference_closure(self, seeds: set[str]) -> set[str]:
        """Seeds plus every class reachable through reference-typed
        attributes (path expressions dereference along exactly those)."""
        hierarchy = self.kernel.catalog.hierarchy
        closure: set[str] = set()
        frontier = list(seeds)
        while frontier:
            name = frontier.pop()
            if name in closure or not self.kernel.catalog.has_class(name):
                continue
            for member in hierarchy.extent_classes(name):
                if member in closure:
                    continue
                closure.add(member)
                for attribute in hierarchy.all_attributes(member):
                    try:
                        target = referenced_class(
                            parse_type(attribute.type_name)
                        )
                    except MoodError:
                        continue
                    if target is not None and target not in closure:
                        frontier.append(target)
        return closure

    # -- phase 2: the latched execution --------------------------------------

    def _run_latched(
        self,
        txn: Transaction,
        statement,
        deadline: float,
        trace: StatementTrace | None = None,
    ):
        remaining = deadline - time.monotonic()
        latch_started = time.monotonic()
        if remaining <= 0 or not self.latch.acquire(timeout=max(remaining, 0)):
            raise StatementTimeoutError(
                "statement timed out waiting for the engine latch"
            )
        if trace is not None:
            trace.latch_wait_ms = (time.monotonic() - latch_started) * 1e3
        objects = self.kernel.objects
        storage = self.kernel.storage
        # I/O attribution is sound under the latch: execution in there is
        # single-caller, so the disk-stats delta is this statement's.
        tracing = trace is not None and self.tracing
        io_before = storage.io_snapshot() if tracing else None
        exec_started = time.monotonic()
        spans = None
        if tracing and isinstance(statement, SelectQuery):
            spans = SpanRecorder(
                io_probe=storage.io_snapshot, trace_id=trace.trace_id
            )
        try:
            if txn.state is not TxnState.ACTIVE:
                raise TransactionAbortedError(
                    f"transaction {txn.txn_id} was rolled back"
                )
            read_only = isinstance(statement, (SelectQuery, ExplainStmt))
            if read_only and not self.kernel.is_system_select(statement):
                # Statistics refresh scans extents *outside* the session
                # transaction: physically safe under the latch, and stats
                # are advisory so strict isolation buys nothing here.
                # (SYS$ view selects have no plans, hence no statistics.)
                self.db._ensure_statistics()
            objects.current_txn = txn
            txn.lock_timeout = 0  # no-wait probes only while latched
            if trace is not None:
                # Events raised from inside planning (implicit ANALYZE)
                # attribute to this statement's trace.
                self.kernel.active_trace_id = trace.trace_id
            result = self.kernel.execute_statement(statement, spans=spans)
            if not read_only:
                self.db._schema_version += 1
            if trace is not None:
                if isinstance(result, QueryResult):
                    trace.rows = len(result.rows)
                elif isinstance(result, StatementResult):
                    trace.rows = result.count
            return result
        finally:
            objects.current_txn = None
            txn.lock_timeout = None
            self.kernel.active_trace_id = ""
            if trace is not None:
                trace.exec_ms = (time.monotonic() - exec_started) * 1e3
                if io_before is not None:
                    io_delta = storage.io_snapshot().since(io_before)
                    trace.io_pages = io_delta.page_ios
                    trace.io_ms = io_delta.elapsed_ms
                if spans is not None:
                    trace.spans = spans.roots
            self.latch.release()
