"""Cluster-wide observability: federated SYS$ views and shard health.

PR 7 sharded the engine; this module re-unifies its *telemetry*.  The
router owns a miniature view database whose SYS$ views, re-registered
here, answer cluster questions: every worker view gains a leading
``shard`` column (rows gathered over the admission-free ``TELEMETRY``
wire verb; the router's own rows carry ``shard = -1``), ``SYS$TXNS``
exposes the in-flight and in-doubt branches of distributed transactions,
and ``SYS$SHARD_HEALTH`` rolls per-shard statement rates, latency
percentiles and object/page access counts into the skew signal the
ROADMAP's dynamic-clustering item needs (VOODB frames exactly this
per-operation accounting as the basis for OODB performance evaluation).

Histogram federation is exact, not approximate: workers ship raw bucket
counts (:meth:`repro.obs.metrics.Histogram.dump`), the router sums them
(:func:`repro.obs.metrics.merge_histogram_dumps`) and reads percentiles
off the merged distribution -- never averaging per-shard percentiles.

A dead shard never takes observability down with it: its scatter calls
are skipped (``cluster.telemetry_failures`` counts the misses) and the
federated views answer from the shards that remain.
"""

from __future__ import annotations

import time

from repro.core.errors import ShardUnavailableError
from repro.obs.metrics import merge_histogram_dumps, summarize_dump
from repro.obs.views import TRACE_COLUMNS

#: Shard index the router's own telemetry rows carry in federated views.
ROUTER_SHARD = -1

#: Worker views the router federates (each gains a ``shard`` column).
FEDERATED_VIEWS = (
    "SYS$SESSIONS", "SYS$STATEMENTS", "SYS$LOCKS", "SYS$COUNTERS",
    "SYS$SLOW_QUERIES", "SYS$EVENTS", "SYS$PLANS", "SYS$CLUSTERING",
)

#: Views that only the router can answer (topology, coordinator state,
#: cluster health) -- never forwarded to a shard, even under a hint.
ROUTER_ONLY_VIEWS = frozenset(
    {"SYS$SHARDS", "SYS$TXNS", "SYS$SHARD_HEALTH"}
)

#: SYS$SESSIONS schema (the router's view database has no session
#: manager of its own to copy it from).
_SESSION_COLUMNS = (
    ("session_id", "Integer"), ("state", "String"), ("txn_id", "Integer"),
    ("statements", "Integer"), ("admitted", "Boolean"),
    ("last_trace_id", "String"),
)

#: Histogram families whose cluster-wide merge is worth surfacing in the
#: router's STATS payload by default (anything else merges on demand via
#: METRICS or SYS$COUNTERS).
STATS_HISTOGRAMS = (
    "server.statement_ms",
    "server.admission.queue_wait_ms",
    "locks.wait_ms",
)


class ClusterTelemetry:
    """The router's scatter-gather observability plane."""

    def __init__(self, router):
        self.router = router
        component = router.metrics.component("cluster")
        self._m_calls = component.counter("telemetry_calls")
        self._m_failures = component.counter("telemetry_failures")
        self._m_federated = component.counter("federated_queries")
        self.detector = HotShardDetector(router, self)
        self._install_views()

    # -- scatter-gather over the TELEMETRY verb ------------------------------

    def shard_view_rows(self, name: str) -> list[tuple[int, list[dict]]]:
        """``(shard, rows)`` of one SYS$ view from every reachable shard."""
        gathered = []
        for shard in range(self.router.shard_count):
            response = self._telemetry_call(shard, {"op": "TELEMETRY",
                                                    "view": name})
            if response is not None:
                gathered.append((shard, response.get("rows", [])))
        return gathered

    def shard_metrics(self) -> dict[int, tuple[dict, dict]]:
        """``shard -> (counters, histogram_dumps)`` from reachable shards."""
        gathered: dict[int, tuple[dict, dict]] = {}
        for shard in range(self.router.shard_count):
            response = self._telemetry_call(shard, {"op": "TELEMETRY"})
            if response is not None:
                gathered[shard] = (
                    response.get("counters", {}),
                    response.get("histograms", {}),
                )
        return gathered

    def _telemetry_call(self, shard: int, request: dict) -> dict | None:
        self._m_calls.inc()
        try:
            return self.router._admin_call(shard, request)
        except ShardUnavailableError:
            self._m_failures.inc()
            return None

    def merged_histograms(self) -> dict[str, dict]:
        """Cluster-wide percentile summaries: every histogram family
        present on any shard, bucket-merged across all of them."""
        per_shard = self.shard_metrics()
        families: dict[str, list[dict]] = {}
        for _, dumps in per_shard.values():
            for name, dump in dumps.items():
                families.setdefault(name, []).append(dump)
        merged = {}
        for name, dumps in sorted(families.items()):
            combined = merge_histogram_dumps(dumps)
            if combined is not None:
                merged[name] = summarize_dump(combined)
        return merged

    # -- federated view registration -----------------------------------------

    def _install_views(self) -> None:
        """Re-register the router view database's SYS$ views as cluster
        views: a leading ``shard`` column, worker rows via TELEMETRY,
        router-local rows (its own traces, counters, events, slow log,
        sessions) as ``shard = -1``.  Registration simply overwrites, so
        the single-process schemas stay untouched everywhere else."""
        views = self.router._viewdb.kernel.system_views
        local_suppliers = {
            # The view database's kernel-registered suppliers already read
            # the router's registry / journal / statement log (they share
            # storage); wrap them as the shard = -1 contribution.  The
            # router has no lock table or plan cache worth reporting.
            "SYS$SESSIONS": self.router._session_rows,
            "SYS$STATEMENTS": views.get("SYS$STATEMENTS").supplier,
            "SYS$SLOW_QUERIES": views.get("SYS$SLOW_QUERIES").supplier,
            "SYS$COUNTERS": views.get("SYS$COUNTERS").supplier,
            "SYS$EVENTS": views.get("SYS$EVENTS").supplier,
            "SYS$LOCKS": None,
            "SYS$PLANS": None,
            # The router's view database never derefs user objects, so its
            # own reclusterer has nothing to say; rows come from the shards.
            "SYS$CLUSTERING": None,
        }
        for name in FEDERATED_VIEWS:
            if name == "SYS$SESSIONS":
                columns = _SESSION_COLUMNS
                description = ("every session on the router and each "
                               "shard worker")
            else:
                view = views.get(name)
                columns = view.columns
                description = f"{view.description} (cluster-wide)"
            views.register(
                name,
                [("shard", "Integer"), *columns],
                self._federated_supplier(name, local_suppliers[name]),
                description,
            )
        views.register(
            "SYS$TXNS",
            [("gid", "String"), ("shard", "Integer"), ("state", "String"),
             ("verdict", "String"), ("session_id", "Integer")],
            self._txn_rows,
            "distributed transaction branches: active participants, "
            "logged-but-unacked decisions, and shard-side in-doubt gids",
        )
        views.register(
            "SYS$SHARD_HEALTH",
            [("shard", "Integer"), ("alive", "Boolean"),
             ("statements", "Integer"), ("failed", "Integer"),
             ("stmt_per_s", "Float"), ("share", "Float"), ("skew", "Float"),
             ("p99_statement_ms", "Float"), ("p99_queue_wait_ms", "Float"),
             ("p99_lock_wait_ms", "Float"), ("oid_accesses", "Integer"),
             ("io_pages", "Integer"), ("hot", "Boolean")],
            self.detector.health_rows,
            "per-shard load roll-up: statement rate and cluster share, "
            "tail latencies, OID/page access counts, hot flag",
        )

    def _federated_supplier(self, name: str, local_supplier):
        def supplier() -> list[dict]:
            self._m_federated.inc()
            rows: list[dict] = []
            if local_supplier is not None:
                for row in local_supplier():
                    rows.append({"shard": ROUTER_SHARD, **row})
            for shard, shard_rows in self.shard_view_rows(name):
                for row in shard_rows:
                    if isinstance(row, dict):
                        rows.append({"shard": shard, **row})
            if name == "SYS$EVENTS":
                rows.sort(key=lambda r: r.get("ts", 0.0))
            return rows

        return supplier

    def _txn_rows(self) -> list[dict]:
        rows = []
        decided = {}
        for decision in self.router.txlog.pending():
            decided[decision.gid] = decision.verdict
            for shard in decision.shards:
                rows.append({
                    "gid": decision.gid, "shard": shard, "state": "decided",
                    "verdict": decision.verdict, "session_id": -1,
                })
        for session in self.router.sessions():
            if not session.in_txn:
                continue
            for shard in sorted(session.participants):
                rows.append({
                    "gid": session.txn_trace or "", "shard": shard,
                    "state": "active", "verdict": "",
                    "session_id": session.session_id,
                })
        for shard in range(self.router.shard_count):
            response = self._telemetry_call(shard, {"op": "IN_DOUBT"})
            if response is None:
                continue
            for gid in response.get("gids", []):
                rows.append({
                    "gid": gid, "shard": shard, "state": "in_doubt",
                    "verdict": decided.get(gid, ""), "session_id": -1,
                })
        return rows


class HotShardDetector:
    """Rolls per-shard telemetry into the skew signal of SYS$SHARD_HEALTH.

    Each evaluation polls every shard's counters and histogram dumps,
    turns statement counts into rates over the window since that shard
    was last polled, and compares each shard's rate against the cluster
    mean: ``skew = rate / mean_rate``.  A shard whose skew crosses
    ``RouterConfig.hot_shard_skew`` while running at least
    ``hot_shard_min_rate`` statements/second is flagged ``hot`` --
    counted in ``shard_health.hot_shards`` and journalled as a
    ``shard_health.hot`` event on the transition into hotness (an
    imbalance that persists across polls logs once, not per poll).
    """

    def __init__(self, router, telemetry: ClusterTelemetry):
        self.router = router
        self.telemetry = telemetry
        component = router.metrics.component("shard_health")
        self._m_checks = component.counter("checks")
        self._m_hot = component.counter("hot_shards")
        self._started = time.monotonic()
        #: shard -> (monotonic ts, statements counter) of the last poll.
        self._prev: dict[int, tuple[float, float]] = {}
        self._hot_prev: set[int] = set()

    def health_rows(self) -> list[dict]:
        self._m_checks.inc()
        now = time.monotonic()
        per_shard = self.telemetry.shard_metrics()
        rates: dict[int, float] = {}
        rows: list[dict] = []
        for shard in range(self.router.shard_count):
            payload = per_shard.get(shard)
            if payload is None:
                rows.append(self._dead_row(shard))
                continue
            counters, dumps = payload
            statements = counters.get("server.statements", 0.0)
            prev_ts, prev_statements = self._prev.get(
                shard, (self._started, 0.0)
            )
            window = max(now - prev_ts, 1e-9)
            rate = max(statements - prev_statements, 0.0) / window
            self._prev[shard] = (now, statements)
            rates[shard] = rate
            rows.append({
                "shard": shard,
                "alive": True,
                "statements": int(statements),
                "failed": int(counters.get("server.statements_failed", 0.0)),
                "stmt_per_s": round(rate, 3),
                "share": 0.0,   # filled below, needs the cluster total
                "skew": 0.0,
                "p99_statement_ms": _p99(dumps, "server.statement_ms"),
                "p99_queue_wait_ms": _p99(
                    dumps, "server.admission.queue_wait_ms"
                ),
                "p99_lock_wait_ms": _p99(dumps, "locks.wait_ms"),
                "oid_accesses": int(
                    counters.get("objcache.hits", 0.0)
                    + counters.get("objcache.misses", 0.0)
                ),
                "io_pages": int(
                    counters.get("disk.page_reads", 0.0)
                    + counters.get("disk.page_writes", 0.0)
                ),
                "hot": False,
            })
        total_rate = sum(rates.values())
        mean_rate = total_rate / len(rates) if rates else 0.0
        hot_now: set[int] = set()
        for row in rows:
            shard = row["shard"]
            if shard not in rates:
                continue
            rate = rates[shard]
            row["share"] = round(rate / total_rate, 4) if total_rate else 0.0
            skew = rate / mean_rate if mean_rate else 0.0
            row["skew"] = round(skew, 3)
            if (len(rates) > 1
                    and skew >= self.router.config.hot_shard_skew
                    and rate >= self.router.config.hot_shard_min_rate):
                row["hot"] = True
                hot_now.add(shard)
                self._m_hot.inc()
                if shard not in self._hot_prev:
                    self.router.events.emit(
                        "shard_health.hot",
                        shard=shard,
                        skew=round(skew, 3),
                        stmt_per_s=round(rate, 3),
                        share=row["share"],
                    )
        self._hot_prev = hot_now
        return rows

    def _dead_row(self, shard: int) -> dict:
        return {
            "shard": shard, "alive": False, "statements": 0, "failed": 0,
            "stmt_per_s": 0.0, "share": 0.0, "skew": 0.0,
            "p99_statement_ms": 0.0, "p99_queue_wait_ms": 0.0,
            "p99_lock_wait_ms": 0.0, "oid_accesses": 0, "io_pages": 0,
            "hot": False,
        }


def _p99(dumps: dict, name: str) -> float:
    dump = dumps.get(name)
    if not isinstance(dump, dict):
        return 0.0
    return round(summarize_dump(dump)["p99"], 3)
