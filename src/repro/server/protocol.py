"""The MOOD wire protocol: length-prefixed JSON frames over a byte stream.

MoodView talks to the MOOD kernel over a client/server boundary (the paper
runs the interfaces as clients of a shared kernel on ESM); this module is
that boundary's wire format for the reproduction:

* a frame is a 4-byte big-endian payload length followed by a UTF-8 JSON
  document -- trivially debuggable with ``nc`` plus a hex dump, and
  framing survives any TCP segmentation;
* requests carry ``op`` (``EXECUTE``/``QUERY``/``EXPLAIN``/``BEGIN``/
  ``COMMIT``/``ROLLBACK``/``PING``/``CLOSE``) and op-specific fields;
* responses carry ``ok`` plus either a result payload or an ``error``
  object holding the stable ``code``/``errno``/``retryable``/``message``
  identity from :mod:`repro.core.errors`.

Values that cross the wire are encoded structurally: an OID becomes
``{"$oid": "v.p.s"}``, a :class:`~repro.model.objects.MoodObject` becomes
``{"$object": {...}}``, and sets become ``{"$set": [...]}`` (JSON has no
set).  :func:`decode_value` restores them as :class:`RemoteObject` /
:class:`RemoteOID` client-side stand-ins -- the client deliberately does
*not* rebuild live kernel objects.
"""

from __future__ import annotations

import json
import socket
import struct
from dataclasses import dataclass, field

from repro.core.errors import ProtocolError

_LENGTH = struct.Struct("!I")

#: Upper bound on one frame's JSON payload; a longer length prefix means a
#: desynchronised or hostile peer, not a big result.
MAX_FRAME_BYTES = 16 * 1024 * 1024

#: Operations a server understands; anything else is a PROTOCOL error.
REQUEST_OPS = frozenset({
    "EXECUTE", "QUERY", "EXPLAIN", "BEGIN", "COMMIT", "ROLLBACK",
    "PREPARE", "EXECUTE_PREPARED", "DEALLOCATE",
    "PING", "STATS", "METRICS", "CLOSE",
    # Two-phase commit (router -> shard worker only): phase-1 vote and the
    # idempotent phase-2 decisions, plus the in-doubt report used by the
    # coordinator's presumed-abort recovery sweep.
    "PREPARE_TXN", "COMMIT_PREPARED", "ROLLBACK_PREPARED", "IN_DOUBT",
    # Observability scatter-gather: a worker's SYS$ view rows or its raw
    # metrics registry (counters + mergeable histogram dumps).  The router
    # federates cluster-wide SYS$ views and the merged Prometheus export
    # from these answers; read-only, bypasses admission.
    "TELEMETRY",
    # Dynamic clustering control: run a synchronous reclustering pass,
    # start/stop the background daemon, or fetch SYS$CLUSTERING status.
    # Admission-free like TELEMETRY; the router broadcasts to every shard.
    "RECLUSTER",
})


# --------------------------------------------------------------------------
# Framing
# --------------------------------------------------------------------------

def send_frame(sock: socket.socket, message: dict) -> None:
    """Encode ``message`` as one length-prefixed JSON frame and send it."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds {MAX_FRAME_BYTES}"
        )
    sock.sendall(_LENGTH.pack(len(payload)) + payload)


def recv_frame(sock: socket.socket) -> dict | None:
    """Read one frame; ``None`` on a clean EOF at a frame boundary."""
    payload = recv_frame_bytes(sock)
    if payload is None:
        return None
    return decode_frame(payload)


def recv_frame_bytes(sock: socket.socket) -> bytes | None:
    """One frame's undecoded payload; ``None`` on a clean EOF.  The
    router's relay path reads frames this way so it can forward them
    byte-identical without a decode/re-encode round trip."""
    header = _recv_exact(sock, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame length {length} exceeds {MAX_FRAME_BYTES}")
    payload = _recv_exact(sock, length)
    if payload is None:
        raise ProtocolError("connection closed mid-frame")
    return payload


def send_frame_bytes(sock: socket.socket, payload: bytes) -> None:
    """Send an already-encoded frame payload (the relay's other half)."""
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds {MAX_FRAME_BYTES}"
        )
    sock.sendall(_LENGTH.pack(len(payload)) + payload)


def decode_frame(payload: bytes) -> dict:
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError("frame payload must be a JSON object")
    return message


def _recv_exact(sock: socket.socket, count: int) -> bytes | None:
    """``count`` bytes off the socket, or ``None`` on EOF before byte one."""
    chunks = bytearray()
    while len(chunks) < count:
        chunk = sock.recv(count - len(chunks))
        if not chunk:
            return None if not chunks else _raise_truncated()
        chunks.extend(chunk)
    return bytes(chunks)


def _raise_truncated() -> bytes:
    raise ProtocolError("connection closed mid-frame")


# --------------------------------------------------------------------------
# Value encoding
# --------------------------------------------------------------------------

def encode_value(value):
    """A JSON-ready rendering of any value a statement can produce."""
    from repro.model.objects import MoodObject
    from repro.storage.oid import OID

    if isinstance(value, MoodObject):
        return {"$object": {
            "oid": str(value.oid),
            "class": value.class_name,
            "state": {k: encode_value(v) for k, v in value.state.items()},
        }}
    if isinstance(value, OID):
        return {"$oid": str(value)}
    if isinstance(value, (set, frozenset)):
        return {"$set": [encode_value(v) for v in value]}
    if isinstance(value, (list, tuple)):
        return [encode_value(v) for v in value]
    if isinstance(value, dict):
        return {k: encode_value(v) for k, v in value.items()}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


@dataclass(frozen=True)
class RemoteOID:
    """Client-side stand-in for an OID (``volume.page.slot`` text)."""

    text: str

    def __str__(self) -> str:
        return self.text


@dataclass
class RemoteObject:
    """Client-side stand-in for a MoodObject: identity + state, no kernel."""

    oid: RemoteOID
    class_name: str
    state: dict = field(default_factory=dict)

    def __getitem__(self, attribute: str):
        return self.state[attribute]


def decode_value(value):
    """Invert :func:`encode_value` into client-side stand-ins."""
    if isinstance(value, dict):
        if "$object" in value and len(value) == 1:
            body = value["$object"]
            return RemoteObject(
                oid=RemoteOID(body["oid"]),
                class_name=body["class"],
                state={k: decode_value(v) for k, v in body["state"].items()},
            )
        if "$oid" in value and len(value) == 1:
            return RemoteOID(value["$oid"])
        if "$set" in value and len(value) == 1:
            return [decode_value(v) for v in value["$set"]]
        return {k: decode_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [decode_value(v) for v in value]
    return value


# --------------------------------------------------------------------------
# Result envelopes
# --------------------------------------------------------------------------

def ok_response(payload: dict | None = None) -> dict:
    message = {"ok": True}
    if payload:
        message.update(payload)
    return message


def error_response(error: dict) -> dict:
    """``error`` is :func:`repro.core.errors.describe_error` output."""
    return {"ok": False, "error": error}
