"""``python -m repro.server``: stand up a MOOD server on a TCP port.

By default serves an empty database; ``--demo`` loads the paper's
vehicle/company schema and instances (scaled) so a fresh checkout can be
queried immediately:

    python -m repro.server --port 7207 --demo &
    python - <<'PY'
    from repro.server import MoodClient
    with MoodClient("127.0.0.1", 7207) as client:
        print(client.query(
            "SELECT v.id, v.manufacturer.name FROM Vehicle v"
        ).rows[:5])
    PY
"""

from __future__ import annotations

import argparse
import signal
import threading

from repro.core.database import MoodDatabase
from repro.server.server import MoodServer, ServerConfig


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Serve a MOOD database over TCP.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7207)
    parser.add_argument("--workers", type=int, default=8,
                        help="max concurrent statements in the kernel")
    parser.add_argument("--queue", type=int, default=16,
                        help="max statements queued for admission")
    parser.add_argument("--statement-timeout", type=float, default=30.0)
    parser.add_argument("--demo", action="store_true",
                        help="preload the paper's vehicle/company data")
    parser.add_argument("--demo-scale", type=int, default=100)
    parser.add_argument("--shards", type=int, default=0,
                        help="serve a sharded deployment: N worker "
                             "processes behind a routing front end")
    parser.add_argument("--txlog", default=None,
                        help="path for the router's 2PC decision log "
                             "(sharded mode only)")
    parser.add_argument("--no-tracing", action="store_true",
                        help="disable per-statement tracing (trace rings, "
                             "slow log, spans, journal events); counters "
                             "and latency histograms stay on")
    parser.add_argument("--recluster", type=float, default=None,
                        metavar="SECONDS",
                        help="run the background reclusterer every N "
                             "seconds (per shard in sharded mode); off by "
                             "default, controllable at runtime over the "
                             "RECLUSTER verb either way")
    args = parser.parse_args(argv)

    if args.shards > 0:
        return _main_sharded(args)

    db = MoodDatabase()
    if args.demo:
        from repro.bench.paperdb import build_paper_database

        build_paper_database(db, scale=args.demo_scale)
        print(f"demo data loaded (scale {args.demo_scale})")

    config = ServerConfig(
        host=args.host,
        port=args.port,
        max_workers=args.workers,
        max_queue=args.queue,
        statement_timeout=args.statement_timeout,
        tracing=not args.no_tracing,
        recluster_interval=args.recluster,
    )
    server = MoodServer(db, config)
    host, port = server.start()
    print(f"MOOD server listening on {host}:{port}")

    done = threading.Event()
    signal.signal(signal.SIGINT, lambda *_: done.set())
    signal.signal(signal.SIGTERM, lambda *_: done.set())
    done.wait()
    print("shutting down...")
    server.stop(graceful=True)
    return 0


def _main_sharded(args) -> int:
    from repro.server.router import RouterConfig, ShardedServer

    options = {
        "max_workers": args.workers,
        "max_queue": args.queue,
        "statement_timeout": args.statement_timeout,
        "tracing": not args.no_tracing,
    }
    if args.recluster is not None:
        options["recluster_interval"] = args.recluster
    if args.demo:
        options["build_paper"] = True
        options["scale"] = args.demo_scale
    router = ShardedServer(RouterConfig(
        host=args.host,
        port=args.port,
        shards=args.shards,
        worker_options=options,
        txlog_path=args.txlog,
        tracing=not args.no_tracing,
    ))
    host, port = router.start()
    print(f"MOOD router listening on {host}:{port} "
          f"({args.shards} shard workers)")

    done = threading.Event()
    signal.signal(signal.SIGINT, lambda *_: done.set())
    signal.signal(signal.SIGTERM, lambda *_: done.set())
    done.wait()
    print("shutting down...")
    router.stop()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
