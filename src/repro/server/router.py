"""The routing front end of a sharded MOOD deployment.

The OID space is range-partitioned over N shard engines (see
:mod:`repro.storage.oid`); this module is the coordinator that makes
them look like one server.  Clients speak the ordinary frame protocol to
the router; the router classifies each statement and either

* **forwards** it whole to a single shard (the fast path -- a raw frame
  relay, so a 1-shard deployment adds only one socket hop),
* **broadcasts** it (DDL, ANALYZE, and unhinted writes -- every shard
  holds the same schema, with writes made atomic by an internal
  two-phase commit), or
* **scatters** it (unhinted SELECT/EXPLAIN: every shard runs the query,
  the router concatenates the row streams and re-applies simple ORDER
  BYs).

Requests carry optional routing hints: ``shard`` pins a statement to a
shard index, ``shard_key`` hashes an application key to one
(``int % N``; strings via crc32).  ``NEW`` without a hint round-robins.

Cross-shard transactions commit with **presumed-abort two-phase
commit**: every participant forces a PREPARE record (votes yes, keeps
its locks), the router forces the decision into its
:class:`~repro.server.txlog.CoordinatorLog` -- the commit point -- then
drives the idempotent phase-2 verbs.  :meth:`ShardedServer.recover`
re-drives pending decisions after a router crash and presumed-abort
sweeps the shards' in-doubt lists, so no transaction stays in doubt
longer than one restart.

A ``SELECT ... FROM SYS$SHARDS`` is answered by the router itself (it is
the only party that knows the topology); every other ``SYS$`` view
scatters to the shards like any query.
"""

from __future__ import annotations

import socket
import socketserver
import threading
import time
import uuid
import zlib
from dataclasses import dataclass, field

from repro.core.database import MoodDatabase
from repro.core.errors import (
    MoodError,
    ProtocolError,
    ShardUnavailableError,
    TransactionError,
    TransactionInDoubtError,
    UnknownPreparedStatementError,
    describe_error,
)
from repro.obs.metrics import merge_histogram_dumps, summarize_dump
from repro.obs.spans import Span
from repro.obs.trace import StatementTrace, server_trace_id, truncate_statement
from repro.server.protocol import (
    REQUEST_OPS,
    decode_frame,
    encode_value,
    error_response,
    ok_response,
    recv_frame,
    recv_frame_bytes,
    send_frame,
    send_frame_bytes,
)
from repro.server.telemetry import (
    ROUTER_ONLY_VIEWS,
    STATS_HISTOGRAMS,
    ClusterTelemetry,
)
from repro.server.server import _encode_result
from repro.server.txlog import CoordinatorLog
from repro.server.worker import LocalShard, ProcessShard
from repro.sql.ast import (
    AlterClass,
    AnalyzeStmt,
    CreateClass,
    CreateIndex,
    CreateMethod,
    DeallocateStmt,
    DeleteStmt,
    DropClass,
    DropIndex,
    DropMethod,
    ExplainStmt,
    NewObject,
    PrepareStmt,
    SelectQuery,
    UpdateStmt,
)
from repro.sql.parser import parse_script
from repro.storage.oid import SHARD_PAGE_SPAN

_BROADCAST_STATEMENTS = (
    CreateClass, DropClass, AlterClass,
    CreateIndex, DropIndex, CreateMethod, DropMethod,
    AnalyzeStmt,
)

#: Default seconds a router->shard call may take.
DEFAULT_LINK_TIMEOUT = 60.0


def shard_of_key(key, shard_count: int) -> int:
    """Deterministically map an application sharding key to a shard:
    integers partition by ``key % N`` (matching the benchmark's
    id-partitioned dataset), everything else by a stable crc32 hash."""
    if isinstance(key, bool) or not isinstance(key, int):
        return zlib.crc32(str(key).encode("utf-8")) % shard_count
    return key % shard_count


@dataclass
class RouterConfig:
    """Knobs for one sharded deployment."""

    host: str = "127.0.0.1"
    port: int = 0                 # 0 = ephemeral, read back after start()
    shards: int = 1
    backend: str = "process"      # "process" or "local" (in-process) workers
    worker_options: dict = field(default_factory=dict)
    txlog_path: str | None = None # coordinator decision log (None: in-memory)
    link_timeout: float = DEFAULT_LINK_TIMEOUT
    #: Router-side tracing (statement ring, slow log, 2PC journal events
    #: and spans).  Counters and latency histograms stay on regardless --
    #: only per-request record keeping is toggled, mirroring the workers'
    #: ``ServerConfig.tracing``.
    tracing: bool = True
    #: SYS$SHARD_HEALTH flags a shard hot when its statement rate is at
    #: least ``hot_shard_skew`` times the cluster mean while running at
    #: ``hot_shard_min_rate`` statements/second or more.
    hot_shard_skew: float = 1.5
    hot_shard_min_rate: float = 0.5


class _ShardLink:
    """One socket to one shard worker, speaking raw frames.

    Responses pass through verbatim -- error payloads keep their stable
    ``code``/``errno``/``retryable`` identity end to end.  Any transport
    failure surfaces as :class:`ShardUnavailableError`; the owner must
    then discard the link (its stream may be desynchronised).
    """

    def __init__(self, shard_index: int, address: tuple[str, int],
                 timeout: float):
        self.shard_index = shard_index
        try:
            self._sock = socket.create_connection(address, timeout=timeout)
        except OSError as exc:
            raise ShardUnavailableError(
                f"shard {shard_index} unreachable at {address}: {exc}"
            ) from None

    def call(self, request: dict) -> dict:
        try:
            send_frame(self._sock, request)
            response = recv_frame(self._sock)
        except (OSError, ProtocolError) as exc:
            raise ShardUnavailableError(
                f"shard {self.shard_index} failed mid-call: {exc}"
            ) from None
        if response is None:
            raise ShardUnavailableError(
                f"shard {self.shard_index} hung up"
            )
        return response

    def call_raw(self, payload: bytes) -> bytes:
        """Relay an already-encoded frame and hand back the shard's
        response bytes untouched (the single-shard hot path: no JSON
        decode/re-encode at the router)."""
        try:
            send_frame_bytes(self._sock, payload)
            response = recv_frame_bytes(self._sock)
        except (OSError, ProtocolError) as exc:
            raise ShardUnavailableError(
                f"shard {self.shard_index} failed mid-call: {exc}"
            ) from None
        if response is None:
            raise ShardUnavailableError(
                f"shard {self.shard_index} hung up"
            )
        return response

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass


class RouterSession:
    """Per-connection routing state: lazy shard links, the distributed
    transaction's participant set, and client-prepared statements."""

    def __init__(self, session_id: int):
        self.session_id = session_id
        self.links: dict[int, _ShardLink] = {}
        self.in_txn = False
        #: Shards holding an open branch of the current transaction.
        self.participants: set[int] = set()
        #: Client-prepared statements: name -> SQL, the parse of the
        #: first statement (for routing without re-parsing), and the
        #: shards each one has been propagated to (lazily, on first
        #: execution there).
        self.prepared_sql: dict[str, str] = {}
        self.prepared_first: dict[str, object] = {}
        self.prepared_on: dict[str, set[int]] = {}
        #: Router-side per-session telemetry (the SYS$SESSIONS shard=-1
        #: rows): statements routed, last trace id, the transaction-level
        #: trace id carried by BEGIN, and spans the current statement's
        #: dispatch produced (the 2PC phase tree).
        self.statements = 0
        self.last_trace_id = ""
        self.txn_trace: str | None = None
        self.pending_spans: list = []

    def close_links(self) -> None:
        for link in self.links.values():
            link.close()
        self.links.clear()


class ShardedServer:
    """N shard workers behind one routing listener."""

    def __init__(
        self,
        config: RouterConfig | None = None,
        backends: list | None = None,
        txlog: CoordinatorLog | None = None,
    ):
        self.config = config or RouterConfig()
        if backends is not None:
            self.backends = list(backends)
            self._owns_backends = False
        else:
            cls = LocalShard if self.config.backend == "local" else ProcessShard
            self.backends = [
                cls(i, self.config.shards, self.config.worker_options)
                for i in range(self.config.shards)
            ]
            self._owns_backends = True
        self.shard_count = len(self.backends)
        if self.shard_count < 1:
            raise MoodError("a sharded server needs at least one shard")
        # Not `txlog or ...`: an empty CoordinatorLog has len() == 0 and
        # would be silently replaced, losing the injected log.
        self.txlog = (txlog if txlog is not None
                      else CoordinatorLog(self.config.txlog_path))
        #: Test hooks: ``failpoints[name] = fn`` runs ``fn()`` at the
        #: named point in the commit protocol (tests raise from it to
        #: simulate a coordinator crash at exactly that instant).
        self.failpoints: dict = {}
        # A miniature local database evaluates SYS$SHARDS with the
        # standard system-view machinery (WHERE/projection/ORDER BY all
        # work); its metrics registry doubles as the router's.
        self._viewdb = MoodDatabase(buffer_capacity=16, auto_analyze=False)
        self.metrics = self._viewdb.kernel.storage.metrics
        component = self.metrics.component("shard")
        self._m_forwarded = component.counter("forwarded")
        self._m_broadcasts = component.counter("broadcasts")
        self._m_scatter = component.counter("scatter_queries")
        self._m_2pc_commits = component.counter("twopc_commits")
        self._m_2pc_aborts = component.counter("twopc_aborts")
        self._m_2pc_in_doubt = component.counter("twopc_in_doubt")
        self._m_2pc_recovered = component.counter("twopc_recovered")
        self._m_unavailable = component.counter("unavailable")
        self._m_raw_relays = component.counter("raw_relays")
        # Router-level statement accounting (the satellite fix: failures
        # the router itself produces -- scatter-gather partial failures,
        # SHARD_UNAVAILABLE -- were invisible to metrics before).
        server_component = self.metrics.component("server")
        self._m_statements = server_component.counter("statements")
        self._m_statements_failed = server_component.counter(
            "statements_failed"
        )
        self._m_statement_ms = server_component.histogram("statement_ms")
        # Per-phase 2PC latency distributions (prepare votes, the
        # decision-log force, phase-2 verbs, whole protocol).
        twopc = self.metrics.component("twopc")
        self._m_twopc_ms = {
            "prepare": twopc.histogram("prepare_ms"),
            "decision": twopc.histogram("decision_ms"),
            "phase2": twopc.histogram("phase2_ms"),
            "total": twopc.histogram("total_ms"),
        }
        # The view database's journal and trace rings double as the
        # router's (its SYS$ views read them as the shard = -1 rows).
        self.events = self._viewdb.kernel.storage.events
        self.statement_log = self._viewdb.kernel.statement_log
        self.slow_log = self._viewdb.kernel.slow_log
        self._per_shard_statements = [0] * self.shard_count
        #: Live router sessions by id, for SYS$SESSIONS / SYS$TXNS.
        self._sessions: dict[int, RouterSession] = {}
        self._viewdb.kernel.system_views.register(
            "SYS$SHARDS",
            [("shard", "Integer"), ("host", "String"), ("port", "Integer"),
             ("alive", "Boolean"), ("page_base", "Integer"),
             ("statements", "Integer")],
            self._shard_rows,
            "every shard worker: address, liveness, OID page range, "
            "statements routed to it",
        )
        self._mutex = threading.Lock()
        self._admin_links: dict[int, _ShardLink] = {}
        # One lock per admin link: federated SYS$ queries scatter from
        # arbitrary client threads, and interleaved frames on a shared
        # link would desynchronise its stream.
        self._admin_locks = [threading.Lock() for _ in self.backends]
        self._next_session = 1
        self._round_robin = 0
        self._tcp: _RouterTCPServer | None = None
        self._accept_thread: threading.Thread | None = None
        self._stopped = False
        self._crashed = False
        #: Report of the in-doubt resolution run by the last start().
        self.last_recovery = {"redriven": 0, "swept": 0}
        # Established client sockets, severed on a simulated crash.
        self._conn_socks: set = set()
        self._conn_mutex = threading.Lock()
        # Installed last: re-registers the view database's SYS$ views as
        # federated cluster views and adds SYS$TXNS / SYS$SHARD_HEALTH.
        self.telemetry = ClusterTelemetry(self)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> tuple[str, int]:
        """Start the shards (when owned), resolve leftover in-doubt
        transactions, then open the routing listener."""
        if self._tcp is not None:
            raise MoodError("router already started")
        for backend in self.backends:
            if backend.address is None:
                backend.start()
        self.last_recovery = self.recover()
        self._tcp = _RouterTCPServer(
            (self.config.host, self.config.port), _RouterHandler, self
        )
        self._accept_thread = threading.Thread(
            target=self._tcp.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="mood-router-accept",
            daemon=True,
        )
        self._accept_thread.start()
        return self.address

    @property
    def address(self) -> tuple[str, int]:
        if self._tcp is None:
            raise MoodError("router not started")
        host, port = self._tcp.server_address[:2]
        return host, port

    def stop(self) -> None:
        if self._tcp is not None and not self._stopped:
            self._stopped = True
            self._tcp.shutdown()
            self._tcp.server_close()
            if self._accept_thread is not None:
                self._accept_thread.join(timeout=5)
        for link in self._admin_links.values():
            link.close()
        self._admin_links.clear()
        if self._owns_backends:
            for backend in self.backends:
                backend.stop()

    def simulate_crash(self) -> None:
        """Die without grace: every client connection and router->shard
        link is severed, the listener vanishes, and no rollback is sent.
        The shards keep running -- active branches die with their
        connections (each worker rolls them back), while prepared
        branches survive in doubt until :meth:`recover` on a restarted
        router resolves them."""
        if self._tcp is not None and not self._stopped:
            self._stopped = True
            self._crashed = True
            self._tcp.shutdown()
            self._tcp.server_close()
            with self._conn_mutex:
                socks = list(self._conn_socks)
            for sock in socks:
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    sock.close()
                except OSError:
                    pass
            if self._accept_thread is not None:
                self._accept_thread.join(timeout=5)
        for link in self._admin_links.values():
            link.close()
        self._admin_links.clear()

    def __enter__(self) -> "ShardedServer":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- coordinator recovery -------------------------------------------------

    def recover(self) -> dict:
        """Drain the decision log, then presumed-abort sweep the shards.

        Phase 1: every logged decision without a DONE is re-driven (the
        phase-2 verbs are idempotent, so re-driving an already-applied
        decision is harmless).  Phase 2: any gid a shard still holds in
        doubt with *no* logged decision never reached the commit point --
        presumed abort says roll it back.
        """
        redriven = 0
        swept = 0
        for decision in self.txlog.pending():
            verb = ("COMMIT_PREPARED" if decision.verdict == "COMMIT"
                    else "ROLLBACK_PREPARED")
            all_acked = True
            for shard in decision.shards:
                try:
                    self._admin_call(shard, {"op": verb, "gid": decision.gid})
                except ShardUnavailableError:
                    all_acked = False
            if all_acked:
                self.txlog.log_done(decision.gid)
                self._m_2pc_recovered.inc()
                self.events.emit(
                    "twopc.recovered",
                    gid=decision.gid, verdict=decision.verdict,
                    shards=len(decision.shards),
                )
                redriven += 1
        decided = {d.gid for d in self.txlog.pending()}
        for shard in range(self.shard_count):
            try:
                response = self._admin_call(shard, {"op": "IN_DOUBT"})
            except ShardUnavailableError:
                continue
            for gid in response.get("gids", []):
                if gid not in decided:
                    try:
                        self._admin_call(
                            shard,
                            {"op": "ROLLBACK_PREPARED", "gid": gid},
                        )
                        self.events.emit("twopc.swept", gid=gid, shard=shard)
                        swept += 1
                    except ShardUnavailableError:
                        pass
        return {"redriven": redriven, "swept": swept}

    def _admin_call(self, shard: int, request: dict) -> dict:
        """Router-initiated call outside any client session (recovery,
        liveness, telemetry scatter); reconnects once on a stale cached
        link.  Serialised per shard: concurrent federated queries must
        not interleave frames on the shared admin link."""
        with self._admin_locks[shard]:
            for attempt in (0, 1):
                link = self._admin_links.get(shard)
                if link is None:
                    address = self.backends[shard].address
                    if address is None:
                        raise ShardUnavailableError(f"shard {shard} is down")
                    link = _ShardLink(shard, address, self.config.link_timeout)
                    self._admin_links[shard] = link
                try:
                    return link.call(request)
                except ShardUnavailableError:
                    link.close()
                    self._admin_links.pop(shard, None)
                    if attempt == 1:
                        raise
        raise AssertionError("unreachable")

    # -- session plumbing -----------------------------------------------------

    def open_session(self) -> RouterSession:
        with self._mutex:
            session = RouterSession(self._next_session)
            self._next_session += 1
            self._sessions[session.session_id] = session
            return session

    def sessions(self) -> list[RouterSession]:
        with self._mutex:
            return sorted(self._sessions.values(),
                          key=lambda s: s.session_id)

    def _session_rows(self) -> list[dict]:
        """The router's own SYS$SESSIONS rows (shard = -1 in the
        federated view); a router session has no engine transaction of
        its own and is never queued by admission."""
        return [
            {
                "session_id": session.session_id,
                "state": "txn" if session.in_txn else "autocommit",
                "txn_id": -1,
                "statements": session.statements,
                "admitted": True,
                "last_trace_id": session.last_trace_id,
            }
            for session in self.sessions()
        ]

    def close_session(self, session: RouterSession) -> None:
        with self._mutex:
            self._sessions.pop(session.session_id, None)
        if session.in_txn:
            for shard in list(session.participants):
                try:
                    self._call_shard(session, shard, {"op": "ROLLBACK"})
                except (MoodError, ShardUnavailableError):
                    pass
            session.in_txn = False
            session.participants.clear()
        session.close_links()

    def _call_shard(self, session: RouterSession, shard: int,
                    request: dict) -> dict:
        """Send one frame over the session's link to ``shard``; a dead
        link is discarded so the next statement redials."""
        link = session.links.get(shard)
        if link is None:
            address = self.backends[shard].address
            if address is None:
                self._m_unavailable.inc()
                raise ShardUnavailableError(f"shard {shard} is down")
            link = _ShardLink(shard, address, self.config.link_timeout)
            session.links[shard] = link
        try:
            return link.call(request)
        except ShardUnavailableError:
            self._m_unavailable.inc()
            link.close()
            session.links.pop(shard, None)
            raise

    def _call_shard_raw(self, session: RouterSession, shard: int,
                        payload: bytes) -> bytes:
        """Byte-for-byte relay over the session's link to ``shard``
        (response included -- errors pass through verbatim anyway)."""
        link = session.links.get(shard)
        if link is None:
            address = self.backends[shard].address
            if address is None:
                self._m_unavailable.inc()
                raise ShardUnavailableError(f"shard {shard} is down")
            link = _ShardLink(shard, address, self.config.link_timeout)
            session.links[shard] = link
        try:
            return link.call_raw(payload)
        except ShardUnavailableError:
            self._m_unavailable.inc()
            link.close()
            session.links.pop(shard, None)
            raise

    def _call_checked(self, session: RouterSession, shard: int,
                      request: dict) -> dict:
        """Like :meth:`_call_shard` but a shard-side error response is
        raised locally as :class:`_ShardErrorResponse` (carrying the
        verbatim error payload)."""
        response = self._call_shard(session, shard, request)
        if not response.get("ok", False):
            raise _ShardErrorResponse(response)
        return response

    # -- request dispatch -----------------------------------------------------

    def handle_request(self, session: RouterSession, request: dict,
                       raw: bytes | None = None):
        """Route one decoded request; ``raw`` is its wire payload, which
        single-shard fast paths relay untouched (the return value is then
        the shard's response bytes rather than a dict)."""
        op = request.get("op")
        if op not in REQUEST_OPS:
            return error_response(describe_error(
                ProtocolError(f"unknown op {op!r}")
            ))
        if op not in _STATEMENT_OPS:
            try:
                return self._dispatch(session, op, request, raw)
            except _ShardErrorResponse as exc:
                return exc.response
            except MoodError as exc:
                return error_response(describe_error(exc))
        started = time.monotonic()
        session.pending_spans = []
        try:
            response = self._dispatch(session, op, request, raw)
        except _ShardErrorResponse as exc:
            response = exc.response
        except MoodError as exc:
            response = error_response(describe_error(exc))
        self._account_statement(session, op, request, response, started)
        return response

    def _account_statement(self, session: RouterSession, op: str,
                           request: dict, response, started: float) -> None:
        """Count and (when tracing) trace one routed statement.

        Every statement-shaped request lands here whatever its outcome,
        so failures the *router* produces -- a scatter-gather partial
        failure, SHARD_UNAVAILABLE, a routing rejection -- now count in
        ``server.statements_failed`` / ``server.errors.<CODE>`` exactly
        like a worker-side failure (they previously vanished: the router
        kept no statement counters at all)."""
        total_ms = (time.monotonic() - started) * 1e3
        code = _response_error_code(response)
        self._m_statements.inc()
        session.statements += 1
        if code is not None:
            self._m_statements_failed.inc()
            self.metrics.counter(f"server.errors.{code}").inc()
        self._m_statement_ms.observe(total_ms)
        trace_id = request.get("trace")
        if not isinstance(trace_id, str) or not trace_id:
            trace_id = server_trace_id()
        session.last_trace_id = trace_id
        if not self.config.tracing:
            session.pending_spans = []
            return
        statement = request.get("sql") or request.get("name") or op
        trace = StatementTrace(
            trace_id=trace_id,
            session_id=session.session_id,
            statement=truncate_statement(str(statement)),
            kind=op,
            status=code if code is not None else "OK",
            started_at=time.time() - total_ms / 1e3,
            total_ms=total_ms,
            spans=list(session.pending_spans),
        )
        session.pending_spans = []
        self.statement_log.record(trace)
        self.slow_log.consider(trace)

    def _dispatch(self, session: RouterSession, op: str, request: dict,
                  raw: bytes | None = None):
        if op == "PING":
            return ok_response({"pong": True, "shards": self.shard_count})
        if op == "STATS":
            return ok_response({"stats": self._stats(session)})
        if op == "METRICS":
            from repro.obs.promtext import render_cluster_prometheus

            # The merged cluster exposition: router samples unlabelled,
            # worker samples labelled shard="<i>", histogram families
            # additionally merged into shard="cluster" quantiles.
            return ok_response({"metrics": render_cluster_prometheus(
                self.metrics, self.telemetry.shard_metrics()
            )})
        if op == "TELEMETRY":
            return self._telemetry_op(request)
        if op == "RECLUSTER":
            return self._recluster_op(request)
        if op in ("PREPARE_TXN", "COMMIT_PREPARED", "ROLLBACK_PREPARED",
                  "IN_DOUBT"):
            raise ProtocolError(
                f"{op} is a router-to-shard operation, not a client one"
            )
        if op == "BEGIN":
            if session.in_txn:
                raise TransactionError(
                    f"session {session.session_id} already has an open "
                    "transaction"
                )
            session.in_txn = True
            session.participants = set()
            session.txn_trace = _optional_trace(request)
            return _synth_statement("BEGIN", "distributed transaction")
        if op == "COMMIT":
            return self._commit(session, _optional_trace(request))
        if op == "ROLLBACK":
            return self._rollback(session, _optional_trace(request))
        if op == "PREPARE":
            name = request.get("name")
            sql = request.get("sql")
            if not isinstance(name, str) or not name:
                raise ProtocolError("PREPARE needs a non-empty 'name'")
            if not isinstance(sql, str):
                raise ProtocolError("PREPARE needs a string 'sql' field")
            # Reject malformed SQL now and keep the first statement's
            # parse for per-execution routing.
            session.prepared_first[name] = parse_script(sql)[0]
            session.prepared_sql[name] = sql
            session.prepared_on[name] = set()
            return _synth_statement("PREPARE", f"prepared {name}")
        if op == "DEALLOCATE":
            name = request.get("name")
            if name not in session.prepared_sql:
                raise UnknownPreparedStatementError(
                    f"no prepared statement {name!r}"
                )
            for shard in session.prepared_on.pop(name, set()):
                try:
                    self._call_shard(
                        session, shard, {"op": "DEALLOCATE", "name": name}
                    )
                except ShardUnavailableError:
                    pass  # its session state died with it
            del session.prepared_sql[name]
            session.prepared_first.pop(name, None)
            return _synth_statement("DEALLOCATE", f"deallocated {name}")
        if op == "EXECUTE_PREPARED":
            return self._execute_prepared(session, request, raw)
        # EXECUTE / QUERY / EXPLAIN
        sql = request.get("sql")
        if not isinstance(sql, str):
            raise ProtocolError(f"{op} needs a string 'sql' field")
        if op == "EXPLAIN" and not sql.lstrip().upper().startswith("EXPLAIN"):
            sql = "EXPLAIN " + sql
        return self._execute_sql(session, op, sql, request, raw)

    def _telemetry_op(self, request: dict) -> dict:
        """The router's own TELEMETRY surface.  Without a view: its
        counters plus mergeable histogram dumps (same shape a worker
        ships).  With one: the *federated* view's rows -- what a scraper
        gets here is already cluster-wide."""
        view = request.get("view")
        if view is None:
            return ok_response({
                "counters": self.metrics.counters(),
                "histograms": self.metrics.histogram_dumps(),
            })
        if not isinstance(view, str):
            raise ProtocolError("TELEMETRY 'view' must be a string")
        self._refresh_liveness()
        views = self._viewdb.kernel.system_views
        rows = views.rows(view) if views.has(view) else []
        return ok_response({"rows": [encode_value(row) for row in rows]})

    def _recluster_op(self, request: dict) -> dict:
        """Broadcast a dynamic-clustering command: every shard runs its
        own reclusterer over its own co-access graph (objects never move
        *between* shards here -- placement is a per-store concern).  A
        ``shard`` hint narrows the command to one worker.  Per-shard
        answers come back keyed by shard; a dead shard reports an
        ``error`` entry rather than failing the whole command."""
        hint = self._hint_shard(request)
        shards = ([hint] if hint is not None
                  else list(range(self.shard_count)))
        forward = {"op": "RECLUSTER"}
        for key in ("action", "interval"):
            if key in request:
                forward[key] = request[key]
        results: dict[str, dict] = {}
        for shard in shards:
            try:
                response = self._admin_call(shard, forward)
            except ShardUnavailableError as exc:
                results[str(shard)] = {"ok": False, "error": str(exc)}
                continue
            results[str(shard)] = response
        return ok_response({"shards": results})

    # -- statement routing ----------------------------------------------------

    def _hint_shard(self, request: dict) -> int | None:
        """Resolve a request's routing hint to a shard index, if any."""
        if "shard" in request and request["shard"] is not None:
            shard = request["shard"]
            if not isinstance(shard, int) or not 0 <= shard < self.shard_count:
                raise ProtocolError(
                    f"'shard' must be an integer in 0..{self.shard_count - 1}"
                )
            return shard
        if "shard_key" in request and request["shard_key"] is not None:
            return shard_of_key(request["shard_key"], self.shard_count)
        return None

    def _route(self, statement, hint: int | None):
        """Classify one parsed statement: ``("shard", i)``, ``("broadcast",)``,
        ``("scatter",)``, ``("write_all",)`` or ``("sys",)``."""
        if isinstance(statement, _BROADCAST_STATEMENTS):
            return ("broadcast",)
        if isinstance(statement, SelectQuery):
            sys_views = {r.class_name.upper() for r in statement.ranges
                         if r.class_name.upper().startswith("SYS$")}
            if sys_views:
                # A hinted SYS$ query drills into that one shard's local
                # view (no shard column); unhinted -- or naming a view
                # only the router can answer -- it runs against the
                # router's federated views, whose suppliers scatter the
                # TELEMETRY verb themselves.
                if hint is not None and not (sys_views & ROUTER_ONLY_VIEWS):
                    return ("shard", hint)
                return ("sys",)
            if hint is not None:
                return ("shard", hint)
            return ("scatter",)
        if isinstance(statement, ExplainStmt):
            if hint is not None:
                return ("shard", hint)
            return ("scatter",)
        if isinstance(statement, NewObject):
            if hint is not None:
                return ("shard", hint)
            with self._mutex:
                shard = self._round_robin % self.shard_count
                self._round_robin += 1
            return ("shard", shard)
        if isinstance(statement, (UpdateStmt, DeleteStmt)):
            if hint is not None:
                return ("shard", hint)
            return ("write_all",)
        # PREPARE/EXECUTE/DEALLOCATE inside SQL text, ANALYZE handled above;
        # anything else is session-scoped enough to pin to one shard.
        if hint is not None:
            return ("shard", hint)
        return ("broadcast",)

    def _execute_sql(self, session: RouterSession, op: str, sql: str,
                     request: dict, raw: bytes | None = None):
        hint = self._hint_shard(request)
        if hint is not None and not _may_need_fanout(sql):
            # Hinted hot path: every statement kind left after the
            # textual screen routes to the hinted shard, so skip the
            # router-side parse entirely and relay the frame verbatim --
            # byte-for-byte when the wire payload needs no rewriting.
            if raw is not None and sql is request.get("sql"):
                return self._forward_raw(session, hint, raw)
            return self._forward(session, hint, dict(request, sql=sql))
        statements = parse_script(sql)
        routes = [self._route(stmt, hint) for stmt in statements]
        single = {r[1] for r in routes if r[0] == "shard"}
        if len(single) == 1 and all(r[0] == "shard" for r in routes):
            # Fast path: the whole script lives on one shard -- relay the
            # frame verbatim (hints and trace ids ride along; workers
            # ignore fields they don't know).
            (shard,) = single
            return self._forward(session, shard, dict(request, sql=sql))
        texts = _split_script(sql, len(statements))
        results = []
        trace = request.get("trace")
        for text, statement, route in zip(texts, statements, routes):
            frame = {"op": "EXECUTE", "sql": text}
            if trace is not None:
                frame["trace"] = trace
            if route[0] == "shard":
                response = self._forward(session, route[1], frame)
                results.extend(response.get("results", []))
            elif route[0] == "sys":
                self._refresh_liveness()
                result = self._viewdb.execute(text)
                results.append(_encode_result(result))
            elif route[0] == "scatter":
                results.append(
                    self._scatter_query(session, frame, statement)
                )
            elif route[0] == "broadcast":
                results.append(self._broadcast(session, frame))
            elif route[0] == "write_all":
                results.append(self._broadcast_write(session, frame))
        return ok_response({"results": results, "trace": trace})

    def _forward(self, session: RouterSession, shard: int,
                 frame: dict) -> dict:
        """Single-shard relay, opening the shard's transaction branch
        first when the session is inside a distributed transaction."""
        self._ensure_participant(session, shard)
        response = self._call_checked(session, shard, frame)
        self._m_forwarded.inc()
        with self._mutex:
            self._per_shard_statements[shard] += 1
        return response

    def _forward_raw(self, session: RouterSession, shard: int,
                     payload: bytes) -> bytes:
        """Single-shard relay of the client's wire bytes."""
        self._ensure_participant(session, shard)
        response = self._call_shard_raw(session, shard, payload)
        self._m_forwarded.inc()
        self._m_raw_relays.inc()
        with self._mutex:
            self._per_shard_statements[shard] += 1
        return response

    def _ensure_participant(self, session: RouterSession, shard: int) -> None:
        if session.in_txn and shard not in session.participants:
            self._call_checked(session, shard, {"op": "BEGIN"})
            session.participants.add(shard)

    def _scatter_query(self, session: RouterSession, frame: dict,
                       statement) -> dict:
        """Run the query on every shard and merge: rows concatenate, and
        an ORDER BY whose keys appear in the output columns is re-applied
        to the merged set (other orderings stay per-shard)."""
        self._m_scatter.inc()
        merged: dict | None = None
        reports = []
        for shard in range(self.shard_count):
            self._ensure_participant(session, shard)
            response = self._call_checked(session, shard, frame)
            with self._mutex:
                self._per_shard_statements[shard] += 1
            for result in response.get("results", []):
                if result.get("type") == "explain":
                    reports.append(
                        f"-- shard {shard} --\n{result.get('report', '')}"
                    )
                if merged is None:
                    merged = dict(result)
                    merged["rows"] = list(result.get("rows", []))
                else:
                    merged["rows"].extend(result.get("rows", []))
        if merged is None:
            raise ShardUnavailableError("no shard answered the query")
        if reports:
            merged["report"] = "\n".join(reports)
        order_by = getattr(statement, "order_by", ())
        if isinstance(statement, ExplainStmt):
            order_by = statement.query.order_by
        self._merge_order(merged, order_by)
        return merged

    @staticmethod
    def _merge_order(merged: dict, order_by) -> None:
        columns = merged.get("columns", [])
        if not order_by or not columns:
            return
        indexes = []
        for item in order_by:
            name = str(item.expr)
            if name not in columns:
                return  # key not in the output; keep per-shard order
            indexes.append((columns.index(name), item.ascending))
        rows = merged.get("rows", [])
        try:
            for index, ascending in reversed(indexes):
                rows.sort(key=lambda row: row[index], reverse=not ascending)
        except TypeError:
            pass  # mixed/unorderable encoded values; keep per-shard order

    def _broadcast(self, session: RouterSession, frame: dict) -> dict:
        """DDL/ANALYZE on every shard (every shard holds the schema).
        Workers bump their own schema versions, which stamps their plan
        caches cold -- the cross-shard plan-invalidation path."""
        self._m_broadcasts.inc()
        first: dict | None = None
        for shard in range(self.shard_count):
            self._ensure_participant(session, shard)
            response = self._call_checked(session, shard, frame)
            with self._mutex:
                self._per_shard_statements[shard] += 1
            if first is None:
                results = response.get("results", [])
                first = results[0] if results else _synth_result("BROADCAST")
        return first

    def _broadcast_write(self, session: RouterSession, frame: dict) -> dict:
        """An unhinted write touches every shard.  Inside an explicit
        transaction the branches simply join it (2PC finishes the job at
        COMMIT); in autocommit the router wraps the broadcast in an
        internal distributed transaction so the write stays atomic."""
        self._m_broadcasts.inc()
        if session.in_txn:
            count = 0
            first = None
            for shard in range(self.shard_count):
                self._ensure_participant(session, shard)
                response = self._call_checked(session, shard, frame)
                with self._mutex:
                    self._per_shard_statements[shard] += 1
                results = response.get("results", [])
                if results:
                    count += results[0].get("count") or 0
                    first = first or results[0]
            merged = dict(first or _synth_result("WRITE"))
            merged["count"] = count
            return merged
        session.in_txn = True
        session.participants = set()
        try:
            merged = self._broadcast_write(session, frame)
        except Exception:
            self._rollback(session, frame.get("trace"))
            raise
        self._commit(session, frame.get("trace"))
        return merged

    def _execute_prepared(self, session: RouterSession, request: dict,
                          raw: bytes | None = None):
        name = request.get("name")
        if name not in session.prepared_sql:
            raise UnknownPreparedStatementError(
                f"no prepared statement {name!r}"
            )
        sql = session.prepared_sql[name]
        hint = self._hint_shard(request)
        route = self._route(session.prepared_first[name], hint)
        if (raw is not None and route[0] == "shard"
                and route[1] in session.prepared_on[name]):
            # Already propagated to the target shard: relay the client's
            # bytes straight through.
            return self._forward_raw(session, route[1], raw)
        frame = {
            "op": "EXECUTE_PREPARED", "name": name,
            "params": request.get("params", []),
        }
        if request.get("trace") is not None:
            frame["trace"] = request["trace"]
        if route[0] == "shard":
            shards = [route[1]]
        elif route[0] in ("scatter", "broadcast", "write_all"):
            shards = list(range(self.shard_count))
        else:
            raise ProtocolError(
                "EXECUTE_PREPARED cannot target SYS$SHARDS"
            )
        merged: dict | None = None
        for shard in shards:
            self._ensure_participant(session, shard)
            if shard not in session.prepared_on[name]:
                self._call_checked(
                    session, shard,
                    {"op": "PREPARE", "name": name, "sql": sql},
                )
                session.prepared_on[name].add(shard)
            response = self._call_checked(session, shard, frame)
            self._m_forwarded.inc()
            with self._mutex:
                self._per_shard_statements[shard] += 1
            if len(shards) == 1:
                return response
            for result in response.get("results", []):
                if merged is None:
                    merged = dict(result)
                    merged["rows"] = list(result.get("rows", []))
                elif "rows" in merged:
                    merged["rows"].extend(result.get("rows", []))
        return ok_response({
            "results": [merged or _synth_result("EXECUTE")],
            "trace": request.get("trace"),
        })

    # -- distributed commit ---------------------------------------------------

    def _rollback(self, session: RouterSession,
                  trace: str | None = None) -> dict:
        if not session.in_txn:
            raise TransactionError("no open transaction to roll back")
        session.in_txn = False
        session.txn_trace = None
        participants, session.participants = session.participants, set()
        frame = {"op": "ROLLBACK"}
        if trace is not None:
            frame["trace"] = trace
        failed = 0
        for shard in sorted(participants):
            try:
                self._call_shard(session, shard, frame)
            except (ShardUnavailableError, _ShardErrorResponse):
                failed += 1  # its branch dies with its session anyway
        return _synth_statement(
            "ROLLBACK",
            f"distributed rollback across {len(participants)} shard(s)",
        )

    def _commit(self, session: RouterSession,
                trace: str | None = None) -> dict:
        if not session.in_txn:
            raise TransactionError("no open transaction to commit")
        session.in_txn = False
        if trace is None:
            trace = session.txn_trace
        session.txn_trace = None
        participants = sorted(session.participants)
        session.participants = set()
        if not participants:
            return _synth_statement("COMMIT", "empty distributed transaction")
        if len(participants) == 1:
            # Single-shard transaction: an ordinary one-phase commit.
            frame = {"op": "COMMIT"}
            if trace is not None:
                frame["trace"] = trace
            return self._call_checked(session, participants[0], frame)
        return self._commit_two_phase(session, participants, trace)

    def _commit_two_phase(self, session: RouterSession,
                          participants: list[int],
                          trace: str | None = None) -> dict:
        """Presumed-abort 2PC, now fully observable: the transaction's
        trace id rides every PREPARE_TXN / phase-2 frame (each worker
        records its branch under the same trace), every lifecycle point
        lands in the ``twopc.*`` journal events and latency histograms,
        and the whole protocol leaves a span tree on the COMMIT trace."""
        gid = f"rtx-{uuid.uuid4().hex}"
        commit_started = time.monotonic()
        spans: list[Span] = []
        prepared: list[int] = []
        prepare_frame = {"op": "PREPARE_TXN", "gid": gid}
        if trace is not None:
            prepare_frame["trace"] = trace
        for shard in participants:
            vote_started = time.monotonic()
            try:
                self._call_checked(session, shard, prepare_frame)
            except _ShardErrorResponse as exc:
                # The shard said no (its branch was victimised, timed
                # out, ...): abort everywhere, pass its verdict through.
                self._twopc_mark("prepare", gid, vote_started, spans, trace,
                                 shard=shard, vote="no")
                self._resolve_abort(session, gid, prepared, participants,
                                    voted_no=shard, trace=trace, spans=spans)
                self._twopc_finish(session, gid, commit_started, spans,
                                   trace, verdict="ABORT",
                                   shards=len(participants))
                return exc.response
            except ShardUnavailableError:
                # The shard vanished mid-prepare: we cannot know whether
                # its vote hit the log, so log an ABORT decision for the
                # whole gid -- recovery (or the sweep when the shard
                # returns) resolves its branch by presumed abort.
                self._twopc_mark("prepare", gid, vote_started, spans, trace,
                                 shard=shard, vote="unavailable")
                self._m_2pc_in_doubt.inc()
                decision_started = time.monotonic()
                self.txlog.log_decision(gid, "ABORT", participants)
                self._twopc_mark("decision", gid, decision_started, spans,
                                 trace, verdict="ABORT")
                if self._resolve_abort(session, gid, prepared, participants,
                                       voted_no=None, trace=trace,
                                       spans=spans):
                    self.txlog.log_done(gid)
                self._twopc_finish(session, gid, commit_started, spans,
                                   trace, verdict="ABORT",
                                   shards=len(participants))
                raise TransactionInDoubtError(
                    f"shard {shard} vanished during prepare of {gid}; "
                    "presumed abort"
                ) from None
            prepared.append(shard)
            self._twopc_mark("prepare", gid, vote_started, spans, trace,
                             shard=shard, vote="yes")
        self._failpoint("before_decision")
        decision_started = time.monotonic()
        self.txlog.log_decision(gid, "COMMIT", participants)
        self._twopc_mark("decision", gid, decision_started, spans, trace,
                         verdict="COMMIT")
        self._m_2pc_commits.inc()
        self._failpoint("after_decision")
        all_acked = True
        commit_frame = {"op": "COMMIT_PREPARED", "gid": gid}
        if trace is not None:
            commit_frame["trace"] = trace
        for shard in participants:
            phase2_started = time.monotonic()
            try:
                self._call_shard(session, shard, commit_frame)
                self._twopc_mark("phase2", gid, phase2_started, spans, trace,
                                 shard=shard, verb="COMMIT_PREPARED",
                                 acked=True)
            except ShardUnavailableError:
                all_acked = False  # recovery re-drives from the txlog
                self._twopc_mark("phase2", gid, phase2_started, spans, trace,
                                 shard=shard, verb="COMMIT_PREPARED",
                                 acked=False)
        if all_acked:
            self.txlog.log_done(gid)
        self._twopc_finish(session, gid, commit_started, spans, trace,
                           verdict="COMMIT", shards=len(participants))
        return _synth_statement(
            "COMMIT",
            f"two-phase commit {gid} across {len(participants)} shards",
        )

    def _resolve_abort(self, session: RouterSession, gid: str,
                       prepared: list[int], participants: list[int],
                       voted_no: int | None,
                       trace: str | None = None,
                       spans: list | None = None) -> bool:
        """Best-effort immediate abort of every branch after a failed
        prepare round; unreachable branches are covered by presumed
        abort.  Returns whether every branch acknowledged."""
        self._m_2pc_aborts.inc()
        all_acked = True
        for shard in participants:
            if shard == voted_no:
                continue  # its branch already rolled back with the error
            if shard in prepared:
                frame = {"op": "ROLLBACK_PREPARED", "gid": gid}
            else:
                frame = {"op": "ROLLBACK"}
            if trace is not None:
                frame["trace"] = trace
            phase2_started = time.monotonic()
            try:
                self._call_shard(session, shard, frame)
                acked = True
            except (ShardUnavailableError, _ShardErrorResponse):
                all_acked = False
                acked = False
            if spans is not None:
                self._twopc_mark("phase2", gid, phase2_started, spans,
                                 trace, shard=shard, verb=frame["op"],
                                 acked=acked)
        return all_acked

    def _twopc_mark(self, phase: str, gid: str, started: float,
                    spans: list, trace: str | None, **fields) -> None:
        """One 2PC lifecycle point: observe its latency histogram and --
        when tracing -- journal a ``twopc.<phase>`` event and open a span
        in the commit's span tree."""
        ms = (time.monotonic() - started) * 1e3
        self._m_twopc_ms[phase].observe(ms)
        if not self.config.tracing:
            return
        event_fields = dict(fields)
        if trace is not None:
            event_fields["trace_id"] = trace
        self.events.emit(f"twopc.{phase}", gid=gid, ms=round(ms, 3),
                         **event_fields)
        detail = " ".join(
            [gid] + [f"{k}={v}" for k, v in sorted(fields.items())]
        )
        spans.append(Span(operator=f"2PC:{phase.upper()}", detail=detail,
                          wall_ms=ms, trace_id=trace))

    def _twopc_finish(self, session: RouterSession, gid: str,
                      started: float, spans: list, trace: str | None,
                      **fields) -> None:
        """Close the protocol: total latency, terminal event, and the
        assembled span tree handed to the COMMIT statement's trace."""
        self._twopc_mark("total", gid, started, spans, trace, **fields)
        if not self.config.tracing or not spans:
            return
        total_ms = (time.monotonic() - started) * 1e3
        root = Span(operator="2PC", detail=gid, wall_ms=total_ms,
                    children=list(spans), trace_id=trace)
        session.pending_spans.append(root)

    def _failpoint(self, name: str) -> None:
        hook = self.failpoints.get(name)
        if hook is not None:
            hook()

    # -- observability --------------------------------------------------------

    def _refresh_liveness(self) -> None:
        for backend in self.backends:
            _ = backend.alive  # ProcessShard.alive polls the process

    def _shard_rows(self) -> list[dict]:
        rows = []
        with self._mutex:
            counts = list(self._per_shard_statements)
        for i, backend in enumerate(self.backends):
            address = backend.address or ("", 0)
            rows.append({
                "shard": i,
                "host": address[0],
                "port": address[1],
                "alive": bool(backend.alive),
                "page_base": i * SHARD_PAGE_SPAN,
                "statements": counts[i],
            })
        return rows

    def _stats(self, session: RouterSession) -> dict:
        """Session + cluster snapshot.  The satellite fix: per-shard
        latency distributions now federate into this payload -- every
        histogram family any shard reports, bucket-merged cluster-wide
        under ``histograms``, plus per-shard summaries of the headline
        families under ``per_shard``."""
        per_shard = self.telemetry.shard_metrics()
        families: dict[str, list[dict]] = {}
        for _, dumps in per_shard.values():
            for name, dump in dumps.items():
                families.setdefault(name, []).append(dump)
        histograms = {}
        for name, dumps in sorted(families.items()):
            combined = merge_histogram_dumps(dumps)
            if combined is not None:
                histograms[name] = summarize_dump(combined)
        return {
            "session_id": session.session_id,
            "in_transaction": session.in_txn,
            "participants": sorted(session.participants),
            "shards": self._shard_rows(),
            "pending_decisions": len(self.txlog.pending()),
            "metrics": {
                name: value
                for name, value in self.metrics.snapshot().items()
                if name.startswith(("shard.", "server.", "twopc.",
                                    "cluster.", "shard_health."))
            },
            "histograms": histograms,
            "per_shard": {
                str(shard): {
                    name: summarize_dump(dump)
                    for name, dump in dumps.items()
                    if name in STATS_HISTOGRAMS
                }
                for shard, (_, dumps) in sorted(per_shard.items())
            },
        }


class _ShardErrorResponse(Exception):
    """A shard answered with an error frame; carry it through verbatim."""

    def __init__(self, response: dict):
        super().__init__(response.get("error", {}).get("message", "error"))
        self.response = response


#: Keywords whose presence means a hinted script may still need fan-out
#: (DDL/ANALYZE broadcast, SYS$ views served locally or federated).  A
#: false positive (say, the word inside a string literal) only costs the
#: parse.
_FANOUT_WORDS = ("CREATE", "ALTER", "DROP", "ANALYZE", "SYS$")


def _may_need_fanout(sql: str) -> bool:
    upper = sql.upper()
    return any(word in upper for word in _FANOUT_WORDS)


#: Client ops counted (and traced) as statements by the router;
#: PING/STATS/METRICS/TELEMETRY are observability plumbing, not load.
_STATEMENT_OPS = frozenset({
    "EXECUTE", "QUERY", "EXPLAIN", "EXECUTE_PREPARED",
    "BEGIN", "COMMIT", "ROLLBACK", "PREPARE", "DEALLOCATE",
})


def _optional_trace(request: dict) -> str | None:
    trace = request.get("trace")
    return trace if isinstance(trace, str) and trace else None


def _response_error_code(response) -> str | None:
    """The stable error code of a failed response (None on success).

    Raw relayed bytes are only JSON-decoded when the cheap prefix test
    says the shard reported a failure: frames serialize with compact
    separators and ``ok`` first, so every success frame starts
    ``b'{"ok":true'`` -- the fast path stays a pure byte relay."""
    if isinstance(response, bytes):
        if not response.startswith(b'{"ok":false'):
            return None
        try:
            response = decode_frame(response)
        except ProtocolError:
            return "PROTOCOL"
    if response.get("ok", False):
        return None
    return (response.get("error") or {}).get("code", "MOOD")


def _synth_result(kind: str, detail: str = "", count=None) -> dict:
    return {"type": "statement", "kind": kind, "detail": detail,
            "count": count, "code": None, "object": None}


def _synth_statement(kind: str, detail: str) -> dict:
    return ok_response({"results": [_synth_result(kind, detail)]})


def _split_script(sql: str, expected: int) -> list[str]:
    """Split a ';'-separated script into statement texts (quote-aware).
    The router needs per-statement texts to route a mixed script; when
    the split disagrees with the parser's statement count the script is
    rejected rather than misrouted."""
    parts: list[str] = []
    current: list[str] = []
    in_string = False
    for ch in sql:
        if ch == "'":
            in_string = not in_string
            current.append(ch)
        elif ch == ";" and not in_string:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    parts.append("".join(current))
    texts = [part.strip() for part in parts if part.strip()]
    if len(texts) != expected:
        raise ProtocolError(
            "cannot split this script for cross-shard routing; "
            "run its statements separately or add a shard hint"
        )
    return texts


# --------------------------------------------------------------------------
# socketserver plumbing
# --------------------------------------------------------------------------

class _RouterTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address, handler, router: ShardedServer):
        self.router = router
        super().__init__(address, handler)


class _RouterHandler(socketserver.BaseRequestHandler):
    """One thread per client connection: a RouterSession + frame loop."""

    def handle(self) -> None:
        router: ShardedServer = self.server.router
        session = router.open_session()
        with router._conn_mutex:
            router._conn_socks.add(self.request)
        try:
            while True:
                try:
                    payload = recv_frame_bytes(self.request)
                    request = (decode_frame(payload)
                               if payload is not None else None)
                except ProtocolError as exc:
                    send_frame(
                        self.request, error_response(describe_error(exc))
                    )
                    return
                if request is None or request.get("op") == "CLOSE":
                    if request is not None:
                        send_frame(self.request, ok_response({"bye": True}))
                    return
                response = router.handle_request(session, request, payload)
                if isinstance(response, bytes):
                    send_frame_bytes(self.request, response)
                else:
                    send_frame(self.request, response)
        except (ConnectionError, BrokenPipeError, OSError):
            pass
        finally:
            with router._conn_mutex:
                router._conn_socks.discard(self.request)
            if router._crashed:
                # A crashed coordinator sends no rollbacks; its shard
                # links just die (workers abort the active branches).
                session.close_links()
            else:
                router.close_session(session)
