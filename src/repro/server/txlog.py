"""The router's two-phase-commit decision log (presumed abort).

A cross-shard transaction commits in two phases: every participant votes
by forcing a ``PREPARE`` record into its own WAL, then the coordinator
*decides*.  The decision is the commit point, so it must be durable
before any participant learns it -- this log is that stable storage.

Presumed abort keeps the log small: only COMMIT decisions strictly need
logging (a recovering participant that finds no decision for its gid may
presume abort), but we log ABORT decisions too so recovery can actively
drain them instead of waiting for participants to ask.  A ``DONE``
record retires a decision once every participant acknowledged phase 2;
recovery re-drives decisions that have no DONE.

The log is a JSON-lines file when given a path (one fsync per decision,
mirroring a log on a separate stable device) and an in-memory list
otherwise -- the in-memory form survives a *simulated* router crash
because tests hand the same object to the restarted router, exactly as
the simulated disk's platters survive ``crash()``.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass


@dataclass(frozen=True)
class Decision:
    """One logged commit/abort decision and its participant set."""

    gid: str
    verdict: str               # "COMMIT" or "ABORT"
    shards: tuple[int, ...]    # participants awaiting the decision


class CoordinatorLog:
    """Append-only decision log with presumed-abort recovery scanning."""

    def __init__(self, path: str | None = None):
        self._mutex = threading.Lock()
        self._records: list[dict] = []
        self._path = path
        if path is not None and os.path.exists(path):
            with open(path, encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if line:
                        self._records.append(json.loads(line))

    def _append(self, record: dict) -> None:
        with self._mutex:
            self._records.append(record)
            if self._path is not None:
                with open(self._path, "a", encoding="utf-8") as handle:
                    handle.write(json.dumps(record) + "\n")
                    handle.flush()
                    os.fsync(handle.fileno())

    def log_decision(self, gid: str, verdict: str, shards) -> None:
        """Force the commit point: after this returns, the outcome of
        ``gid`` is ``verdict`` no matter who crashes."""
        if verdict not in ("COMMIT", "ABORT"):
            raise ValueError(f"bad verdict {verdict!r}")
        self._append({
            "kind": "DECISION", "gid": gid, "verdict": verdict,
            "shards": sorted(int(s) for s in shards),
        })

    def log_done(self, gid: str) -> None:
        """Every participant has acknowledged phase 2; forget ``gid``."""
        self._append({"kind": "DONE", "gid": gid})

    def pending(self) -> list[Decision]:
        """Decisions with no DONE record, in log order -- the in-doubt
        drain list for coordinator restart recovery."""
        with self._mutex:
            records = list(self._records)
        decisions: dict[str, Decision] = {}
        for record in records:
            if record["kind"] == "DECISION":
                decisions[record["gid"]] = Decision(
                    record["gid"], record["verdict"],
                    tuple(record["shards"]),
                )
            elif record["kind"] == "DONE":
                decisions.pop(record["gid"], None)
        return list(decisions.values())

    def __len__(self) -> int:
        with self._mutex:
            return len(self._records)
