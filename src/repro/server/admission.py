"""Admission control: a bounded statement gate in front of the kernel.

The paper's MOOD kernel serves multiple interface processes from one
server; a reproduction that accepts unbounded concurrent statements would
let a burst of clients convoy on the engine latch and time each other out.
The controller caps the number of statements *inside* the engine at
``max_active`` and parks at most ``max_queue`` more on a condition
variable.  Anything beyond that is refused immediately with
``SERVER_BUSY`` -- a retryable error, so a well-behaved client backs off
and the queue never grows without bound (load shedding, not load hiding).

Metrics land in the shared registry under ``server.admission.*``:
admitted / rejected / timeouts counters and a ``queue_wait_ms`` histogram.
"""

from __future__ import annotations

import threading
import time

from repro.core.errors import ServerBusyError


class AdmissionController:
    """Counting gate: ``max_active`` statements in, ``max_queue`` waiting."""

    def __init__(
        self,
        max_active: int,
        max_queue: int,
        metrics_component=None,
        events=None,
    ):
        if max_active < 1:
            raise ValueError("admission control needs max_active >= 1")
        if max_queue < 0:
            raise ValueError("admission control needs max_queue >= 0")
        self.max_active = max_active
        self.max_queue = max_queue
        self._events = events
        self._mutex = threading.Lock()
        self._slot_freed = threading.Condition(self._mutex)
        self._active = 0
        self._queued = 0
        self._admitted = None
        self._rejected = None
        self._timeouts = None
        self._queue_wait_ms = None
        if metrics_component is not None:
            self._admitted = metrics_component.counter("admitted")
            self._rejected = metrics_component.counter("rejected")
            self._timeouts = metrics_component.counter("timeouts")
            self._queue_wait_ms = metrics_component.histogram("queue_wait_ms")

    # -- gate ----------------------------------------------------------------

    def __enter__(self):
        self.admit()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def admit(self, timeout: float | None = None) -> float:
        """Take a statement slot, queueing up to ``timeout`` seconds.

        Returns the milliseconds spent queued (0.0 on immediate entry) so
        the caller can attribute queue wait in the statement's trace.
        Raises :class:`ServerBusyError` (retryable) when the wait queue is
        already full or the queue wait exceeds the timeout.
        """
        started = time.monotonic()
        with self._mutex:
            if self._active < self.max_active:
                self._active += 1
                self._note_admitted(started)
                return 0.0
            if self._queued >= self.max_queue:
                if self._rejected is not None:
                    self._rejected.inc()
                self._note_rejected("queue_full")
                raise ServerBusyError(
                    f"server at capacity ({self.max_active} active, "
                    f"{self._queued} queued)"
                )
            self._queued += 1
            try:
                deadline = None if timeout is None else started + timeout
                while self._active >= self.max_active:
                    remaining = (
                        None if deadline is None
                        else deadline - time.monotonic()
                    )
                    if remaining is not None and remaining <= 0:
                        if self._timeouts is not None:
                            self._timeouts.inc()
                        self._note_rejected("queue_timeout")
                        raise ServerBusyError(
                            f"queued {timeout:.1f}s without an execution "
                            "slot freeing up"
                        )
                    self._slot_freed.wait(remaining)
                self._active += 1
                self._note_admitted(started)
            finally:
                self._queued -= 1
            return (time.monotonic() - started) * 1e3

    def _note_rejected(self, reason: str) -> None:
        if self._events is not None:
            self._events.emit(
                "admission.rejected",
                reason=reason, active=self._active, queued=self._queued,
            )

    def release(self) -> None:
        """Return a slot; wakes one queued statement."""
        with self._mutex:
            self._active -= 1
            self._slot_freed.notify()

    def _note_admitted(self, started: float) -> None:
        if self._admitted is not None:
            self._admitted.inc()
        if self._queue_wait_ms is not None:
            self._queue_wait_ms.observe((time.monotonic() - started) * 1e3)

    # -- introspection -------------------------------------------------------

    def active(self) -> int:
        with self._mutex:
            return self._active

    def queue_depth(self) -> int:
        with self._mutex:
            return self._queued
