"""Shard workers: one engine per OID-space partition.

A *shard* is a complete MOOD engine -- its own storage manager, WAL,
buffer pool, lock table, object cache, plan cache and
:class:`~repro.server.server.MoodServer` -- owning a disjoint slice of
the OID space (``page_base = shard_index * SHARD_PAGE_SPAN``, see
:mod:`repro.storage.oid`).  The router talks to every shard over the
ordinary frame protocol, so a shard is just a MOOD server that happens
to allocate pages from its own range.

Two backends implement the same small surface (``shard_index``,
``address``, ``start``, ``stop``):

* :class:`ProcessShard` runs the engine in a ``multiprocessing`` worker
  (spawn context) -- the scale-out deployment.  Each worker binds port 0
  and reports the OS-assigned address back through a pipe.
* :class:`LocalShard` runs the engine in-process.  Because the simulated
  disk and WAL live in memory, only this backend can *simulate* a shard
  crash and restart with its data intact (``crash()`` / ``restart()``),
  so the 2PC recovery tests use it; killing a ProcessShard loses the
  shard's universe along with the process.
"""

from __future__ import annotations

import multiprocessing
import threading

from repro.core.errors import MoodError, ShardUnavailableError
from repro.core.database import MoodDatabase
from repro.server.server import MoodServer, ServerConfig
from repro.storage.oid import shard_page_base

#: Seconds to wait for a worker process to come up / shut down.
WORKER_START_TIMEOUT = 60.0
WORKER_STOP_TIMEOUT = 15.0


def _build_database(shard_index: int, shard_count: int, options: dict) -> MoodDatabase:
    db = MoodDatabase(
        buffer_capacity=options.get("buffer_capacity", 512),
        page_base=shard_page_base(shard_index),
    )
    if options.get("build_paper"):
        from repro.bench.paperdb import build_paper_shard

        build_paper_shard(
            db, shard_index, shard_count,
            scale=options.get("scale", 100),
            seed=options.get("seed", 42),
        )
    if options.get("analyze"):
        db.analyze()
    return db


def _server_config(options: dict) -> ServerConfig:
    config = ServerConfig(port=0)
    for field in ("max_workers", "max_queue", "admission_timeout",
                  "statement_timeout", "slow_query_ms", "tracing",
                  "recluster_interval"):
        if field in options:
            setattr(config, field, options[field])
    return config


def worker_main(
    shard_index: int, shard_count: int, options: dict, conn
) -> None:
    """Worker-process entry point (top level, so spawn can import it).

    Builds the shard's engine, serves on an OS-assigned port, reports
    ``("ready", host, port)`` down the pipe, then blocks on the pipe for
    a ``"stop"`` command.  A hard kill is delivered by the parent as
    ``Process.terminate`` -- no cleanup runs, which is the point.
    """
    try:
        db = _build_database(shard_index, shard_count, options)
        server = MoodServer(db, _server_config(options))
        host, port = server.start()
    except Exception as exc:  # surface the failure to the parent
        conn.send(("error", repr(exc)))
        return
    conn.send(("ready", host, port))
    while True:
        message = conn.recv()
        if message == "stop":
            server.stop()
            conn.send(("stopped",))
            return


class ProcessShard:
    """One shard engine in a dedicated worker process."""

    def __init__(self, shard_index: int, shard_count: int,
                 options: dict | None = None):
        self.shard_index = shard_index
        self.shard_count = shard_count
        self.options = dict(options or {})
        self._process: multiprocessing.Process | None = None
        self._conn = None
        self.address: tuple[str, int] | None = None

    def start(self) -> tuple[str, int]:
        if self._process is not None:
            raise MoodError(f"shard {self.shard_index} already started")
        ctx = multiprocessing.get_context("spawn")
        parent_conn, child_conn = ctx.Pipe()
        self._process = ctx.Process(
            target=worker_main,
            args=(self.shard_index, self.shard_count, self.options,
                  child_conn),
            name=f"mood-shard-{self.shard_index}",
            daemon=True,
        )
        self._process.start()
        self._conn = parent_conn
        if not parent_conn.poll(WORKER_START_TIMEOUT):
            self.kill()
            raise ShardUnavailableError(
                f"shard {self.shard_index} did not report ready"
            )
        message = parent_conn.recv()
        if message[0] != "ready":
            self.kill()
            raise ShardUnavailableError(
                f"shard {self.shard_index} failed to start: {message[1]}"
            )
        self.address = (message[1], message[2])
        return self.address

    def stop(self) -> None:
        """Graceful shutdown (drain, rollback, checkpoint) then join."""
        if self._process is None:
            return
        try:
            self._conn.send("stop")
            if self._conn.poll(WORKER_STOP_TIMEOUT):
                self._conn.recv()
        except (BrokenPipeError, EOFError, OSError):
            pass
        self._process.join(timeout=WORKER_STOP_TIMEOUT)
        if self._process.is_alive():
            self._process.terminate()
            self._process.join(timeout=5)
        self._process = None
        self.address = None

    def kill(self) -> None:
        """Hard kill: the worker gets no chance to clean up."""
        if self._process is None:
            return
        self._process.terminate()
        self._process.join(timeout=5)
        self._process = None
        self.address = None

    @property
    def alive(self) -> bool:
        return self._process is not None and self._process.is_alive()


class LocalShard:
    """One shard engine in-process, with crash/restart simulation.

    The engine's simulated disk and WAL are ordinary objects in this
    process, so :meth:`crash` can lose exactly the volatile state (buffer
    pool, lock table, live transactions, the listener) while the platters
    and the log survive for :meth:`restart` -- the only way to exercise a
    shard's restart recovery, in-doubt resurrection included.
    """

    def __init__(self, shard_index: int, shard_count: int,
                 options: dict | None = None):
        self.shard_index = shard_index
        self.shard_count = shard_count
        self.options = dict(options or {})
        self.db: MoodDatabase | None = None
        self.server: MoodServer | None = None
        self.address: tuple[str, int] | None = None
        self._mutex = threading.Lock()

    def start(self) -> tuple[str, int]:
        with self._mutex:
            if self.server is not None:
                raise MoodError(f"shard {self.shard_index} already started")
            if self.db is None:
                self.db = _build_database(
                    self.shard_index, self.shard_count, self.options
                )
            self.server = MoodServer(self.db, _server_config(self.options))
            self.address = self.server.start()
            return self.address

    def stop(self) -> None:
        with self._mutex:
            if self.server is not None:
                self.server.stop()
                self.server = None
                self.address = None

    def crash(self) -> None:
        """Simulate a worker crash: the listener dies mid-flight and all
        volatile engine state is lost; log and platters survive."""
        with self._mutex:
            if self.server is not None:
                self.server.simulate_crash()
                self.server = None
                self.address = None
            self.db.kernel.storage.crash()

    def restart(self) -> tuple[str, int]:
        """Restart recovery over the surviving log, then serve again."""
        with self._mutex:
            if self.server is not None:
                raise MoodError(f"shard {self.shard_index} is running")
            self.db.kernel.storage.restart()
            self.server = MoodServer(self.db, _server_config(self.options))
            self.address = self.server.start()
            return self.address

    @property
    def alive(self) -> bool:
        return self.server is not None
