"""MOODSQL abstract syntax.

Expression nodes cover literals, path expressions (the language's defining
feature), method calls, arithmetic, comparisons and Boolean connectives;
statements cover the Section 3.1 query form, the DDL, and the ``new``
object creation MoodView issues (Section 9.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Union

# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Literal:
    value: Any  # int | float | str | bool | None

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        if self.value is None:
            return "NULL"
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        return str(self.value)


@dataclass(frozen=True)
class Param:
    """A bind-parameter placeholder: positional ``?`` or named ``:name``.

    ``index`` is the 0-based order of first appearance within the
    statement; a repeated ``:name`` reuses the first occurrence's index.
    Parameters are opaque to the rewriter and are replaced by
    :class:`Literal` values at bind time, so the optimizer always sees
    concrete constants.
    """

    index: int
    name: str | None = None

    def __str__(self) -> str:
        return f":{self.name}" if self.name else f"?{self.index + 1}"


@dataclass(frozen=True)
class Path:
    """A (possibly trivial) path expression: ``var.a1.a2...an``."""

    var: str
    attrs: tuple[str, ...] = ()

    def __str__(self) -> str:
        return ".".join([self.var, *self.attrs])

    @property
    def is_variable(self) -> bool:
        return not self.attrs


@dataclass(frozen=True)
class MethodCall:
    """``path.method(args)``; a parameterless method looks like ``v.m()``."""

    receiver: Path
    method: str
    args: tuple["Expr", ...] = ()

    def __str__(self) -> str:
        args = ", ".join(str(a) for a in self.args)
        return f"{self.receiver}.{self.method}({args})"


@dataclass(frozen=True)
class BinOp:
    """Arithmetic (+ - * / %) or comparison (= <> < <= > >=)."""

    op: str
    left: "Expr"
    right: "Expr"

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnaryMinus:
    operand: "Expr"

    def __str__(self) -> str:
        return f"(-{self.operand})"


@dataclass(frozen=True)
class Not:
    operand: "Expr"

    def __str__(self) -> str:
        return f"(NOT {self.operand})"


@dataclass(frozen=True)
class BoolOp:
    """n-ary AND / OR."""

    op: str  # "AND" | "OR"
    items: tuple["Expr", ...]

    def __str__(self) -> str:
        return "(" + f" {self.op} ".join(str(i) for i in self.items) + ")"


@dataclass(frozen=True)
class Between:
    expr: "Expr"
    low: "Expr"
    high: "Expr"

    def __str__(self) -> str:
        return f"({self.expr} BETWEEN {self.low} AND {self.high})"


@dataclass(frozen=True)
class InList:
    expr: "Expr"
    items: tuple["Expr", ...]

    def __str__(self) -> str:
        return f"({self.expr} IN ({', '.join(str(i) for i in self.items)}))"


Expr = Union[Literal, Param, Path, MethodCall, BinOp, UnaryMinus, Not,
             BoolOp, Between, InList]

COMPARISON_OPS = ("=", "<>", "<", "<=", ">", ">=")
ARITHMETIC_OPS = ("+", "-", "*", "/", "%")


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class RangeVar:
    """One FROM-clause range: ``[EVERY] Class [- Sub]... var``."""

    class_name: str
    var: str
    minus: tuple[str, ...] = ()
    every: bool = False

    def __str__(self) -> str:
        text = "EVERY " if self.every else ""
        text += self.class_name
        for excluded in self.minus:
            text += f" - {excluded}"
        return f"{text} {self.var}"


@dataclass(frozen=True)
class OrderItem:
    expr: Path
    ascending: bool = True


@dataclass(frozen=True)
class SelectQuery:
    projections: tuple[Expr, ...]   # empty tuple means SELECT *
    ranges: tuple[RangeVar, ...]
    where: Expr | None = None
    group_by: tuple[Path, ...] = ()
    having: Expr | None = None
    order_by: tuple[OrderItem, ...] = ()
    distinct: bool = False


@dataclass(frozen=True)
class MethodDecl:
    name: str
    parameters: tuple[tuple[str, str], ...]   # (name, type text)
    return_type: str
    body: str | None = None


@dataclass(frozen=True)
class CreateClass:
    name: str
    superclasses: tuple[str, ...] = ()
    attributes: tuple[tuple[str, str], ...] = ()   # (name, type text)
    methods: tuple[MethodDecl, ...] = ()
    is_class: bool = True    # CREATE TYPE sets False


@dataclass(frozen=True)
class DropClass:
    name: str


@dataclass(frozen=True)
class AlterClass:
    """ALTER CLASS c ADD ATTRIBUTE a T | DROP ATTRIBUTE a
    | RENAME ATTRIBUTE a TO b."""

    name: str
    action: str                       # "add" | "drop" | "rename"
    attribute: str
    type_text: str | None = None
    new_name: str | None = None


@dataclass(frozen=True)
class CreateIndex:
    name: str
    class_name: str
    attribute: str
    kind: str = "btree"     # USING btree|hash
    unique: bool = False


@dataclass(frozen=True)
class DropIndex:
    name: str


@dataclass(frozen=True)
class CreateMethod:
    """CREATE METHOD Class::name(params) RetType { body }."""

    decl: MethodDecl
    class_name: str
    replace: bool = False


@dataclass(frozen=True)
class DropMethod:
    class_name: str
    name: str
    parameter_types: tuple[str, ...] = ()


@dataclass(frozen=True)
class NewObject:
    """``new Employee <'Budak Arpinar', 'Computer Engineer', 1969>``.

    Values bind positionally to the class's attributes (inherited first,
    declaration order).  ``AS name`` registers a named object.
    """

    class_name: str
    values: tuple[Expr, ...]
    bind_name: str | None = None


@dataclass(frozen=True)
class DeleteStmt:
    range_var: RangeVar
    where: Expr | None = None


@dataclass(frozen=True)
class UpdateStmt:
    range_var: RangeVar
    assignments: tuple[tuple[str, Expr], ...]
    where: Expr | None = None


@dataclass(frozen=True)
class AnalyzeStmt:
    pass


@dataclass(frozen=True)
class ExplainStmt:
    """``EXPLAIN [ANALYZE] SELECT ...``: show the optimizer's plan with
    per-node estimated cost; with ANALYZE, execute it and report actual
    charged I/O side-by-side."""

    query: SelectQuery
    analyze: bool = False


@dataclass(frozen=True)
class PrepareStmt:
    """``PREPARE name AS statement``: compile once, keep under ``name``."""

    name: str
    statement: "Statement"


@dataclass(frozen=True)
class ExecuteStmt:
    """``EXECUTE name [(arg, ...)]``: bind and run a prepared statement.

    Arguments are constant expressions, bound positionally to the
    prepared statement's parameters (order of first appearance).
    """

    name: str
    args: tuple[Expr, ...] = ()


@dataclass(frozen=True)
class DeallocateStmt:
    """``DEALLOCATE name``: drop a prepared statement."""

    name: str


Statement = Union[
    SelectQuery, CreateClass, DropClass, AlterClass, CreateIndex, DropIndex,
    CreateMethod, DropMethod, NewObject, DeleteStmt, UpdateStmt, AnalyzeStmt,
    ExplainStmt, PrepareStmt, ExecuteStmt, DeallocateStmt,
]
