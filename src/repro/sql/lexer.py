"""MOODSQL lexer.

Tokenises the SQL-like surface of Section 3.1 plus the DDL/DML the kernel
serves MoodView with (Section 9.4's ``new Employee <...>`` object creation,
method definition with raw bodies, index DDL).

A ``{`` always opens a raw method body (C++ in the paper, Python here):
the lexer captures brace-balanced text verbatim into a single BODY token,
preserving strings and nesting.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.core.errors import LexerError

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "ASC",
    "DESC", "EVERY", "AND", "OR", "NOT", "BETWEEN", "IN", "CREATE", "CLASS",
    "TYPE", "TUPLE", "METHODS", "METHOD", "INHERITS", "INDEX", "ON", "USING",
    "UNIQUE", "DROP", "DELETE", "UPDATE", "SET", "NEW", "AS", "TRUE",
    "FALSE", "NULL", "ANALYZE", "DISTINCT", "ATTRIBUTE", "RENAME", "TO",
    "ALTER", "ADD", "EXPLAIN", "PREPARE", "EXECUTE", "DEALLOCATE",
}


class TokenType(Enum):
    IDENT = "IDENT"
    KEYWORD = "KEYWORD"
    INTEGER = "INTEGER"
    FLOAT = "FLOAT"
    STRING = "STRING"
    OPERATOR = "OPERATOR"     # = <> < <= > >= + - * / % ::
    PUNCT = "PUNCT"           # ( ) , . ;
    BODY = "BODY"             # raw { ... } method body
    EOF = "EOF"


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    line: int
    column: int

    def is_keyword(self, *words: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value in words

    def __str__(self) -> str:
        return f"{self.value!r}"


_OPERATORS = ("<=", ">=", "<>", "::", "=", "<", ">", "+", "-", "*", "/", "%")
# '?' is the positional bind-parameter marker; ':' doubles as the METHODS:
# separator and (followed by an identifier, in expression position) the
# named bind-parameter marker -- the parser disambiguates by context.
_PUNCT = "(),.;:?"


def tokenize(text: str) -> list[Token]:
    """Tokenise MOODSQL source into a token list ending with EOF."""
    tokens: list[Token] = []
    position = 0
    line = 1
    line_start = 0
    length = len(text)

    def column() -> int:
        return position - line_start + 1

    while position < length:
        ch = text[position]
        if ch == "\n":
            line += 1
            position += 1
            line_start = position
            continue
        if ch.isspace():
            position += 1
            continue
        if text.startswith("--", position):
            newline = text.find("\n", position)
            position = length if newline == -1 else newline
            continue
        if ch == "{":
            start_line, start_column = line, column()
            depth = 0
            start = position
            in_string: str | None = None
            while position < length:
                current = text[position]
                if in_string is not None:
                    if current == in_string:
                        in_string = None
                    elif current == "\n":
                        line += 1
                        line_start = position + 1
                elif current in "'\"":
                    in_string = current
                elif current == "{":
                    depth += 1
                elif current == "}":
                    depth -= 1
                    if depth == 0:
                        position += 1
                        break
                elif current == "\n":
                    line += 1
                    line_start = position + 1
                position += 1
            else:
                raise LexerError("unterminated method body", start_line,
                                 start_column)
            if depth != 0:
                raise LexerError("unterminated method body", start_line,
                                 start_column)
            body = text[start + 1:position - 1]
            tokens.append(Token(TokenType.BODY, body, start_line, start_column))
            continue
        if ch in "'\"":
            quote = ch
            start_line, start_column = line, column()
            position += 1
            chars: list[str] = []
            while position < length:
                current = text[position]
                if current == quote:
                    if position + 1 < length and text[position + 1] == quote:
                        chars.append(quote)  # doubled quote escape
                        position += 2
                        continue
                    position += 1
                    break
                if current == "\n":
                    raise LexerError("unterminated string", start_line,
                                     start_column)
                chars.append(current)
                position += 1
            else:
                raise LexerError("unterminated string", start_line, start_column)
            tokens.append(
                Token(TokenType.STRING, "".join(chars), start_line, start_column)
            )
            continue
        if ch.isdigit():
            start = position
            start_column = column()
            while position < length and text[position].isdigit():
                position += 1
            is_float = False
            if (
                position < length
                and text[position] == "."
                and position + 1 < length
                and text[position + 1].isdigit()
            ):
                is_float = True
                position += 1
                while position < length and text[position].isdigit():
                    position += 1
            if position < length and text[position] in "eE":
                lookahead = position + 1
                if lookahead < length and text[lookahead] in "+-":
                    lookahead += 1
                if lookahead < length and text[lookahead].isdigit():
                    is_float = True
                    position = lookahead
                    while position < length and text[position].isdigit():
                        position += 1
            token_type = TokenType.FLOAT if is_float else TokenType.INTEGER
            tokens.append(
                Token(token_type, text[start:position], line, start_column)
            )
            continue
        if ch.isalpha() or ch == "_":
            start = position
            start_column = column()
            # '$' continues an identifier: the SYS$ monitor views
            # (SYS$SESSIONS, SYS$LOCKS, ...) are ordinary FROM targets.
            while position < length and (text[position].isalnum()
                                         or text[position] in "_$"):
                position += 1
            word = text[start:position]
            if word.upper() in KEYWORDS:
                tokens.append(
                    Token(TokenType.KEYWORD, word.upper(), line, start_column)
                )
            else:
                tokens.append(Token(TokenType.IDENT, word, line, start_column))
            continue
        matched = False
        for operator in _OPERATORS:
            if text.startswith(operator, position):
                tokens.append(Token(TokenType.OPERATOR, operator, line, column()))
                position += len(operator)
                matched = True
                break
        if matched:
            continue
        if ch in _PUNCT:
            tokens.append(Token(TokenType.PUNCT, ch, line, column()))
            position += 1
            continue
        raise LexerError(f"illegal character {ch!r}", line, column())
    tokens.append(Token(TokenType.EOF, "", line, column()))
    return tokens
