"""Expression simplification and disjunctive normal form (Section 7).

The query processor, after parsing, (1) simplifies expressions and (2)
transforms WHERE/HAVING predicates into DNF::

    (p11 AND p12 AND ...) OR (p21 AND p22 AND ...) OR ...

so each AND-term is planned separately and the UNION operation combines the
subaccess plans.
"""

from __future__ import annotations

from repro.core.errors import OptimizerError
from repro.sql.ast import (
    Between,
    BinOp,
    BoolOp,
    COMPARISON_OPS,
    Expr,
    InList,
    Literal,
    MethodCall,
    Not,
    Path,
    UnaryMinus,
)

_NEGATED_COMPARISON = {
    "=": "<>", "<>": "=", "<": ">=", ">=": "<", ">": "<=", "<=": ">",
}

#: Upper bound on AND-terms produced by the DNF distribution; queries whose
#: DNF would explode beyond this are rejected rather than planned badly.
MAX_DNF_TERMS = 256


# --------------------------------------------------------------------------
# Simplification
# --------------------------------------------------------------------------

def simplify(expr: Expr) -> Expr:
    """Constant folding, NOT pushdown (De Morgan), TRUE/FALSE absorption,
    flattening of nested AND/OR."""
    expr = _push_not(expr, negate=False)
    return _fold(expr)


def _push_not(expr: Expr, negate: bool) -> Expr:
    if isinstance(expr, Not):
        return _push_not(expr.operand, not negate)
    if isinstance(expr, BoolOp):
        items = tuple(_push_not(item, negate) for item in expr.items)
        op = expr.op
        if negate:  # De Morgan
            op = "OR" if op == "AND" else "AND"
        return BoolOp(op, items)
    if negate and isinstance(expr, BinOp) and expr.op in COMPARISON_OPS:
        return BinOp(_NEGATED_COMPARISON[expr.op], expr.left, expr.right)
    if negate and isinstance(expr, Literal) and isinstance(expr.value, bool):
        return Literal(not expr.value)
    if negate:
        return Not(expr)  # opaque predicate: keep the NOT
    return expr


def _fold(expr: Expr) -> Expr:
    if isinstance(expr, BoolOp):
        folded_items: list[Expr] = []
        for item in expr.items:
            folded = _fold(item)
            if isinstance(folded, BoolOp) and folded.op == expr.op:
                folded_items.extend(folded.items)  # flatten
            else:
                folded_items.append(folded)
        identity = expr.op == "AND"
        kept: list[Expr] = []
        for item in folded_items:
            if isinstance(item, Literal) and isinstance(item.value, bool):
                if item.value == identity:
                    continue  # TRUE in AND / FALSE in OR: drop
                return Literal(not identity)  # FALSE in AND / TRUE in OR
            if item not in kept:  # idempotence: p AND p -> p
                kept.append(item)
        if not kept:
            return Literal(identity)
        if len(kept) == 1:
            return kept[0]
        return BoolOp(expr.op, tuple(kept))
    if isinstance(expr, Not):
        inner = _fold(expr.operand)
        if isinstance(inner, Literal) and isinstance(inner.value, bool):
            return Literal(not inner.value)
        return Not(inner)
    if isinstance(expr, BinOp):
        left = _fold(expr.left)
        right = _fold(expr.right)
        if isinstance(left, Literal) and isinstance(right, Literal):
            folded = _fold_binop(expr.op, left.value, right.value)
            if folded is not None:
                return folded
        return BinOp(expr.op, left, right)
    if isinstance(expr, UnaryMinus):
        inner = _fold(expr.operand)
        if isinstance(inner, Literal) and isinstance(inner.value, (int, float)) \
                and not isinstance(inner.value, bool):
            return Literal(-inner.value)
        return UnaryMinus(inner)
    if isinstance(expr, Between):
        return Between(_fold(expr.expr), _fold(expr.low), _fold(expr.high))
    if isinstance(expr, InList):
        return InList(_fold(expr.expr), tuple(_fold(i) for i in expr.items))
    if isinstance(expr, MethodCall):
        return MethodCall(expr.receiver, expr.method,
                          tuple(_fold(a) for a in expr.args))
    return expr


def _fold_binop(op: str, left, right) -> Expr | None:
    numeric = (
        isinstance(left, (int, float)) and not isinstance(left, bool)
        and isinstance(right, (int, float)) and not isinstance(right, bool)
    )
    strings = isinstance(left, str) and isinstance(right, str)
    if op in COMPARISON_OPS and (numeric or strings):
        result = {
            "=": left == right,
            "<>": left != right,
            "<": left < right,
            "<=": left <= right,
            ">": left > right,
            ">=": left >= right,
        }[op]
        return Literal(result)
    if numeric:
        try:
            if op == "+":
                return Literal(left + right)
            if op == "-":
                return Literal(left - right)
            if op == "*":
                return Literal(left * right)
            if op == "/":
                if right == 0:
                    return None
                if isinstance(left, int) and isinstance(right, int):
                    return Literal(int(left / right))
                return Literal(left / right)
            if op == "%":
                if right == 0 or not (isinstance(left, int)
                                      and isinstance(right, int)):
                    return None
                return Literal(int(left - right * int(left / right)))
        except (OverflowError, ValueError):
            return None
    if strings and op == "+":
        return Literal(left + right)
    return None


# --------------------------------------------------------------------------
# Disjunctive normal form
# --------------------------------------------------------------------------

def to_dnf(expr: Expr) -> list[list[Expr]]:
    """Transform a (simplified) Boolean expression to DNF: a list of
    AND-terms, each a list of predicates.

    ``[[p]]`` for a single predicate; ``[]`` for constant FALSE; ``[[]]``
    (one empty AND-term, satisfied by everything) for constant TRUE.
    """
    expr = simplify(expr)
    if isinstance(expr, Literal) and isinstance(expr.value, bool):
        return [[]] if expr.value else []
    terms = _dnf(expr)
    if len(terms) > MAX_DNF_TERMS:
        raise OptimizerError(
            f"DNF explosion: {len(terms)} AND-terms (limit {MAX_DNF_TERMS})"
        )
    return terms


def _dnf(expr: Expr) -> list[list[Expr]]:
    if isinstance(expr, BoolOp) and expr.op == "OR":
        terms: list[list[Expr]] = []
        for item in expr.items:
            terms.extend(_dnf(item))
        return terms
    if isinstance(expr, BoolOp) and expr.op == "AND":
        # Distribute AND over the OR-terms of the children.
        product: list[list[Expr]] = [[]]
        for item in expr.items:
            child_terms = _dnf(item)
            product = [
                existing + candidate
                for existing in product
                for candidate in child_terms
            ]
            if len(product) > MAX_DNF_TERMS:
                raise OptimizerError(
                    f"DNF explosion beyond {MAX_DNF_TERMS} AND-terms"
                )
        return product
    return [[expr]]


def dnf_to_expr(terms: list[list[Expr]]) -> Expr:
    """Rebuild an expression from DNF (used by tests for equivalence)."""
    if not terms:
        return Literal(False)
    ors: list[Expr] = []
    for term in terms:
        if not term:
            return Literal(True)
        ors.append(term[0] if len(term) == 1 else BoolOp("AND", tuple(term)))
    if len(ors) == 1:
        return ors[0]
    return BoolOp("OR", tuple(ors))


def referenced_variables(expr: Expr | None) -> set[str]:
    """Range variables mentioned anywhere in an expression."""
    result: set[str] = set()
    _collect_vars(expr, result)
    return result


def _collect_vars(expr: Expr | None, result: set[str]) -> None:
    if expr is None or isinstance(expr, Literal):
        return
    if isinstance(expr, Path):
        result.add(expr.var)
    elif isinstance(expr, MethodCall):
        result.add(expr.receiver.var)
        for arg in expr.args:
            _collect_vars(arg, result)
    elif isinstance(expr, BinOp):
        _collect_vars(expr.left, result)
        _collect_vars(expr.right, result)
    elif isinstance(expr, (Not, UnaryMinus)):
        _collect_vars(expr.operand, result)
    elif isinstance(expr, BoolOp):
        for item in expr.items:
            _collect_vars(item, result)
    elif isinstance(expr, Between):
        _collect_vars(expr.expr, result)
        _collect_vars(expr.low, result)
        _collect_vars(expr.high, result)
    elif isinstance(expr, InList):
        _collect_vars(expr.expr, result)
        for item in expr.items:
            _collect_vars(item, result)


# --------------------------------------------------------------------------
# Rewrite-pipeline description (EXPLAIN header)
# --------------------------------------------------------------------------

def describe_rewrite(query) -> list[str]:
    """One line per rewrite step the query processor applied to a
    :class:`~repro.sql.ast.SelectQuery` -- parse summary, simplification,
    DNF shape -- rendered in the ``EXPLAIN`` report header."""
    steps = [
        f"PARSE: {len(query.ranges)} range variable(s), "
        f"{len(query.projections) or '*'} projection(s)"
    ]
    if query.where is None:
        steps.append("SIMPLIFY: no WHERE clause (TRUE)")
        steps.append("DNF: 1 AND-term")
        return steps
    simplified = simplify(query.where)
    steps.append(f"SIMPLIFY: {simplified}")
    terms = to_dnf(simplified)
    if not terms:
        steps.append("DNF: constant FALSE (empty result)")
    else:
        sizes = ", ".join(str(len(term)) for term in terms)
        steps.append(
            f"DNF: {len(terms)} AND-term(s) with [{sizes}] predicate(s)"
        )
    return steps
