"""MOODSQL recursive-descent parser.

Implements the Section 3.1 grammar::

    SELECT projection-list
    FROM [EVERY] class-name [- subclass]... r1, ...
    [ GROUP BY attribute-list [ HAVING predicate ] ]
    [ WHERE search-expression ]
    [ ORDER BY attribute-list ]

(clauses after FROM are accepted in any order, since the paper itself puts
WHERE after GROUP BY), plus the DDL (CREATE CLASS ... TUPLE ... METHODS,
INHERITS FROM, CREATE INDEX), method management (CREATE/DROP METHOD), the
``new Class <...>`` object creation of Section 9.4, DELETE, UPDATE, ALTER
CLASS and ANALYZE.
"""

from __future__ import annotations

from repro.core.errors import ParseError
from repro.sql.ast import (
    AlterClass,
    AnalyzeStmt,
    Between,
    BinOp,
    BoolOp,
    COMPARISON_OPS,
    CreateClass,
    CreateIndex,
    CreateMethod,
    DeallocateStmt,
    DeleteStmt,
    DropClass,
    DropIndex,
    DropMethod,
    ExecuteStmt,
    ExplainStmt,
    Expr,
    InList,
    Literal,
    MethodCall,
    MethodDecl,
    NewObject,
    Not,
    OrderItem,
    Param,
    Path,
    PrepareStmt,
    RangeVar,
    SelectQuery,
    Statement,
    UnaryMinus,
    UpdateStmt,
)
from repro.sql.lexer import Token, TokenType, tokenize


class Parser:
    def __init__(self, text: str):
        self.tokens = tokenize(text)
        self.position = 0
        #: Bind parameters in order of first appearance; a repeated
        #: ``:name`` reuses its first occurrence's node.
        self.params: list[Param] = []
        self._named_params: dict[str, Param] = {}

    # -- token plumbing ------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.peek()
        if token.type is not TokenType.EOF:
            self.position += 1
        return token

    def error(self, message: str) -> ParseError:
        token = self.peek()
        return ParseError(
            f"{message} (found {token.value!r} at line {token.line}, "
            f"column {token.column})"
        )

    def expect_keyword(self, *words: str) -> Token:
        token = self.peek()
        if not token.is_keyword(*words):
            raise self.error(f"expected {' or '.join(words)}")
        return self.advance()

    def accept_keyword(self, *words: str) -> bool:
        if self.peek().is_keyword(*words):
            self.advance()
            return True
        return False

    def expect_ident(self, what: str = "identifier") -> str:
        token = self.peek()
        if token.type is not TokenType.IDENT:
            raise self.error(f"expected {what}")
        return self.advance().value

    def expect_punct(self, value: str) -> None:
        token = self.peek()
        if token.type is not TokenType.PUNCT or token.value != value:
            raise self.error(f"expected {value!r}")
        self.advance()

    def accept_punct(self, value: str) -> bool:
        token = self.peek()
        if token.type is TokenType.PUNCT and token.value == value:
            self.advance()
            return True
        return False

    def expect_operator(self, value: str) -> None:
        token = self.peek()
        if token.type is not TokenType.OPERATOR or token.value != value:
            raise self.error(f"expected {value!r}")
        self.advance()

    def accept_operator(self, value: str) -> bool:
        token = self.peek()
        if token.type is TokenType.OPERATOR and token.value == value:
            self.advance()
            return True
        return False

    # -- entry points ----------------------------------------------------------

    def parse_statement(self) -> Statement:
        statement = self._statement()
        self.accept_punct(";")
        if self.peek().type is not TokenType.EOF:
            raise self.error("unexpected trailing input")
        return statement

    def parse_script(self) -> list[Statement]:
        statements = []
        while self.peek().type is not TokenType.EOF:
            statements.append(self._statement())
            while self.accept_punct(";"):
                pass
        return statements

    # -- statements ----------------------------------------------------------------

    def _statement(self) -> Statement:
        # Each statement numbers its bind parameters independently (the
        # PREPARE production reads them off after parsing its body).
        self.params = []
        self._named_params = {}
        token = self.peek()
        if token.is_keyword("PREPARE"):
            return self._prepare()
        if token.is_keyword("EXECUTE"):
            return self._execute_prepared()
        if token.is_keyword("DEALLOCATE"):
            self.advance()
            return DeallocateStmt(self.expect_ident("statement name"))
        if token.is_keyword("SELECT"):
            return self._select()
        if token.is_keyword("CREATE"):
            return self._create()
        if token.is_keyword("DROP"):
            return self._drop()
        if token.is_keyword("ALTER"):
            return self._alter()
        if token.is_keyword("NEW"):
            return self._new_object()
        if token.is_keyword("DELETE"):
            return self._delete()
        if token.is_keyword("UPDATE"):
            return self._update()
        if token.is_keyword("ANALYZE"):
            self.advance()
            return AnalyzeStmt()
        if token.is_keyword("EXPLAIN"):
            return self._explain()
        raise self.error("expected a statement")

    def _prepare(self) -> PrepareStmt:
        self.expect_keyword("PREPARE")
        name = self.expect_ident("statement name")
        self.expect_keyword("AS")
        statement = self._statement()
        if isinstance(statement,
                      (PrepareStmt, ExecuteStmt, DeallocateStmt)):
            raise self.error(
                "PREPARE/EXECUTE/DEALLOCATE cannot themselves be prepared"
            )
        return PrepareStmt(name=name, statement=statement)

    def _execute_prepared(self) -> ExecuteStmt:
        self.expect_keyword("EXECUTE")
        name = self.expect_ident("statement name")
        args: list[Expr] = []
        if self.accept_punct("("):
            if not self.accept_punct(")"):
                args.append(self._expr())
                while self.accept_punct(","):
                    args.append(self._expr())
                self.expect_punct(")")
        return ExecuteStmt(name=name, args=tuple(args))

    def _explain(self) -> ExplainStmt:
        self.expect_keyword("EXPLAIN")
        analyze = self.accept_keyword("ANALYZE")
        if not self.peek().is_keyword("SELECT"):
            raise self.error("EXPLAIN expects a SELECT statement")
        return ExplainStmt(query=self._select(), analyze=analyze)

    def _select(self) -> SelectQuery:
        self.expect_keyword("SELECT")
        distinct = self.accept_keyword("DISTINCT")
        projections: tuple[Expr, ...]
        if self.accept_operator("*"):
            projections = ()
        else:
            items = [self._expr()]
            while self.accept_punct(","):
                items.append(self._expr())
            projections = tuple(items)
        self.expect_keyword("FROM")
        ranges = [self._range_var()]
        while self.accept_punct(","):
            ranges.append(self._range_var())
        where = None
        group_by: tuple[Path, ...] = ()
        having = None
        order_by: tuple[OrderItem, ...] = ()
        while True:
            if self.peek().is_keyword("WHERE"):
                if where is not None:
                    raise self.error("duplicate WHERE clause")
                self.advance()
                where = self._expr()
            elif self.peek().is_keyword("GROUP"):
                if group_by:
                    raise self.error("duplicate GROUP BY clause")
                self.advance()
                self.expect_keyword("BY")
                paths = [self._path_only()]
                while self.accept_punct(","):
                    paths.append(self._path_only())
                group_by = tuple(paths)
                if self.accept_keyword("HAVING"):
                    having = self._expr()
            elif self.peek().is_keyword("ORDER"):
                if order_by:
                    raise self.error("duplicate ORDER BY clause")
                self.advance()
                self.expect_keyword("BY")
                items = [self._order_item()]
                while self.accept_punct(","):
                    items.append(self._order_item())
                order_by = tuple(items)
            else:
                break
        if having is not None and not group_by:
            raise self.error("HAVING requires GROUP BY")
        return SelectQuery(
            projections=projections,
            ranges=tuple(ranges),
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            distinct=distinct,
        )

    def _range_var(self) -> RangeVar:
        every = self.accept_keyword("EVERY")
        class_name = self.expect_ident("class name")
        minus: list[str] = []
        while self.accept_operator("-"):
            minus.append(self.expect_ident("excluded subclass"))
        var = self.expect_ident("range variable")
        return RangeVar(class_name=class_name, var=var, minus=tuple(minus),
                        every=every)

    def _order_item(self) -> OrderItem:
        path = self._path_only()
        ascending = True
        if self.accept_keyword("DESC"):
            ascending = False
        else:
            self.accept_keyword("ASC")
        return OrderItem(path, ascending)

    def _path_only(self) -> Path:
        expr = self._postfix()
        if not isinstance(expr, Path):
            raise self.error("expected a path expression")
        return expr

    # -- DDL ------------------------------------------------------------------

    def _create(self) -> Statement:
        self.expect_keyword("CREATE")
        if self.peek().is_keyword("CLASS", "TYPE"):
            return self._create_class()
        if self.peek().is_keyword("METHOD"):
            return self._create_method()
        if self.peek().is_keyword("UNIQUE", "INDEX"):
            return self._create_index()
        raise self.error("expected CLASS, TYPE, METHOD or INDEX after CREATE")

    def _create_class(self) -> CreateClass:
        is_class = self.advance().value == "CLASS"
        name = self.expect_ident("class name")
        superclasses: list[str] = []
        attributes: list[tuple[str, str]] = []
        methods: list[MethodDecl] = []
        while True:
            if self.accept_keyword("INHERITS"):
                self.expect_keyword("FROM")
                superclasses.append(self.expect_ident("superclass"))
                while self.accept_punct(","):
                    superclasses.append(self.expect_ident("superclass"))
            elif self.accept_keyword("TUPLE"):
                self.expect_punct("(")
                while not self.accept_punct(")"):
                    attr_name = self.expect_ident("attribute name")
                    attributes.append((attr_name, self._type_text()))
                    if not self.accept_punct(","):
                        self.expect_punct(")")
                        break
            elif self.accept_keyword("METHODS"):
                # Accept both the paper's 'METHODS:' form and a
                # parenthesised 'METHODS ( ... )' variant.
                self.accept_punct(":")
                parenthesised = self.accept_punct("(")
                while True:
                    if parenthesised and self.accept_punct(")"):
                        break
                    if self.peek().type is not TokenType.IDENT:
                        break
                    methods.append(self._method_decl(name))
                    if not self.accept_punct(","):
                        if parenthesised:
                            self.expect_punct(")")
                        break
            else:
                break
        return CreateClass(
            name=name,
            superclasses=tuple(superclasses),
            attributes=tuple(attributes),
            methods=tuple(methods),
            is_class=is_class,
        )

    def _type_text(self) -> str:
        """Consume a type expression (balanced in parentheses) as text."""
        pieces: list[str] = []
        depth = 0
        while True:
            token = self.peek()
            if token.type is TokenType.EOF:
                break
            if token.type is TokenType.PUNCT and token.value == "(":
                depth += 1
            elif token.type is TokenType.PUNCT and token.value == ")":
                if depth == 0:
                    break
                depth -= 1
            elif token.type is TokenType.PUNCT and token.value == ",":
                if depth == 0:
                    break
            elif token.type not in (TokenType.IDENT, TokenType.INTEGER,
                                    TokenType.KEYWORD):
                break
            pieces.append(token.value)
            self.advance()
        if not pieces:
            raise self.error("expected a type")
        # Reassemble with spaces; the type parser is whitespace-insensitive.
        return " ".join(pieces)

    def _method_decl(self, class_name: str) -> MethodDecl:
        method_name = self.expect_ident("method name")
        self.expect_punct("(")
        parameters: list[tuple[str, str]] = []
        while not self.accept_punct(")"):
            param_name = self.expect_ident("parameter name")
            parameters.append((param_name, self._type_text()))
            if not self.accept_punct(","):
                self.expect_punct(")")
                break
        return_type = self._type_text()
        body = None
        if self.peek().type is TokenType.BODY:
            body = self.advance().value
        return MethodDecl(
            name=method_name,
            parameters=tuple(parameters),
            return_type=return_type,
            body=body,
        )

    def _create_method(self) -> CreateMethod:
        self.expect_keyword("METHOD")
        class_name = self.expect_ident("class name")
        self.expect_operator("::")
        # Reuse the declaration parser from the method name onwards: put the
        # name back by parsing manually.
        method_name = self.expect_ident("method name")
        self.expect_punct("(")
        parameters: list[tuple[str, str]] = []
        while not self.accept_punct(")"):
            param_name = self.expect_ident("parameter name")
            parameters.append((param_name, self._type_text()))
            if not self.accept_punct(","):
                self.expect_punct(")")
                break
        return_type = self._type_text()
        if self.peek().type is not TokenType.BODY:
            raise self.error("expected a { body } for CREATE METHOD")
        body = self.advance().value
        return CreateMethod(
            decl=MethodDecl(method_name, tuple(parameters), return_type, body),
            class_name=class_name,
        )

    def _create_index(self) -> CreateIndex:
        unique = self.accept_keyword("UNIQUE")
        self.expect_keyword("INDEX")
        name = self.expect_ident("index name")
        self.expect_keyword("ON")
        class_name = self.expect_ident("class name")
        self.expect_punct("(")
        segments = [self.expect_ident("attribute")]
        while self.accept_punct("."):
            segments.append(self.expect_ident("attribute"))
        attribute = ".".join(segments)
        self.expect_punct(")")
        kind = "path" if len(segments) > 1 else "btree"
        if self.accept_keyword("USING"):
            kind = self.expect_ident("index kind").lower()
        return CreateIndex(name=name, class_name=class_name,
                           attribute=attribute, kind=kind, unique=unique)

    def _drop(self) -> Statement:
        self.expect_keyword("DROP")
        if self.accept_keyword("CLASS", "TYPE"):
            return DropClass(self.expect_ident("class name"))
        if self.accept_keyword("INDEX"):
            return DropIndex(self.expect_ident("index name"))
        if self.accept_keyword("METHOD"):
            class_name = self.expect_ident("class name")
            self.expect_operator("::")
            method_name = self.expect_ident("method name")
            parameter_types: list[str] = []
            if self.accept_punct("("):
                while not self.accept_punct(")"):
                    parameter_types.append(self._type_text())
                    if not self.accept_punct(","):
                        self.expect_punct(")")
                        break
            return DropMethod(class_name, method_name, tuple(parameter_types))
        raise self.error("expected CLASS, TYPE, INDEX or METHOD after DROP")

    def _alter(self) -> AlterClass:
        self.expect_keyword("ALTER")
        self.expect_keyword("CLASS")
        name = self.expect_ident("class name")
        if self.accept_keyword("ADD"):
            self.expect_keyword("ATTRIBUTE")
            attribute = self.expect_ident("attribute")
            return AlterClass(name, "add", attribute,
                              type_text=self._type_text())
        if self.accept_keyword("DROP"):
            self.expect_keyword("ATTRIBUTE")
            return AlterClass(name, "drop", self.expect_ident("attribute"))
        if self.accept_keyword("RENAME"):
            self.expect_keyword("ATTRIBUTE")
            attribute = self.expect_ident("attribute")
            self.expect_keyword("TO")
            return AlterClass(name, "rename", attribute,
                              new_name=self.expect_ident("new name"))
        raise self.error("expected ADD, DROP or RENAME")

    # -- DML --------------------------------------------------------------------

    def _new_object(self) -> NewObject:
        self.expect_keyword("NEW")
        class_name = self.expect_ident("class name")
        values: list[Expr] = []
        if self.accept_operator("<>"):
            pass  # 'NEW X <>' lexes the empty brackets as one token
        else:
            self.expect_operator("<")
            if not self.accept_operator(">"):
                # Values are additive expressions: a top-level '>' closes
                # the bracket instead of comparing.
                values.append(self._additive())
                while self.accept_punct(","):
                    values.append(self._additive())
                self.expect_operator(">")
        bind_name = None
        if self.accept_keyword("AS"):
            bind_name = self.expect_ident("object name")
        return NewObject(class_name=class_name, values=tuple(values),
                         bind_name=bind_name)

    def _delete(self) -> DeleteStmt:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        range_var = self._range_var()
        where = self._expr() if self.accept_keyword("WHERE") else None
        return DeleteStmt(range_var, where)

    def _update(self) -> UpdateStmt:
        self.expect_keyword("UPDATE")
        range_var = self._range_var()
        self.expect_keyword("SET")
        assignments = []
        while True:
            attribute = self.expect_ident("attribute")
            self.expect_operator("=")
            assignments.append((attribute, self._expr()))
            if not self.accept_punct(","):
                break
        where = self._expr() if self.accept_keyword("WHERE") else None
        return UpdateStmt(range_var, tuple(assignments), where)

    # -- expressions ----------------------------------------------------------------

    def _expr(self) -> Expr:
        return self._or_expr()

    def _or_expr(self) -> Expr:
        items = [self._and_expr()]
        while self.accept_keyword("OR"):
            items.append(self._and_expr())
        if len(items) == 1:
            return items[0]
        return BoolOp("OR", tuple(items))

    def _and_expr(self) -> Expr:
        items = [self._not_expr()]
        while self.accept_keyword("AND"):
            items.append(self._not_expr())
        if len(items) == 1:
            return items[0]
        return BoolOp("AND", tuple(items))

    def _not_expr(self) -> Expr:
        if self.accept_keyword("NOT"):
            return Not(self._not_expr())
        return self._comparison()

    def _comparison(self) -> Expr:
        left = self._additive()
        token = self.peek()
        if token.type is TokenType.OPERATOR and token.value in COMPARISON_OPS:
            op = self.advance().value
            return BinOp(op, left, self._additive())
        if token.is_keyword("BETWEEN"):
            self.advance()
            low = self._additive()
            self.expect_keyword("AND")
            return Between(left, low, self._additive())
        if token.is_keyword("IN"):
            self.advance()
            self.expect_punct("(")
            items = [self._expr()]
            while self.accept_punct(","):
                items.append(self._expr())
            self.expect_punct(")")
            return InList(left, tuple(items))
        if token.is_keyword("NOT") and self.peek(1).is_keyword("BETWEEN", "IN"):
            self.advance()
            return Not(self._comparison_tail(left))
        return left

    def _comparison_tail(self, left: Expr) -> Expr:
        if self.accept_keyword("BETWEEN"):
            low = self._additive()
            self.expect_keyword("AND")
            return Between(left, low, self._additive())
        self.expect_keyword("IN")
        self.expect_punct("(")
        items = [self._expr()]
        while self.accept_punct(","):
            items.append(self._expr())
        self.expect_punct(")")
        return InList(left, tuple(items))

    def _additive(self) -> Expr:
        left = self._multiplicative()
        while True:
            token = self.peek()
            if token.type is TokenType.OPERATOR and token.value in ("+", "-"):
                op = self.advance().value
                left = BinOp(op, left, self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> Expr:
        left = self._unary()
        while True:
            token = self.peek()
            if token.type is TokenType.OPERATOR and token.value in ("*", "/", "%"):
                op = self.advance().value
                left = BinOp(op, left, self._unary())
            else:
                return left

    def _unary(self) -> Expr:
        if self.accept_operator("-"):
            return UnaryMinus(self._unary())
        if self.accept_operator("+"):
            return self._unary()
        return self._postfix()

    def _postfix(self) -> Expr:
        token = self.peek()
        if token.type is TokenType.INTEGER:
            self.advance()
            return Literal(int(token.value))
        if token.type is TokenType.FLOAT:
            self.advance()
            return Literal(float(token.value))
        if token.type is TokenType.STRING:
            self.advance()
            return Literal(token.value)
        if token.is_keyword("TRUE"):
            self.advance()
            return Literal(True)
        if token.is_keyword("FALSE"):
            self.advance()
            return Literal(False)
        if token.is_keyword("NULL"):
            self.advance()
            return Literal(None)
        if token.type is TokenType.PUNCT and token.value == "?":
            self.advance()
            return self._new_param(None)
        if (token.type is TokenType.PUNCT and token.value == ":"
                and self.peek(1).type is TokenType.IDENT):
            # ':' only denotes a parameter in expression position; the
            # METHODS: clause consumes its ':' in statement context.
            self.advance()
            return self._new_param(self.expect_ident("parameter name"))
        if token.type is TokenType.PUNCT and token.value == "(":
            self.advance()
            inner = self._expr()
            self.expect_punct(")")
            return inner
        if token.type is TokenType.IDENT:
            segments = [self.advance().value]
            while self.peek().type is TokenType.PUNCT and self.peek().value == ".":
                self.advance()
                segments.append(self.expect_ident("attribute"))
            if self.peek().type is TokenType.PUNCT and self.peek().value == "(":
                self.advance()
                args: list[Expr] = []
                if not self.accept_punct(")"):
                    args.append(self._expr())
                    while self.accept_punct(","):
                        args.append(self._expr())
                    self.expect_punct(")")
                if len(segments) < 2:
                    raise self.error("method call needs a receiver")
                return MethodCall(
                    receiver=Path(segments[0], tuple(segments[1:-1])),
                    method=segments[-1],
                    args=tuple(args),
                )
            return Path(segments[0], tuple(segments[1:]))
        raise self.error("expected an expression")

    def _new_param(self, name: str | None) -> Param:
        if name is not None and name in self._named_params:
            return self._named_params[name]
        param = Param(index=len(self.params), name=name)
        self.params.append(param)
        if name is not None:
            self._named_params[name] = param
        return param


def parse(text: str) -> Statement:
    """Parse a single MOODSQL statement."""
    return Parser(text).parse_statement()


def parse_script(text: str) -> list[Statement]:
    """Parse a ';'-separated sequence of statements."""
    return Parser(text).parse_script()


def parse_expression(text: str) -> Expr:
    """Parse a standalone expression (used by tests and tools)."""
    parser = Parser(text)
    expr = parser._expr()
    if parser.peek().type is not TokenType.EOF:
        raise parser.error("unexpected trailing input")
    return expr
