"""MOODSQL front end: lexer, parser, AST, rewriting (Sections 3 and 7)."""

from repro.sql.ast import (
    AlterClass,
    AnalyzeStmt,
    Between,
    BinOp,
    BoolOp,
    CreateClass,
    CreateIndex,
    CreateMethod,
    DeleteStmt,
    DropClass,
    DropIndex,
    DropMethod,
    Expr,
    InList,
    Literal,
    MethodCall,
    MethodDecl,
    NewObject,
    Not,
    OrderItem,
    Path,
    RangeVar,
    SelectQuery,
    Statement,
    UnaryMinus,
    UpdateStmt,
)
from repro.sql.lexer import Token, TokenType, tokenize
from repro.sql.parser import Parser, parse, parse_expression, parse_script
from repro.sql.rewrite import (
    dnf_to_expr,
    referenced_variables,
    simplify,
    to_dnf,
)

__all__ = [
    "AlterClass", "AnalyzeStmt", "Between", "BinOp", "BoolOp", "CreateClass",
    "CreateIndex", "CreateMethod", "DeleteStmt", "DropClass", "DropIndex",
    "DropMethod", "Expr", "InList", "Literal", "MethodCall", "MethodDecl",
    "NewObject", "Not", "OrderItem", "Parser", "Path", "RangeVar",
    "SelectQuery", "Statement", "Token", "TokenType", "UnaryMinus",
    "UpdateStmt", "dnf_to_expr", "parse", "parse_expression", "parse_script",
    "referenced_variables", "simplify", "to_dnf", "tokenize",
]
