"""Reproduction of the METU Object-Oriented DBMS (MOOD, 1994).

Quickstart::

    from repro import MoodDatabase

    db = MoodDatabase()
    db.execute("CREATE CLASS Point TUPLE (x Integer, y Integer)")
    db.execute("NEW Point <1, 2>")
    result = db.query("SELECT p.x FROM Point p WHERE p.y = 2")
"""

from repro.core.database import MoodDatabase
from repro.core.kernel import MoodKernel, QueryResult, StatementResult

__version__ = "1.0.0"

__all__ = ["MoodDatabase", "MoodKernel", "QueryResult", "StatementResult",
           "__version__"]
