"""The optimizer's selection dictionaries (Section 7, Tables 11-12).

* ``ImmSelInfo``: immediate selections -- range variable, predicate,
  selectivity, indexed access cost, sequential access cost, access type.
* ``PathSelInfo``: path selections -- range variable, predicate,
  selectivity, forward traversal cost (plus the derived ``F/(1-s)`` rank
  the Table 16 example prints).
* ``OtherSelInfo``: methods and complex predicates, with the same columns
  as ImmSelInfo (the paper: "The data structure for this dictionary is also
  the same as that of ImmSelInfo").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sql.ast import Expr


@dataclass
class ImmSelEntry:
    """One row of ImmSelInfo (Table 11)."""

    range_var: str
    predicate: Expr
    selectivity: float
    indexed_access_cost: float | None = None   # None: no usable index
    sequential_access_cost: float = 0.0
    access_type: str = "sequential"             # "indexed" | "sequential"
    index_name: str | None = None
    index_kind: str | None = None

    def row(self) -> tuple:
        return (
            self.range_var,
            str(self.predicate),
            self.selectivity,
            self.indexed_access_cost,
            self.sequential_access_cost,
            self.access_type,
        )


@dataclass
class PathSelEntry:
    """One row of PathSelInfo (Table 12; Table 16 adds the rank column)."""

    range_var: str
    predicate: Expr
    selectivity: float
    forward_traversal_cost: float

    @property
    def rank(self) -> float:
        """F / (1 - s): the Algorithm 8.1 ordering key."""
        if self.selectivity >= 1.0:
            return float("inf")
        return self.forward_traversal_cost / (1.0 - self.selectivity)

    def row(self) -> tuple:
        return (
            self.range_var,
            str(self.predicate),
            self.selectivity,
            self.forward_traversal_cost,
            self.rank,
        )


@dataclass
class OtherSelEntry:
    """One row of OtherSelInfo: methods and complex predicates."""

    range_var: str
    predicate: Expr
    selectivity: float
    indexed_access_cost: float | None = None
    sequential_access_cost: float = 0.0
    access_type: str = "sequential"

    def row(self) -> tuple:
        return (
            self.range_var,
            str(self.predicate),
            self.selectivity,
            self.indexed_access_cost,
            self.sequential_access_cost,
            self.access_type,
        )


@dataclass
class SelectionDictionaries:
    """All three dictionaries for one AND-term."""

    imm: list[ImmSelEntry] = field(default_factory=list)
    path: list[PathSelEntry] = field(default_factory=list)
    other: list[OtherSelEntry] = field(default_factory=list)

    def imm_for(self, range_var: str) -> list[ImmSelEntry]:
        return [e for e in self.imm if e.range_var == range_var]

    def path_for(self, range_var: str) -> list[PathSelEntry]:
        return [e for e in self.path if e.range_var == range_var]

    def other_for(self, range_var: str) -> list[OtherSelEntry]:
        return [e for e in self.other if e.range_var == range_var]


_IMM_HEADER = (
    "Range Variable", "Predicate", "Selectivity",
    "Indexed Access Cost", "Sequential Access Cost", "Access Type",
)
_PATH_HEADER = (
    "Range Variable", "Predicate", "Selectivity",
    "Forward Traversal Cost", "cost/(1-fs)",
)


def format_table(header: tuple[str, ...], rows: list[tuple]) -> str:
    """Plain-text table renderer used by the Table 11/12/16 benchmarks."""
    def cell(value) -> str:
        if value is None:
            return "-"
        if isinstance(value, float):
            if value == float("inf"):
                return "inf"
            if 0 < abs(value) < 0.1:
                return f"{value:.2e}"  # the paper's 6.25e-2 style
            return f"{value:.3f}"
        return str(value)

    table = [list(header)] + [[cell(v) for v in row] for row in rows]
    widths = [max(len(row[i]) for row in table) for i in range(len(header))]
    lines = []
    for index, row in enumerate(table):
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        if index == 0:
            lines.append("-+-".join("-" * w for w in widths))
    return "\n".join(lines)


def format_immselinfo(entries: list[ImmSelEntry]) -> str:
    return format_table(_IMM_HEADER, [e.row() for e in entries])


def format_pathselinfo(entries: list[PathSelEntry]) -> str:
    return format_table(_PATH_HEADER, [e.row() for e in entries])
