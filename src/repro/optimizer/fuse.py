"""Join fusion: collapse forward-traversal chains into one set operation.

A path query like Example 8.2's ``v.drivetrain.engine.cylinders = 2``
plans as a chain of FORWARD_TRAVERSAL joins over pipelined leaves (a
BIND, optionally under a residual SELECT).  Algorithm 8.2's greedy
ordering produces either shape:

* **left-deep** (the paper's Example 8.1 print): each join's right side
  is the next leaf -- ``JOIN(JOIN(v, d), leaf(e))``;
* **right-deep**: the most selective tail join runs first and the head
  join matches into its materialised rows --
  ``JOIN(v, JOIN(d, leaf(e)))`` with ``v.drivetrain = d.self``.

Run node by node, each join level batches its own derefs but still pays
per-operator dispatch and materialises an intermediate row set per hop
(the right-deep shape even scans whole extents to build rows the head
join then discards).  Following the collection-join fusion of Odra
(PAPERS.md), this pass rewrites both shapes into a single
:class:`FusedTraversalNode`: the executor collects the frontier OID set
per hop and dereferences it with one page-clustered ``deref_many``
call, applying each hop's include filter and residual predicates in the
same pass.

The rewrite preserves hop order, predicates and join semantics, and is
applied by the kernel only when set-oriented execution is on
(``batch_enabled``), *after* cost-based planning and *before* the
plan-cache store, so fused plans are cached and invalidated by the same
schema/stats stamps as any other plan.  The fused node's estimated cost
aggregates the fused joins (and their absorbed subtrees), keeping
EXPLAIN cost totals stable under fusion.
"""

from __future__ import annotations

from repro.engine.joins import TraversalHop
from repro.optimizer.plan import (
    BindNode,
    DupElimNode,
    FusedTraversalNode,
    JoinNode,
    NamedRef,
    PartitionNode,
    PlanNode,
    ProjectNode,
    SelectNode,
    SortNode,
    UnionNode,
)
from repro.optimizer.planner import QueryPlan

#: Chains contributing fewer hops than this stay ordinary JoinNodes: a
#: single forward traversal already batches its derefs (PR 2's
#: ``_chase``), so fusing it would change plan shapes without changing
#: the I/O.
MIN_HOPS = 2


def fuse_query_plan(plan: QueryPlan, min_hops: int = MIN_HOPS) -> int:
    """Fuse forward-traversal chains in ``plan`` (in place, including
    temporaries); returns the number of FUSED_TRAVERSAL nodes created."""
    state = _FuseState(min_hops)
    rewritten: list[tuple[str, PlanNode]] = []
    for name, temp in plan.temporaries:
        new_temp = state.rewrite(temp)
        if new_temp is not temp:
            state.replaced[id(temp)] = new_temp
        rewritten.append((name, new_temp))
    plan.temporaries = rewritten
    plan.root = state.rewrite(plan.root)
    return state.fused


def _pipelined_leaf(node: PlanNode):
    """(bind, predicates) when the node is a leaf the traversal kernels
    pipeline: a BIND, or a SELECT directly over one."""
    if isinstance(node, BindNode):
        return node, ()
    if isinstance(node, SelectNode) and isinstance(node.input, BindNode):
        return node.input, node.predicates
    return None


def _structured(node: PlanNode) -> bool:
    return (
        isinstance(node, JoinNode)
        and node.method == "FORWARD_TRAVERSAL"
        and node.left_var is not None
        and node.attr is not None
        and node.right_var is not None
    )


def join_hops(node: PlanNode) -> list[TraversalHop] | None:
    """The hops one JoinNode's *right side* contributes when fusible.

    A pipelined leaf binding the join's right variable yields one hop.
    A right side that is itself a pure forward-traversal chain whose
    head leaf binds the right variable (the right-deep shape) yields
    that whole chain as hops -- chasing into the head leaf first, then
    replaying the chain's own hops in execution order.  ``None`` means
    the join is not fusible.
    """
    if not _structured(node):
        return None
    leaf = _pipelined_leaf(node.right)
    if leaf is not None:
        bind, predicates = leaf
        if bind.var != node.right_var:
            return None
        return [TraversalHop(node.left_var, node.attr, node.right_var,
                             bind.class_name, bind.include_classes,
                             predicates)]
    # Right-deep: walk the right side's left spine down to its head.
    spine: list[JoinNode] = []
    cursor = node.right
    while isinstance(cursor, JoinNode):
        if not _structured(cursor):
            return None
        cursor_leaf = _pipelined_leaf(cursor.right)
        if cursor_leaf is None or cursor_leaf[0].var != cursor.right_var:
            return None
        spine.append(cursor)
        cursor = cursor.left
    head = _pipelined_leaf(cursor)
    if head is None or head[0].var != node.right_var:
        return None
    head_bind, head_predicates = head
    hops = [TraversalHop(node.left_var, node.attr, node.right_var,
                         head_bind.class_name, head_bind.include_classes,
                         head_predicates)]
    for join in reversed(spine):
        bind, predicates = _pipelined_leaf(join.right)
        hops.append(TraversalHop(join.left_var, join.attr, join.right_var,
                                 bind.class_name, bind.include_classes,
                                 predicates))
    return hops


class _FuseState:
    def __init__(self, min_hops: int):
        self.min_hops = min_hops
        self.fused = 0
        #: id(old temporary plan) -> its fused replacement, so NamedRef
        #: nodes keep pointing at the plan that is actually in the list.
        self.replaced: dict[int, PlanNode] = {}

    def rewrite(self, node: PlanNode) -> PlanNode:
        if isinstance(node, JoinNode) and join_hops(node) is not None:
            # Walk down the left spine gathering the whole chain.
            chain = [node]
            cursor = node.left
            while isinstance(cursor, JoinNode) \
                    and join_hops(cursor) is not None:
                chain.append(cursor)
                cursor = cursor.left
            hops = [
                hop
                for join in reversed(chain)
                for hop in join_hops(join)
            ]
            if len(hops) >= self.min_hops:
                base = self.rewrite(cursor)
                fused = FusedTraversalNode(base, tuple(hops))
                # The absorbed right subtrees no longer appear as
                # children; fold their costs in to keep totals unchanged.
                fused.estimated_cost = sum(
                    join.estimated_cost + join.right.total_estimated_cost()
                    for join in chain
                )
                fused.estimated_cardinality = node.estimated_cardinality
                self.fused += 1
                return fused
            # Chain too short: fall through and rewrite the children.
        if isinstance(node, NamedRef):
            if node.plan is not None and id(node.plan) in self.replaced:
                node.plan = self.replaced[id(node.plan)]
            return node
        if isinstance(node, JoinNode):
            node.left = self.rewrite(node.left)
            node.right = self.rewrite(node.right)
        elif isinstance(node, (SelectNode, ProjectNode, SortNode,
                               PartitionNode, DupElimNode,
                               FusedTraversalNode)):
            node.input = self.rewrite(node.input)
        elif isinstance(node, UnionNode):
            node.inputs = tuple(
                self.rewrite(child) for child in node.inputs
            )
        return node
