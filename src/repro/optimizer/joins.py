"""Implicit join ordering (Section 8.3, Algorithm 8.2).

A path expression ``p.a1.a2...an`` implies a chain of implicit joins over
classes :math:`C_0, C_1, ..., C_{n-1}`.  The greedy heuristic repeatedly
merges the adjacent pair minimising

.. math::

    f(jc, js) = jc / (1 - js)

where ``jc`` is the minimum cost among the four join techniques and ``js``
the selectivity of the resulting temporary collection (the fraction of the
referencing side that survives -- a pair whose join filters nothing ranks
last).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cost.joincost import best_join_strategy
from repro.cost.params import DatabaseStats
from repro.optimizer.plan import JoinNode, PlanNode
from repro.storage.btree import BTreeParams
from repro.storage.disk import DiskParams

_EPSILON = 1e-9


@dataclass
class ChainLeaf:
    """One class of the join chain, with its already-planned access."""

    class_name: str
    var: str
    cardinality: float
    plan: PlanNode


@dataclass
class _Segment:
    leaves: list[ChainLeaf]
    cardinality: float
    plan: PlanNode

    @property
    def head(self) -> ChainLeaf:
        return self.leaves[0]

    @property
    def tail(self) -> ChainLeaf:
        return self.leaves[-1]


@dataclass
class MergeStep:
    """One iteration of Algorithm 8.2 (a row of our Table 17)."""

    left_classes: tuple[str, ...]
    right_classes: tuple[str, ...]
    attr: str
    strategy: str
    jc: float
    js: float
    rank: float
    result_cardinality: float


@dataclass
class JoinOrderResult:
    plan: PlanNode
    cardinality: float
    steps: list[MergeStep] = field(default_factory=list)
    #: candidate rows computed before the first merge (Table 17 shape)
    initial_estimates: list[MergeStep] = field(default_factory=list)


def order_implicit_joins(
    leaves: list[ChainLeaf],
    link_attrs: list[str],
    stats: DatabaseStats,
    disk: DiskParams,
    join_indexes: dict[str, BTreeParams] | None = None,
    cpu_cost: float | None = None,
) -> JoinOrderResult:
    """Run Algorithm 8.2 over a chain.

    ``leaves[i]`` accesses class :math:`C_i`; ``link_attrs[i]`` is the
    reference attribute of :math:`C_i` targeting :math:`C_{i+1}`.
    ``join_indexes`` maps a link attribute to its binary-join-index
    parameters when one exists.
    """
    if len(leaves) != len(link_attrs) + 1:
        raise ValueError("need one link attribute between adjacent classes")
    if len(leaves) == 1:
        return JoinOrderResult(plan=leaves[0].plan,
                               cardinality=leaves[0].cardinality)
    segments = [_Segment([leaf], leaf.cardinality, leaf.plan)
                for leaf in leaves]
    # Link attribute between adjacent segments, tracked by tail class name.
    links = dict(zip([leaf.class_name for leaf in leaves[:-1]], link_attrs))
    result = JoinOrderResult(plan=segments[0].plan, cardinality=0.0)

    first_round = True
    while len(segments) > 1:
        candidates = []
        for index in range(len(segments) - 1):
            left, right = segments[index], segments[index + 1]
            step = _estimate(left, right, links, stats, disk,
                             join_indexes, cpu_cost)
            candidates.append((step.rank, index, step))
            if first_round:
                result.initial_estimates.append(step)
        first_round = False
        _, index, step = min(candidates, key=lambda item: (item[0], item[1]))
        left, right = segments[index], segments[index + 1]
        joined_plan = JoinNode(
            left=left.plan,
            right=right.plan,
            method=step.strategy,
            predicate_text=(
                f"{left.tail.var}.{step.attr} = {right.head.var}.self"
            ),
            left_var=left.tail.var,
            attr=step.attr,
            right_var=right.head.var,
        )
        joined_plan.estimated_cost = step.jc
        joined_plan.estimated_cardinality = step.result_cardinality
        merged = _Segment(
            leaves=left.leaves + right.leaves,
            cardinality=step.result_cardinality,
            plan=joined_plan,
        )
        segments[index:index + 2] = [merged]
        result.steps.append(step)
    result.plan = segments[0].plan
    result.cardinality = segments[0].cardinality
    return result


def _estimate(
    left: _Segment,
    right: _Segment,
    links: dict[str, str],
    stats: DatabaseStats,
    disk: DiskParams,
    join_indexes: dict[str, BTreeParams] | None,
    cpu_cost: float | None,
) -> MergeStep:
    attr = links[left.tail.class_name]
    class_c = left.tail.class_name
    class_d = right.head.class_name
    k_c = left.cardinality
    k_d = right.cardinality
    kwargs = {}
    if cpu_cost is not None:
        kwargs["cpu_cost"] = cpu_cost
    estimate = best_join_strategy(
        disk, stats, class_c, attr, k_c, k_d,
        join_index=(join_indexes or {}).get(attr),
        **kwargs,
    )
    card_d = max(1, stats.card(class_d))
    fan = stats.fan(attr, class_c)
    result_cardinality = k_c * fan * min(1.0, k_d / card_d)
    js = min(1.0, result_cardinality / k_c) if k_c > 0 else 1.0
    if js >= 1.0 - _EPSILON:
        rank = float("inf")
    else:
        rank = estimate.cost / (1.0 - js)
    return MergeStep(
        left_classes=tuple(leaf.class_name for leaf in left.leaves),
        right_classes=tuple(leaf.class_name for leaf in right.leaves),
        attr=attr,
        strategy=estimate.strategy,
        jc=estimate.cost,
        js=js,
        rank=rank,
        result_cardinality=result_cardinality,
    )
