"""The MOOD query optimizer (Sections 7-8)."""

from repro.optimizer.atomic import AtomicSelectionPlan, plan_atomic_selections
from repro.optimizer.classify import (
    ClassifiedTerm,
    ExplicitJoin,
    ImmediatePredicate,
    OtherPredicate,
    PathPredicate,
    classify_term,
    resolve_path,
    resolve_reference_path,
)
from repro.optimizer.dictionaries import (
    ImmSelEntry,
    OtherSelEntry,
    PathSelEntry,
    SelectionDictionaries,
    format_immselinfo,
    format_pathselinfo,
    format_table,
)
from repro.optimizer.joins import (
    ChainLeaf,
    JoinOrderResult,
    MergeStep,
    order_implicit_joins,
)
from repro.optimizer.paths import (
    brute_force_order,
    forward_path_cost,
    objective,
    order_by_rank,
    rank_order,
    rank_path_predicates,
)
from repro.optimizer.plan import (
    BindNode,
    DupElimNode,
    IndexProbe,
    IndSelNode,
    JoinNode,
    NamedRef,
    PartitionNode,
    PlanNode,
    ProjectNode,
    SelectNode,
    SortNode,
    UnionNode,
    render_plan,
)
from repro.optimizer.planner import Planner, QueryPlan, TermPlanInfo

__all__ = [
    "AtomicSelectionPlan", "BindNode", "ChainLeaf", "ClassifiedTerm",
    "DupElimNode", "ExplicitJoin", "ImmSelEntry", "ImmediatePredicate",
    "IndSelNode", "IndexProbe", "JoinNode", "JoinOrderResult", "MergeStep",
    "NamedRef", "OtherPredicate", "OtherSelEntry", "PartitionNode",
    "PathPredicate", "PathSelEntry", "PlanNode", "Planner", "ProjectNode",
    "QueryPlan", "SelectNode", "SelectionDictionaries", "SortNode",
    "TermPlanInfo", "UnionNode", "brute_force_order", "classify_term",
    "forward_path_cost", "format_immselinfo", "format_pathselinfo",
    "format_table", "objective", "order_by_rank", "order_implicit_joins",
    "plan_atomic_selections", "rank_order", "rank_path_predicates",
    "render_plan", "resolve_path", "resolve_reference_path",
]
