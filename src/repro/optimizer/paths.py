"""Ordering of path expressions (Section 8.2, Algorithm 8.1, Appendix).

Given m path expressions over one bind variable in an AND-term, the
evaluation order minimising

.. math::

    f = F_{i_1} + s_{i_1} F_{i_2} + s_{i_1} s_{i_2} F_{i_3} + \\dots

is obtained by sorting on :math:`F_i / (1 - s_i)` (the Appendix lemma).
``brute_force_order`` enumerates all permutations as an oracle for tests.
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence

from repro.cost.fileops import rndcost
from repro.cost.params import DatabaseStats
from repro.cost.selectivity import PathExpression, fref, path_selectivity
from repro.optimizer.classify import PathPredicate
from repro.optimizer.dictionaries import PathSelEntry
from repro.storage.disk import DiskParams


def forward_path_cost(
    stats: DatabaseStats,
    disk: DiskParams,
    path: PathExpression,
    k0: float | None = None,
) -> float:
    """F_i: the cost of forward-traversing a path expression.

    Starting from ``k0`` objects of C_1 (the full extent by default),
    charge one random access per reference chased at every step (the ftc
    structure of Section 6.1 applied along the chain; the source objects
    themselves are already in hand, so their pages are not charged --
    matching the paper's Table 16 arithmetic, where the one-hop company
    path costs exactly RNDCOST(|Vehicle| * fan) = 520.825 s)."""
    if k0 is None:
        k0 = stats.card(path.classes[0])
    cost = 0.0
    reached = float(k0)
    for i, attr in enumerate(path.reference_attrs):
        owner = path.classes[i]
        fan = stats.fan(attr, owner)
        cost += rndcost(disk, reached * fan)
        reached = fref(stats, path, k0, upto=i + 1)
    return cost


def rank_path_predicates(
    predicates: Sequence[PathPredicate],
    stats: DatabaseStats,
    disk: DiskParams,
    k0: float | None = None,
) -> list[PathSelEntry]:
    """Build PathSelInfo entries (selectivity + forward cost) for ranking."""
    entries = []
    for predicate in predicates:
        selectivity = path_selectivity(
            stats, predicate.path, predicate.op, predicate.constant,
            predicate.constant2,
        )
        cost = forward_path_cost(stats, disk, predicate.path, k0)
        entries.append(
            PathSelEntry(
                range_var=predicate.var,
                predicate=predicate.expr,
                selectivity=selectivity,
                forward_traversal_cost=cost,
            )
        )
    return entries


def order_by_rank(entries: Sequence[PathSelEntry]) -> list[PathSelEntry]:
    """Algorithm 8.1: ascending F/(1-s)."""
    return sorted(entries, key=lambda entry: entry.rank)


def objective(costs: Sequence[float], selectivities: Sequence[float],
              order: Sequence[int]) -> float:
    """The Appendix objective f for a given execution order."""
    total = 0.0
    shrink = 1.0
    for index in order:
        total += shrink * costs[index]
        shrink *= selectivities[index]
    return total


def rank_order(costs: Sequence[float],
               selectivities: Sequence[float]) -> list[int]:
    """Indices sorted by F/(1-s) (Algorithm 8.1 on raw numbers)."""
    def key(i: int) -> float:
        if selectivities[i] >= 1.0:
            return float("inf")
        return costs[i] / (1.0 - selectivities[i])

    return sorted(range(len(costs)), key=key)


def brute_force_order(costs: Sequence[float],
                      selectivities: Sequence[float]) -> tuple[list[int], float]:
    """Exhaustive oracle: the truly optimal order and its objective."""
    best_order: list[int] = list(range(len(costs)))
    best_value = objective(costs, selectivities, best_order)
    for permutation in itertools.permutations(range(len(costs))):
        value = objective(costs, selectivities, permutation)
        if value < best_value - 1e-12:
            best_value = value
            best_order = list(permutation)
    return best_order, best_value
