"""Ordering of atomic selections (Section 8.1).

For the immediate selections on one range variable:

1. compute each predicate's selectivity and the sequential-scan cost;
2. for indexed predicates, compute ``cost_i = INDCOST(1)`` for equality or
   ``RNGXCOST(f_s)`` otherwise, and sort ascending;
3. use the maximum number ``k`` of indexes satisfying

   .. math::

        \\sum_{i=1}^k cost_i + RNDCOST\\big(|C| \\prod_{i=1}^k f_i\\big)
            < SEQCOST(nbpages(C));

4. apply the remaining predicates in increasing order of selectivity
   (the short-circuiting heuristic).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.catalog import Catalog, IndexInfo
from repro.cost.fileops import indcost, rndcost, rngxcost, seqcost
from repro.cost.params import DatabaseStats
from repro.cost.selectivity import (
    DEFAULT_OTHER_SELECTIVITY,
    atomic_selectivity,
)
from repro.optimizer.classify import ImmediatePredicate
from repro.optimizer.dictionaries import ImmSelEntry
from repro.storage.btree import BTreeParams
from repro.storage.disk import DiskParams


@dataclass
class IndexChoice:
    predicate: ImmediatePredicate
    index: IndexInfo
    probe_cost: float
    selectivity: float


@dataclass
class AtomicSelectionPlan:
    """The Section 8.1 decision for one range variable."""

    var: str
    class_name: str
    access_type: str                       # "indexed" | "sequential" | "none"
    chosen_indexes: list[IndexChoice] = field(default_factory=list)
    residual: list[ImmediatePredicate] = field(default_factory=list)
    entries: list[ImmSelEntry] = field(default_factory=list)
    estimated_cost: float = 0.0
    combined_selectivity: float = 1.0
    expected_cardinality: float = 0.0


#: Cost charged for one equality probe of a hash index (directory + bucket).
_HASH_PROBE_PAGES = 2


def plan_atomic_selections(
    predicates: list[ImmediatePredicate],
    var: str,
    class_name: str,
    catalog: Catalog,
    stats: DatabaseStats,
    disk: DiskParams,
    btree_params_of=None,
) -> AtomicSelectionPlan:
    """Apply Section 8.1 to one range variable's immediate selections.

    ``btree_params_of(index_name)`` supplies live Table 9 parameters for
    B+-tree indexes; absent, a B+-tree sized from the class statistics is
    assumed.
    """
    plan = AtomicSelectionPlan(var=var, class_name=class_name,
                               access_type="none")
    if not stats.has_class(class_name):
        # No statistics at all: sequential scan, predicates in given order.
        plan.access_type = "sequential" if predicates else "none"
        plan.residual = list(predicates)
        return plan
    card = stats.card(class_name)
    sequential = seqcost(disk, stats.nbpages(class_name))
    plan.estimated_cost = sequential if predicates or card else 0.0

    scored: list[tuple[ImmediatePredicate, float]] = []
    for predicate in predicates:
        if predicate.is_method:
            selectivity = DEFAULT_OTHER_SELECTIVITY
        else:
            selectivity = atomic_selectivity(
                stats, class_name, predicate.attribute, predicate.op,
                predicate.constant, predicate.constant2,
            )
        scored.append((predicate, selectivity))

    candidates: list[IndexChoice] = []
    for predicate, selectivity in scored:
        if predicate.is_method:
            continue
        indexes = catalog.indexes_on(class_name, predicate.attribute)
        best: IndexChoice | None = None
        for info in indexes:
            probe = _probe_cost(info, predicate, selectivity, stats,
                                class_name, disk, btree_params_of)
            if probe is None:
                continue
            if best is None or probe < best.probe_cost:
                best = IndexChoice(predicate, info, probe, selectivity)
        if best is not None:
            candidates.append(best)

    candidates.sort(key=lambda choice: choice.probe_cost)
    chosen = 0
    best_cost = None
    for k in range(1, len(candidates) + 1):
        probes = sum(c.probe_cost for c in candidates[:k])
        product = 1.0
        for choice in candidates[:k]:
            product *= choice.selectivity
        fetch = rndcost(disk, card * product)
        total = probes + fetch
        if total < sequential:
            chosen = k  # the *maximum* k satisfying the inequality
            best_cost = total
    plan.chosen_indexes = candidates[:chosen]
    if chosen:
        plan.access_type = "indexed"
        plan.estimated_cost = best_cost
    elif predicates:
        plan.access_type = "sequential"
        plan.estimated_cost = sequential

    index_predicates = {id(c.predicate) for c in plan.chosen_indexes}
    residual = [(p, s) for p, s in scored if id(p) not in index_predicates]
    # Increasing estimated selectivity: most filtering first.
    residual.sort(key=lambda pair: pair[1])
    plan.residual = [p for p, _ in residual]

    for predicate, selectivity in scored:
        plan.combined_selectivity *= selectivity
        choice = next(
            (c for c in plan.chosen_indexes if c.predicate is predicate), None
        )
        plan.entries.append(
            ImmSelEntry(
                range_var=var,
                predicate=predicate.expr,
                selectivity=selectivity,
                indexed_access_cost=(choice.probe_cost if choice else
                                     _any_probe_cost(
                                         predicate, selectivity, catalog,
                                         stats, class_name, disk,
                                         btree_params_of)),
                sequential_access_cost=sequential,
                access_type="indexed" if choice else "sequential",
                index_name=choice.index.name if choice else None,
                index_kind=choice.index.kind if choice else None,
            )
        )
    plan.expected_cardinality = card * plan.combined_selectivity
    return plan


def _probe_cost(
    info: IndexInfo,
    predicate: ImmediatePredicate,
    selectivity: float,
    stats: DatabaseStats,
    class_name: str,
    disk: DiskParams,
    btree_params_of,
) -> float | None:
    """cost_i of Section 8.1: INDCOST(1) for '=', RNGXCOST(f_s) otherwise;
    hash indexes serve equality only."""
    if info.kind == "join":
        return None  # binary join indexes do not serve atomic selections
    if info.kind == "hash":
        if predicate.op != "=":
            return None
        return rndcost(disk, _HASH_PROBE_PAGES)
    params = None
    if btree_params_of is not None:
        params = btree_params_of(info.name)
    if params is None:
        params = _assumed_btree(stats, class_name)
    if predicate.op == "=":
        return indcost(disk, params, 1)
    return rngxcost(disk, params, selectivity)


def _any_probe_cost(predicate, selectivity, catalog, stats, class_name, disk,
                    btree_params_of) -> float | None:
    """Indexed-access-cost column for the dictionary even when the index
    was not chosen (None when no index exists)."""
    if predicate.is_method:
        return None
    best = None
    for info in catalog.indexes_on(class_name, predicate.attribute):
        probe = _probe_cost(info, predicate, selectivity, stats, class_name,
                            disk, btree_params_of)
        if probe is not None and (best is None or probe < best):
            best = probe
    return best


def _assumed_btree(stats: DatabaseStats, class_name: str) -> BTreeParams:
    """A plausible B+-tree over |C| keys when live parameters are absent."""
    import math

    card = max(1, stats.card(class_name))
    order = 64
    leaves = max(1, math.ceil(card / order))
    level = 1
    reach = leaves
    while reach > 1:
        level += 1
        reach = math.ceil(reach / order)
    return BTreeParams(v=order, level=level, leaves=leaves, keysize=8,
                       unique=False)
