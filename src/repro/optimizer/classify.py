"""Predicate classification (Section 7).

Within an AND-term, each predicate is classified as:

* **Immediate Selection** -- ``s.A theta c`` where A is an atomic attribute
  or a parameterless method;
* **Path Selection** -- ``s.A1...Am theta c`` over a genuine path (an
  implicit join);
* **Other Selection** -- methods with parameters and complex predicates,
  whose selectivity "is not so easy to calculate";
* **Explicit join** -- predicates relating two range variables, such as the
  Section 3.1 example's ``c.drivetrain.engine = v``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.catalog import Catalog
from repro.core.errors import OptimizerError, UnknownAttributeError
from repro.cost.selectivity import PathExpression
from repro.model.types import is_atomic, is_reference_like, referenced_class
from repro.sql.ast import (
    Between,
    BinOp,
    COMPARISON_OPS,
    Expr,
    Literal,
    MethodCall,
    Path,
)
from repro.sql.rewrite import referenced_variables

_FLIPPED = {"=": "=", "<>": "<>", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


@dataclass(frozen=True)
class ImmediatePredicate:
    """s.A theta c with A atomic (or a parameterless method)."""

    var: str
    attribute: str          # attribute or method name
    op: str                 # comparison op, or "BETWEEN"
    constant: object
    constant2: object = None
    is_method: bool = False
    expr: Expr = None

    def __str__(self) -> str:
        return str(self.expr)


@dataclass(frozen=True)
class PathPredicate:
    """s.A1...Am theta c over a reference path."""

    var: str
    path: PathExpression
    op: str
    constant: object
    constant2: object = None
    expr: Expr = None

    def __str__(self) -> str:
        return str(self.expr)


@dataclass(frozen=True)
class OtherPredicate:
    var: str
    expr: Expr = None

    def __str__(self) -> str:
        return str(self.expr)


@dataclass(frozen=True)
class ExplicitJoin:
    """A predicate relating two range variables.

    ``left_var.left_attrs = right_var.right_attrs``; the canonical paper
    form is a path against a bare variable (``c.drivetrain.engine = v``).
    """

    left_var: str
    left_attrs: tuple[str, ...]
    right_var: str
    right_attrs: tuple[str, ...]
    op: str
    expr: Expr = None

    def __str__(self) -> str:
        return str(self.expr)


@dataclass
class ClassifiedTerm:
    """Classification of one AND-term's predicates."""

    immediate: list[ImmediatePredicate] = field(default_factory=list)
    path: list[PathPredicate] = field(default_factory=list)
    other: list[OtherPredicate] = field(default_factory=list)
    joins: list[ExplicitJoin] = field(default_factory=list)

    def immediate_for(self, var: str) -> list[ImmediatePredicate]:
        return [p for p in self.immediate if p.var == var]

    def path_for(self, var: str) -> list[PathPredicate]:
        return [p for p in self.path if p.var == var]

    def other_for(self, var: str) -> list[OtherPredicate]:
        return [p for p in self.other if p.var == var]


def resolve_path(
    catalog: Catalog, start_class: str, attrs: tuple[str, ...]
) -> PathExpression | None:
    """Resolve attribute names along reference constructors into a
    :class:`PathExpression`, or ``None`` when the chain is not a pure
    reference path ending at an atomic attribute."""
    if not attrs:
        return None
    classes = [start_class]
    for attribute in attrs[:-1]:
        try:
            attr_type = catalog.attribute_type(classes[-1], attribute)
        except UnknownAttributeError:
            return None
        if not is_reference_like(attr_type):
            return None
        target = referenced_class(attr_type)
        if target is None or not catalog.has_class(target):
            return None
        classes.append(target)
    try:
        final_type = catalog.attribute_type(classes[-1], attrs[-1])
    except UnknownAttributeError:
        return None
    if not is_atomic(final_type):
        return None
    return PathExpression(
        classes=tuple(classes),
        reference_attrs=tuple(attrs[:-1]),
        final_attr=attrs[-1],
    )


def resolve_reference_path(
    catalog: Catalog, start_class: str, attrs: tuple[str, ...]
) -> tuple[str, ...] | None:
    """Classes along a pure reference path (used by explicit joins);
    returns the class chain C_0..C_n or None."""
    classes = [start_class]
    for attribute in attrs:
        try:
            attr_type = catalog.attribute_type(classes[-1], attribute)
        except UnknownAttributeError:
            return None
        if not is_reference_like(attr_type):
            return None
        target = referenced_class(attr_type)
        if target is None or not catalog.has_class(target):
            return None
        classes.append(target)
    return tuple(classes)


def classify_term(
    term: list[Expr],
    var_classes: dict[str, str],
    catalog: Catalog,
) -> ClassifiedTerm:
    """Classify the predicates of one AND-term."""
    result = ClassifiedTerm()
    for predicate in term:
        _classify_one(predicate, var_classes, catalog, result)
    return result


def _classify_one(
    predicate: Expr,
    var_classes: dict[str, str],
    catalog: Catalog,
    result: ClassifiedTerm,
) -> None:
    variables = referenced_variables(predicate)
    unknown = variables - set(var_classes)
    if unknown:
        raise OptimizerError(f"unbound range variables {sorted(unknown)}")
    if len(variables) >= 2:
        join = _as_explicit_join(predicate, var_classes)
        if join is not None:
            result.joins.append(join)
        else:
            # Multi-variable but not a recognisable equi-join: keep it as
            # an 'other' filter on its first variable (evaluated after the
            # joins bind every variable).
            result.other.append(
                OtherPredicate(sorted(variables)[0], predicate)
            )
        return
    if not variables:
        # Constant predicates survive simplification only when opaque;
        # treat as 'other' on no variable (planner applies them last).
        result.other.append(OtherPredicate("", predicate))
        return
    var = next(iter(variables))
    simple = _as_simple_comparison(predicate)
    if simple is not None:
        left, op, constant, constant2 = simple
        if isinstance(left, MethodCall) and not left.args \
                and left.receiver.is_variable:
            result.immediate.append(
                ImmediatePredicate(var, left.method, op, constant, constant2,
                                   is_method=True, expr=predicate)
            )
            return
        if isinstance(left, Path) and left.var == var and left.attrs:
            if len(left.attrs) == 1:
                attr_type = None
                try:
                    attr_type = catalog.attribute_type(
                        var_classes[var], left.attrs[0]
                    )
                except UnknownAttributeError:
                    pass
                if attr_type is not None and is_atomic(attr_type):
                    result.immediate.append(
                        ImmediatePredicate(var, left.attrs[0], op, constant,
                                           constant2, expr=predicate)
                    )
                    return
            else:
                path = resolve_path(catalog, var_classes[var], left.attrs)
                if path is not None:
                    result.path.append(
                        PathPredicate(var, path, op, constant, constant2,
                                      expr=predicate)
                    )
                    return
    result.other.append(OtherPredicate(var, predicate))


def _as_simple_comparison(predicate: Expr):
    """Decompose ``lhs theta constant`` (either orientation) or a BETWEEN
    with constant bounds; returns (lhs, op, c, c2) or None."""
    if isinstance(predicate, BinOp) and predicate.op in COMPARISON_OPS:
        if isinstance(predicate.right, Literal):
            return predicate.left, predicate.op, predicate.right.value, None
        if isinstance(predicate.left, Literal):
            return (predicate.right, _FLIPPED[predicate.op],
                    predicate.left.value, None)
        return None
    if isinstance(predicate, Between):
        if isinstance(predicate.low, Literal) and isinstance(
                predicate.high, Literal):
            return (predicate.expr, "BETWEEN", predicate.low.value,
                    predicate.high.value)
    return None


def _as_explicit_join(predicate: Expr,
                      var_classes: dict[str, str]) -> ExplicitJoin | None:
    if not isinstance(predicate, BinOp) or predicate.op not in COMPARISON_OPS:
        return None
    left, right = predicate.left, predicate.right
    if isinstance(left, Path) and isinstance(right, Path):
        if left.var != right.var:
            return ExplicitJoin(
                left_var=left.var,
                left_attrs=left.attrs,
                right_var=right.var,
                right_attrs=right.attrs,
                op=predicate.op,
                expr=predicate,
            )
    return None
