"""Access-plan nodes, printed in the paper's plan notation.

Example 8.1's plan renders exactly in the paper's style::

    JOIN(
        JOIN(
            T1,
            BIND(VehicleDriveTrain, d),
            FORWARD_TRAVERSAL,
            v.drivetrain = d.self),
        SELECT(BIND(VehicleEngine, e), e.cylinders = 2),
        FORWARD_TRAVERSAL,
        d.engine = e.self)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.sql.ast import Expr, OrderItem, Path

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.joins import TraversalHop


@dataclass
class PlanNode:
    """Base plan node; estimated cost/cardinality annotate every node."""

    estimated_cost: float = field(default=0.0, init=False)
    estimated_cardinality: float = field(default=0.0, init=False)

    def children(self) -> list["PlanNode"]:
        return []

    def render(self, indent: int = 0) -> str:
        raise NotImplementedError

    def __str__(self) -> str:
        return self.render()

    def total_estimated_cost(self) -> float:
        return self.estimated_cost + sum(
            child.total_estimated_cost() for child in self.children()
        )

    def walk(self):
        """Pre-order traversal of the subtree (temporaries excluded, like
        :meth:`children`)."""
        yield self
        for child in self.children():
            yield from child.walk()


def _pad(indent: int) -> str:
    return "    " * indent


@dataclass
class BindNode(PlanNode):
    """BIND(Class, var): the extent of a class bound to a range variable.

    ``include_classes`` is the resolved IS-A closure (minus exclusions).
    """

    class_name: str
    var: str
    include_classes: tuple[str, ...] = ()

    def render(self, indent: int = 0) -> str:
        return f"{_pad(indent)}BIND({self.class_name}, {self.var})"


@dataclass
class NamedRef(PlanNode):
    """A reference to an already-planned temporary (the paper's T1)."""

    name: str
    plan: PlanNode | None = None

    def children(self) -> list[PlanNode]:
        return []  # the temporary is rendered separately

    def render(self, indent: int = 0) -> str:
        return f"{_pad(indent)}{self.name}"


@dataclass
class SelectNode(PlanNode):
    """SELECT(input, predicate): filter by interpreted predicates."""

    input: PlanNode
    predicates: tuple[Expr, ...]

    def children(self) -> list[PlanNode]:
        return [self.input]

    def render(self, indent: int = 0) -> str:
        preds = " AND ".join(_expr_text(p) for p in self.predicates)
        inner = self.input.render(0)
        if "\n" in inner:
            return (
                f"{_pad(indent)}SELECT(\n"
                f"{self.input.render(indent + 1)},\n"
                f"{_pad(indent + 1)}{preds})"
            )
        return f"{_pad(indent)}SELECT({inner}, {preds})"


@dataclass(frozen=True)
class IndexProbe:
    """One index lookup inside an INDSEL (Section 8.1 may choose several
    indexes and intersect their OID sets)."""

    index_name: str
    index_kind: str
    predicate: Expr


@dataclass
class IndSelNode(PlanNode):
    """INDSEL(Class, var, probes): index-assisted selection; multiple
    probes intersect."""

    class_name: str
    var: str
    probes: tuple[IndexProbe, ...]
    include_classes: tuple[str, ...] = ()

    def render(self, indent: int = 0) -> str:
        probes = "; ".join(
            f"{p.index_name}[{p.index_kind}]: {_expr_text(p.predicate)}"
            for p in self.probes
        )
        return (
            f"{_pad(indent)}INDSEL({self.class_name}, {self.var}, {probes})"
        )


@dataclass
class JoinNode(PlanNode):
    """JOIN(left, right, method, predicate).

    Implicit joins carry the structured ``left_var.attr = right_var.self``
    triple the executor dispatches on; NESTED_LOOP joins carry the raw
    predicate expression instead (``None`` predicate = cross product).
    """

    left: PlanNode
    right: PlanNode
    method: str
    predicate_text: str
    left_var: str | None = None
    attr: str | None = None
    right_var: str | None = None
    predicate_expr: Expr | None = None

    def children(self) -> list[PlanNode]:
        return [self.left, self.right]

    def render(self, indent: int = 0) -> str:
        return (
            f"{_pad(indent)}JOIN(\n"
            f"{self.left.render(indent + 1)},\n"
            f"{self.right.render(indent + 1)},\n"
            f"{_pad(indent + 1)}{self.method},\n"
            f"{_pad(indent + 1)}{self.predicate_text})"
        )


@dataclass
class FusedTraversalNode(PlanNode):
    """FUSED_TRAVERSAL(input, hop, hop, ...): a chain of forward
    traversals collapsed into one set operation (ROADMAP item 2, after
    Odra's collection-join fusion).

    Each hop chases ``left_var.attr`` into ``right_var``; the executor
    collects the surviving rows' frontier OID set per hop and
    dereferences it with a single page-clustered ``deref_many`` call.
    ``estimated_cost`` aggregates the fused joins' costs so EXPLAIN
    totals are unchanged by fusion.
    """

    input: PlanNode
    hops: tuple["TraversalHop", ...]

    def children(self) -> list[PlanNode]:
        return [self.input]

    @staticmethod
    def _hop_text(hop: "TraversalHop") -> str:
        text = f"{hop.left_var}.{hop.attr} -> {hop.right_var}"
        if hop.predicates:
            preds = " AND ".join(_expr_text(p) for p in hop.predicates)
            text += f" [SELECT {preds}]"
        return text

    def hop_texts(self) -> list[str]:
        return [self._hop_text(hop) for hop in self.hops]

    def render(self, indent: int = 0) -> str:
        hops = ",\n".join(
            f"{_pad(indent + 1)}{text}" for text in self.hop_texts()
        )
        return (
            f"{_pad(indent)}FUSED_TRAVERSAL(\n"
            f"{self.input.render(indent + 1)},\n"
            f"{hops})"
        )


@dataclass
class ProjectNode(PlanNode):
    input: PlanNode
    projections: tuple[Expr, ...]   # empty = all bound variables

    def children(self) -> list[PlanNode]:
        return [self.input]

    def render(self, indent: int = 0) -> str:
        if self.projections:
            columns = ", ".join(_expr_text(p) for p in self.projections)
        else:
            columns = "*"
        return (
            f"{_pad(indent)}PROJECT(\n"
            f"{self.input.render(indent + 1)},\n"
            f"{_pad(indent + 1)}[{columns}])"
        )


@dataclass
class UnionNode(PlanNode):
    """UNION of per-AND-term subaccess plans (Section 7).

    ``key_vars`` are the query's declared range variables: different
    AND-terms may bind different synthetic chain variables, so duplicate
    elimination keys on the declared ones only.
    """

    inputs: tuple[PlanNode, ...]
    key_vars: tuple[str, ...] = ()

    def children(self) -> list[PlanNode]:
        return list(self.inputs)

    def render(self, indent: int = 0) -> str:
        parts = ",\n".join(node.render(indent + 1) for node in self.inputs)
        return f"{_pad(indent)}UNION(\n{parts})"


@dataclass
class SortNode(PlanNode):
    input: PlanNode
    keys: tuple[OrderItem, ...]

    def children(self) -> list[PlanNode]:
        return [self.input]

    def render(self, indent: int = 0) -> str:
        keys = ", ".join(
            f"{item.expr}{'' if item.ascending else ' DESC'}"
            for item in self.keys
        )
        return (
            f"{_pad(indent)}SORT(\n"
            f"{self.input.render(indent + 1)},\n"
            f"{_pad(indent + 1)}HEAP_SORT_WITH_MERGING, [{keys}])"
        )


@dataclass
class PartitionNode(PlanNode):
    """PARTITION for GROUP BY, optionally filtered by HAVING."""

    input: PlanNode
    keys: tuple[Path, ...]
    having: Expr | None = None

    def children(self) -> list[PlanNode]:
        return [self.input]

    def render(self, indent: int = 0) -> str:
        keys = ", ".join(str(k) for k in self.keys)
        text = (
            f"{_pad(indent)}PARTITION(\n"
            f"{self.input.render(indent + 1)},\n"
            f"{_pad(indent + 1)}[{keys}]"
        )
        if self.having is not None:
            text += f",\n{_pad(indent + 1)}HAVING {_expr_text(self.having)}"
        return text + ")"


@dataclass
class DupElimNode(PlanNode):
    input: PlanNode

    def children(self) -> list[PlanNode]:
        return [self.input]

    def render(self, indent: int = 0) -> str:
        return f"{_pad(indent)}DUPELIM(\n{self.input.render(indent + 1)})"


def _expr_text(expr: Expr) -> str:
    text = str(expr)
    # Strip one redundant outer parenthesis pair for readability.
    if text.startswith("(") and text.endswith(")"):
        depth = 0
        for index, ch in enumerate(text):
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
                if depth == 0 and index < len(text) - 1:
                    return text
        return text[1:-1]
    return text


def render_plan(root: PlanNode, temporaries: list[tuple[str, PlanNode]]
                | None = None) -> str:
    """Render a plan with its temporaries, the way the paper prints
    'T1 : JOIN(...)' followed by the final plan."""
    sections = []
    for name, plan in temporaries or []:
        sections.append(f"{name} : {plan.render(0).lstrip()}"
                        if "\n" not in plan.render(0)
                        else f"{name} :\n{plan.render(1)}")
    sections.append(root.render(0))
    return "\n\n".join(sections)
