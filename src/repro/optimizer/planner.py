"""The query planner (Sections 7-8).

Per Section 7, after parsing, simplification and DNF transformation, each
AND-term is planned separately and the subaccess plans are combined by
UNION:

1. per range variable, the atomic (immediate) selections decide between
   index probes and a sequential scan (Section 8.1);
2. each variable's path selections are ordered by ``F/(1-s)``
   (Algorithm 8.1) and each path expands into a chain of implicit joins
   ordered greedily (Algorithm 8.2), earlier paths becoming temporaries
   (the paper's T1) that head later chains;
3. explicit join predicates merge variable groups (reference-path joins
   reuse Algorithm 8.2; anything else becomes a nested loop);
4. remaining 'other' selections apply where their variables are bound;
5. projections apply per term (Figure 7.2's SELECT - JOIN - PROJECT -
   UNION order), then UNION, grouping, duplicate elimination and sorting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.catalog import Catalog
from repro.core.errors import OptimizerError
from repro.cost.params import DatabaseStats
from repro.cost.selectivity import (
    DEFAULT_OTHER_SELECTIVITY,
    path_selectivity,
)
from repro.optimizer.atomic import plan_atomic_selections
from repro.optimizer.classify import (
    ClassifiedTerm,
    ExplicitJoin,
    classify_term,
    resolve_reference_path,
)
from repro.optimizer.dictionaries import (
    OtherSelEntry,
    SelectionDictionaries,
)
from repro.optimizer.joins import ChainLeaf, MergeStep, order_implicit_joins
from repro.optimizer.paths import order_by_rank, rank_path_predicates
from repro.optimizer.plan import (
    BindNode,
    DupElimNode,
    IndexProbe,
    IndSelNode,
    JoinNode,
    NamedRef,
    PartitionNode,
    PlanNode,
    ProjectNode,
    SelectNode,
    SortNode,
    UnionNode,
)
from repro.sql.ast import Expr, Literal, Param, SelectQuery
from repro.sql.rewrite import referenced_variables, simplify, to_dnf
from repro.storage.disk import DiskParams


def _first_param(node) -> Param | None:
    """The first unbound bind parameter anywhere in an AST, or None."""
    import dataclasses

    if isinstance(node, Param):
        return node
    if isinstance(node, tuple):
        for item in node:
            found = _first_param(item)
            if found is not None:
                return found
    elif dataclasses.is_dataclass(node) and not isinstance(node, type):
        for field_info in dataclasses.fields(node):
            found = _first_param(getattr(node, field_info.name))
            if found is not None:
                return found
    return None


@dataclass
class TermPlanInfo:
    """Planning artifacts of one AND-term (for inspection and benches)."""

    plan: PlanNode
    dictionaries: SelectionDictionaries
    classified: ClassifiedTerm
    join_steps: list[MergeStep] = field(default_factory=list)
    initial_join_estimates: list[MergeStep] = field(default_factory=list)
    cardinality: float = 0.0


@dataclass
class QueryPlan:
    root: PlanNode
    temporaries: list[tuple[str, PlanNode]] = field(default_factory=list)
    terms: list[TermPlanInfo] = field(default_factory=list)
    output_vars: tuple[str, ...] = ()

    def render(self) -> str:
        from repro.optimizer.plan import render_plan

        return render_plan(self.root, self.temporaries)


@dataclass
class _VarGroup:
    """A connected set of range variables with one combined plan."""

    vars: set[str]
    plan: PlanNode
    cardinality: float


class Planner:
    """Cost-based MOODSQL planner."""

    def __init__(
        self,
        catalog: Catalog,
        stats: DatabaseStats,
        disk: DiskParams | None = None,
        btree_params_of=None,
        join_indexes=None,
        path_indexes=None,
        cpu_cost: float | None = None,
    ):
        self.catalog = catalog
        self.stats = stats
        self.disk = disk or DiskParams()
        self.btree_params_of = btree_params_of
        self.join_indexes = join_indexes or {}
        #: (head class, path attrs) -> (index name, BTreeParams)
        self.path_indexes = path_indexes or {}
        self.cpu_cost = cpu_cost
        self._temp_counter = 0

    # -- public API ------------------------------------------------------

    def plan_query(self, query: SelectQuery) -> QueryPlan:
        # Selectivity estimation reads predicate constants; parameters
        # must have been replaced with bind-time Literals by now.
        param = _first_param(query)
        if param is not None:
            raise OptimizerError(
                f"unbound parameter {param} reached the optimizer; "
                "bind values via EXECUTE or PreparedStatement.bind first"
            )
        self._temp_counter = 0
        var_classes: dict[str, str] = {}
        var_includes: dict[str, tuple[str, ...]] = {}
        for range_var in query.ranges:
            if range_var.var in var_classes:
                raise OptimizerError(
                    f"duplicate range variable {range_var.var!r}"
                )
            var_classes[range_var.var] = range_var.class_name
            var_includes[range_var.var] = tuple(
                self.catalog.hierarchy.extent_classes(
                    range_var.class_name, list(range_var.minus)
                )
            )
        self._check_projections(query, var_classes)

        where = simplify(query.where) if query.where is not None else None
        if where is None:
            terms = [[]]
        else:
            terms = to_dnf(where)

        plan = QueryPlan(root=BindNode("", ""),
                         output_vars=tuple(var_classes))
        term_plans: list[PlanNode] = []
        for term in terms:
            info = self._plan_term(term, query, var_classes, var_includes,
                                   plan.temporaries)
            plan.terms.append(info)
            term_plans.append(info.plan)
        if not term_plans:   # constant FALSE where-clause
            empty = SelectNode(BindNode(query.ranges[0].class_name,
                                        query.ranges[0].var,
                                        var_includes[query.ranges[0].var]),
                               (Literal(False),))
            term_plans = [empty]
        root = term_plans[0] if len(term_plans) == 1 else UnionNode(
            tuple(term_plans), key_vars=tuple(var_classes)
        )
        if query.group_by:
            root = PartitionNode(root, query.group_by, query.having)
            if query.projections:
                root = ProjectNode(root, query.projections)
        if query.distinct:
            root = DupElimNode(root)
        if query.order_by:
            root = SortNode(root, query.order_by)
        plan.root = root
        return plan

    # -- helpers -----------------------------------------------------------

    def _check_projections(self, query: SelectQuery,
                           var_classes: dict[str, str]) -> None:
        for expr in query.projections:
            unknown = referenced_variables(expr) - set(var_classes)
            if unknown:
                raise OptimizerError(
                    f"projection references unbound variables "
                    f"{sorted(unknown)}"
                )

    def _next_temp(self) -> str:
        self._temp_counter += 1
        return f"T{self._temp_counter}"

    def _synthetic_var(self, seed: str, taken: set[str]) -> str:
        """Fresh range-variable name from a seed (the paper names chain
        variables after the reference attribute: drivetrain -> d)."""
        base = seed[0].lower() if seed else "x"
        candidate = base
        suffix = 1
        while candidate in taken:
            suffix += 1
            candidate = f"{base}{suffix}"
        taken.add(candidate)
        return candidate

    def _class_card(self, class_name: str) -> float:
        if self.stats.has_class(class_name):
            return float(self.stats.card(class_name))
        return 1000.0  # no statistics: a neutral default

    # -- term planning -------------------------------------------------------

    def _plan_term(
        self,
        term: list[Expr],
        query: SelectQuery,
        var_classes: dict[str, str],
        var_includes: dict[str, tuple[str, ...]],
        temporaries: list[tuple[str, PlanNode]],
    ) -> TermPlanInfo:
        classified = classify_term(term, var_classes, self.catalog)
        dictionaries = SelectionDictionaries()
        taken_names = set(var_classes)
        groups: dict[str, _VarGroup] = {}

        # 1. Atomic selections per range variable (Section 8.1).
        for var, class_name in var_classes.items():
            leaf, cardinality = self._plan_var_leaf(
                var, class_name, var_includes[var], classified, dictionaries
            )
            groups[var] = _VarGroup({var}, leaf, cardinality)

        # 2. Path selections per variable (Algorithms 8.1 then 8.2).
        info_steps: list[MergeStep] = []
        initial_estimates: list[MergeStep] = []
        for var in var_classes:
            predicates = classified.path_for(var)
            if not predicates:
                continue
            entries = rank_path_predicates(
                predicates, self.stats, self.disk,
                k0=groups[var].cardinality,
            )
            dictionaries.path.extend(entries)
            ordered = order_by_rank(entries)
            by_expr = {id(e.predicate): p for e, p in zip(entries, predicates)}
            group = groups[var]
            for position, entry in enumerate(ordered):
                predicate = by_expr[id(entry.predicate)]
                # A path index collapses the whole chain into one probe
                # when the range variable is still an unrestricted bind.
                if isinstance(group.plan, BindNode):
                    indexed = self._try_path_index(
                        var, var_classes[var], var_includes[var],
                        predicate, entry,
                    )
                    if indexed is not None:
                        group.plan = indexed
                        group.cardinality = max(
                            1.0, group.cardinality * entry.selectivity
                        )
                        continue
                head_plan = group.plan
                if position > 0:
                    temp_name = self._next_temp()
                    temporaries.append((temp_name, group.plan))
                    head_plan = NamedRef(temp_name, group.plan)
                result = self._expand_path_chain(
                    var, var_classes[var], var_includes[var], predicate,
                    head_plan, group.cardinality, taken_names,
                )
                info_steps.extend(result.steps)
                initial_estimates.extend(result.initial_estimates)
                selectivity = path_selectivity(
                    self.stats, predicate.path, predicate.op,
                    predicate.constant, predicate.constant2,
                )
                group.plan = result.plan
                group.cardinality = max(
                    1.0, group.cardinality * selectivity
                )

        # 3. Explicit joins merge variable groups.
        pending = list(classified.joins)
        leftovers: list[ExplicitJoin] = []
        for join in pending:
            left_group = groups[join.left_var]
            right_group = groups[join.right_var]
            if left_group is right_group:
                leftovers.append(join)  # already connected: plain filter
                continue
            merged = self._plan_explicit_join(
                join, left_group, right_group, var_classes, taken_names,
                info_steps, initial_estimates,
            )
            if merged is None:
                leftovers.append(join)
                continue
            for member in merged.vars:
                groups[member] = merged

        # 4. Remaining joins/cross products and other predicates.
        unique_groups: list[_VarGroup] = []
        for group in groups.values():
            if group not in unique_groups:
                unique_groups.append(group)
        while len(unique_groups) > 1:
            left = unique_groups.pop(0)
            right = unique_groups.pop(0)
            cross = JoinNode(left.plan, right.plan, "NESTED_LOOP", "TRUE",
                             predicate_expr=None)
            cross.estimated_cardinality = left.cardinality * right.cardinality
            merged = _VarGroup(left.vars | right.vars, cross,
                               left.cardinality * right.cardinality)
            unique_groups.insert(0, merged)
        final_group = unique_groups[0]

        residual_filters: list[Expr] = []
        for join in leftovers:
            residual_filters.append(join.expr)
        for other in classified.other:
            if other.var and len(
                    referenced_variables(other.expr)) <= 1:
                continue  # single-var others were applied at the leaf
            residual_filters.append(other.expr)
        plan: PlanNode = final_group.plan
        if residual_filters:
            plan = SelectNode(plan, tuple(residual_filters))
            final_group.cardinality *= (
                DEFAULT_OTHER_SELECTIVITY ** len(residual_filters)
            )

        # 5. Per-term projection (Figure 7.2), unless grouping needs the
        # raw bindings.
        if query.projections and not query.group_by:
            plan = ProjectNode(plan, query.projections)

        return TermPlanInfo(
            plan=plan,
            dictionaries=dictionaries,
            classified=classified,
            join_steps=info_steps,
            initial_join_estimates=initial_estimates,
            cardinality=final_group.cardinality,
        )

    def _plan_var_leaf(
        self,
        var: str,
        class_name: str,
        include_classes: tuple[str, ...],
        classified: ClassifiedTerm,
        dictionaries: SelectionDictionaries,
    ) -> tuple[PlanNode, float]:
        immediate = classified.immediate_for(var)
        atomic = plan_atomic_selections(
            immediate, var, class_name, self.catalog, self.stats, self.disk,
            self.btree_params_of,
        )
        dictionaries.imm.extend(atomic.entries)
        plan: PlanNode
        if atomic.access_type == "indexed":
            probes = tuple(
                IndexProbe(choice.index.name, choice.index.kind,
                           choice.predicate.expr)
                for choice in atomic.chosen_indexes
            )
            plan = IndSelNode(class_name, var, probes, include_classes)
        else:
            plan = BindNode(class_name, var, include_classes)
        plan.estimated_cost = atomic.estimated_cost
        if atomic.residual:
            plan = SelectNode(plan, tuple(p.expr for p in atomic.residual))
        # IS-A semantics: the bind ranges over the resolved class closure,
        # so its cardinality sums the included classes' extents.
        base_card = sum(
            self.stats.card(member)
            for member in include_classes
            if self.stats.has_class(member)
        )
        if base_card == 0:
            base_card = self._class_card(class_name)
        cardinality = base_card * atomic.combined_selectivity
        # Single-variable 'other' selections apply at the leaf too.
        others = [o for o in classified.other_for(var)
                  if len(referenced_variables(o.expr)) == 1]
        if others:
            for other in others:
                dictionaries.other.append(
                    OtherSelEntry(
                        range_var=var,
                        predicate=other.expr,
                        selectivity=DEFAULT_OTHER_SELECTIVITY,
                        sequential_access_cost=plan.estimated_cost,
                    )
                )
            plan = SelectNode(plan, tuple(o.expr for o in others))
            cardinality *= DEFAULT_OTHER_SELECTIVITY ** len(others)
        plan.estimated_cardinality = cardinality
        return plan, max(1.0, cardinality)

    def _try_path_index(self, var, class_name, include_classes,
                        predicate, entry):
        """Plan a path predicate as a single path-index probe when one
        covers the chain and the probe beats the forward traversal."""
        attrs = predicate.path.reference_attrs + (predicate.path.final_attr,)
        found = None
        for (head, path_attrs), (name, params) in self.path_indexes.items():
            if path_attrs != attrs:
                continue
            if self.catalog.hierarchy.is_subclass(class_name, head):
                found = (name, params)
                break
        if found is None:
            return None
        if predicate.op not in ("=", "<", "<=", ">", ">=", "BETWEEN"):
            return None
        name, params = found
        from repro.cost.fileops import indcost, rndcost, rngxcost

        if predicate.op == "=":
            probe_cost = indcost(self.disk, params, 1)
        else:
            probe_cost = rngxcost(self.disk, params, entry.selectivity)
        k0 = self._class_card(class_name)
        fetch_cost = rndcost(self.disk, k0 * entry.selectivity)
        if probe_cost + fetch_cost >= entry.forward_traversal_cost:
            return None
        # The original comparison (path theta literal) doubles as the probe
        # spec and the executor's verification predicate.
        node = IndSelNode(
            class_name, var,
            (IndexProbe(name, "path", predicate.expr),),
            include_classes,
        )
        node.estimated_cost = probe_cost + fetch_cost
        return node

    def _expand_path_chain(
        self,
        var: str,
        class_name: str,
        include_classes: tuple[str, ...],
        predicate,
        head_plan: PlanNode,
        head_cardinality: float,
        taken_names: set[str],
    ):
        """Build the Algorithm 8.2 chain for one path predicate."""
        path = predicate.path
        leaves = [ChainLeaf(class_name, var, max(1.0, head_cardinality),
                            head_plan)]
        # Intermediate classes C_2..C_{m-1} are fresh binds, named after
        # the reference attribute reaching them (drivetrain -> d).
        for index, target in enumerate(path.classes[1:-1]):
            synthetic = self._synthetic_var(path.reference_attrs[index],
                                            taken_names)
            bind = BindNode(target, synthetic,
                            tuple(self.catalog.hierarchy.extent_classes(target)))
            leaves.append(
                ChainLeaf(target, synthetic, self._class_card(target), bind)
            )
        # The final class carries the tail selection A_m theta c.
        final_class = path.classes[-1]
        synthetic = self._synthetic_var(path.reference_attrs[-1], taken_names)
        final_bind = BindNode(
            final_class, synthetic,
            tuple(self.catalog.hierarchy.extent_classes(final_class)),
        )
        from repro.cost.selectivity import atomic_selectivity

        tail_sel = atomic_selectivity(
            self.stats, final_class, path.final_attr, predicate.op,
            predicate.constant, predicate.constant2,
        )
        tail_pred = _retarget_tail_predicate(predicate, synthetic)
        final_plan = SelectNode(final_bind, (tail_pred,))
        leaves.append(
            ChainLeaf(final_class, synthetic,
                      max(1.0, self._class_card(final_class) * tail_sel),
                      final_plan)
        )
        return order_implicit_joins(
            leaves, list(path.reference_attrs), self.stats, self.disk,
            join_indexes=self.join_indexes, cpu_cost=self.cpu_cost,
        )

    def _plan_explicit_join(
        self,
        join: ExplicitJoin,
        left_group: _VarGroup,
        right_group: _VarGroup,
        var_classes: dict[str, str],
        taken_names: set[str],
        info_steps: list[MergeStep],
        initial_estimates: list[MergeStep],
    ) -> _VarGroup | None:
        """Merge two variable groups through an equi-join predicate.

        Reference-path joins (``c.path.ref = v``) become Algorithm 8.2
        chains; anything else falls back to a nested loop."""
        if join.op == "=" and join.left_attrs and not join.right_attrs:
            chain = resolve_reference_path(
                self.catalog, var_classes[join.left_var], join.left_attrs
            )
            target_class = var_classes[join.right_var]
            if chain is not None and (
                self.catalog.hierarchy.is_subclass(chain[-1], target_class)
                or self.catalog.hierarchy.is_subclass(target_class, chain[-1])
            ):
                leaves = [
                    ChainLeaf(var_classes[join.left_var], join.left_var,
                              left_group.cardinality, left_group.plan)
                ]
                for index, middle in enumerate(chain[1:-1]):
                    synthetic = self._synthetic_var(
                        join.left_attrs[index], taken_names
                    )
                    bind = BindNode(
                        middle, synthetic,
                        tuple(self.catalog.hierarchy.extent_classes(middle)),
                    )
                    leaves.append(ChainLeaf(middle, synthetic,
                                            self._class_card(middle), bind))
                leaves.append(
                    ChainLeaf(target_class, join.right_var,
                              right_group.cardinality, right_group.plan)
                )
                result = order_implicit_joins(
                    leaves, list(join.left_attrs), self.stats, self.disk,
                    join_indexes=self.join_indexes, cpu_cost=self.cpu_cost,
                )
                info_steps.extend(result.steps)
                initial_estimates.extend(result.initial_estimates)
                return _VarGroup(
                    left_group.vars | right_group.vars,
                    result.plan,
                    max(1.0, result.cardinality),
                )
        if join.op == "=" and join.right_attrs and not join.left_attrs:
            flipped = ExplicitJoin(
                left_var=join.right_var,
                left_attrs=join.right_attrs,
                right_var=join.left_var,
                right_attrs=(),
                op="=",
                expr=join.expr,
            )
            return self._plan_explicit_join(
                flipped, right_group, left_group, var_classes, taken_names,
                info_steps, initial_estimates,
            )
        # General theta-join: nested loop.
        cross = JoinNode(left_group.plan, right_group.plan, "NESTED_LOOP",
                         str(join.expr), predicate_expr=join.expr)
        cardinality = max(
            1.0,
            left_group.cardinality * right_group.cardinality
            * DEFAULT_OTHER_SELECTIVITY,
        )
        cross.estimated_cardinality = cardinality
        return _VarGroup(left_group.vars | right_group.vars, cross,
                         cardinality)


def _retarget_tail_predicate(predicate, synthetic_var: str) -> Expr:
    """Rewrite ``v.a1...am theta c`` as ``x.am theta c`` for the synthetic
    tail variable x."""
    from repro.sql.ast import Between, BinOp, Path

    tail = Path(synthetic_var, (predicate.path.final_attr,))
    if predicate.op == "BETWEEN":
        return Between(tail, Literal(predicate.constant),
                       Literal(predicate.constant2))
    return BinOp(predicate.op, tail, Literal(predicate.constant))
