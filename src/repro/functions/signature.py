"""Function signatures.

Section 2: *"When a function is invoked through the SQL interpreter, the
signature of the function is created by using class name to which the
function is applied and its parameter list.  This signature is used in
locating the function in the CATALOG."*
"""

from __future__ import annotations

from typing import Any

from repro.core.errors import FunctionError
from repro.storage.oid import OID


def build_signature(class_name: str, function_name: str,
                    parameter_types: list[str]) -> str:
    """The catalog-lookup key: ``Class::name(T1,T2,...)``."""
    return f"{class_name}::{function_name}({','.join(parameter_types)})"


def infer_parameter_type(value: Any) -> str:
    """MOOD type name of an actual argument, for signature construction."""
    if isinstance(value, bool):
        return "Boolean"
    if isinstance(value, int):
        return "Integer" if -(2**31) <= value < 2**31 else "LongInteger"
    if isinstance(value, float):
        return "Float"
    if isinstance(value, str):
        return "Char" if len(value) == 1 else "String"
    if isinstance(value, OID):
        return "Reference"
    raise FunctionError(f"cannot infer parameter type of {value!r}")


def signature_for_call(class_name: str, function_name: str,
                       arguments: list[Any]) -> str:
    return build_signature(
        class_name, function_name,
        [infer_parameter_type(argument) for argument in arguments],
    )


def types_compatible(declared: str, inferred: str) -> bool:
    """Whether an actual of ``inferred`` type binds a ``declared`` formal.

    Widening numeric conversions and string refinements are accepted, as
    the C++ compiler would accept them at the call site.
    """
    if declared == inferred:
        return True
    declared_base = declared.split("(")[0]
    if declared_base == inferred.split("(")[0]:
        return True  # String(32) vs String, Reference(X) vs Reference
    numeric_rank = {"Char": 0, "Integer": 1, "LongInteger": 2, "Float": 3}
    if declared_base in numeric_rank and inferred in numeric_rank:
        return numeric_rank[inferred] <= numeric_rank[declared_base]
    if declared_base == "String" and inferred == "Char":
        return True
    return False
