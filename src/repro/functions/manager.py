"""The Function Manager: dynamic compilation and late binding of methods.

Section 2 describes the paper's central kernel idea: member-function bodies
are *not* interpreted.  They are separately compiled (by C++ in the paper;
by CPython's ``compile`` here, the direct analogue of ``.so`` + ``dld``),
stored per class -- *"every class has its own directory containing its
textual definition and function object files and a shared object"* -- and
dynamically linked at the moment the SQL interpreter first calls them:

* invocation builds a signature from the class name and parameter list and
  locates the function in the CATALOG (inherited implementations are found
  by walking the hierarchy);
* the owner class's *shared object* is loaded into memory on first call and
  *"kept in memory until the scope changes in the program"*
  (:meth:`FunctionManager.end_scope`);
* adding or updating a function preprocesses and recompiles only that
  class's shared object while holding a lock on it -- *"the shared library
  of the class will be unavailable only during the time it takes to write
  the new function.  We provide locking for this operation"*;
* run-time errors inside compiled functions are caught by the kernel's
  Exception class and surfaced *"as if they are interpreted"*
  (:class:`~repro.core.errors.FunctionRuntimeError`).

Method bodies are Python statement suites.  Inside a body, ``self`` is a
:class:`SelfProxy`: attribute reads return the object's state (references
are automatically dereferenced to further proxies, like ``->`` chains), and
method names resolve to bound callables, so methods can call methods with
full late binding.
"""

from __future__ import annotations

import textwrap
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.catalog.catalog import Catalog
from repro.catalog.entities import MoodsFunction
from repro.catalog.typeparse import parse_type
from repro.core.errors import (
    CatalogError,
    CompilationError,
    FunctionNotFoundError,
    FunctionRuntimeError,
    TypeMismatchError,
)
from repro.functions.signature import signature_for_call, types_compatible
from repro.model.types import (
    BooleanType,
    FloatType,
    IntegerType,
    LongIntegerType,
    StringType,
)
from repro.storage.locks import LockMode
from repro.storage.oid import OID

Resolver = Callable[[OID], "Any"]  # OID -> MoodObject


class SelfProxy:
    """The ``self`` seen by method bodies.

    Attribute access returns object state; reference-valued attributes are
    dereferenced into further proxies; method names resolve to bound
    callables dispatched through the Function Manager (late binding).
    """

    def __init__(self, obj, manager: "FunctionManager", resolve: Resolver | None):
        object.__setattr__(self, "_obj", obj)
        object.__setattr__(self, "_manager", manager)
        object.__setattr__(self, "_resolve", resolve)

    @property
    def oid(self) -> OID:
        return self._obj.oid

    @property
    def class_name(self) -> str:
        return self._obj.class_name

    def __getattr__(self, name: str):
        obj = object.__getattribute__(self, "_obj")
        manager = object.__getattribute__(self, "_manager")
        resolve = object.__getattribute__(self, "_resolve")
        if name in obj.state:
            return manager._wrap_value(obj.state[name], resolve)
        methods = manager.catalog.hierarchy.all_methods(obj.class_name)
        if name in methods:
            def bound(*args):
                return manager.invoke(obj, name, list(args), resolve)
            return bound
        raise FunctionRuntimeError(
            f"{obj.class_name}::{name}",
            AttributeError(f"no attribute or method {name!r}"),
        )

    def __setattr__(self, name: str, value) -> None:
        obj = object.__getattribute__(self, "_obj")
        if name not in obj.state:
            raise FunctionRuntimeError(
                f"{obj.class_name}::{name}",
                AttributeError(f"no attribute {name!r} to assign"),
            )
        obj.state[name] = value

    def __repr__(self) -> str:
        obj = object.__getattribute__(self, "_obj")
        return f"<self {obj.class_name}[{obj.oid}]>"


@dataclass
class _SharedObject:
    """The compiled face of one class: its 'shared object file'."""

    class_name: str
    version: int = 0
    functions: dict[str, Any] = field(default_factory=dict)  # name -> code callable


@dataclass
class FunctionManagerStats:
    compiles: int = 0
    loads: int = 0          # shared objects opened into memory
    cache_hits: int = 0     # invocations served by an already-loaded object
    invocations: int = 0

    def reset(self) -> None:
        self.compiles = 0
        self.loads = 0
        self.cache_hits = 0
        self.invocations = 0


class _FunctionCounters:
    """Pre-resolved registry counters (``functions.*``): ``binds`` counts
    late-binding signature resolutions, ``dispatches`` compiled-code calls."""

    __slots__ = ("binds", "dispatches", "compiles", "loads", "cache_hits")

    def __init__(self, component):
        self.binds = component.counter("binds")
        self.dispatches = component.counter("dispatches")
        self.compiles = component.counter("compiles")
        self.loads = component.counter("loads")
        self.cache_hits = component.counter("cache_hits")


class FunctionManager:
    """Adds, updates, deletes and invokes the member functions of classes."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog
        self.stats = FunctionManagerStats()
        # The per-class directories of compiled shared objects.
        self._shared: dict[str, _SharedObject] = {}
        # Shared objects currently loaded "into memory" for this scope.
        self._loaded: set[str] = set()
        self._metrics = None
        registry = getattr(getattr(catalog, "storage", None), "metrics", None)
        if registry is not None:
            self._metrics = _FunctionCounters(registry.component("functions"))

    # -- compilation ------------------------------------------------------

    def _lock_name(self, class_name: str) -> tuple[str, str]:
        return ("shared_object", class_name)

    def _compile_one(self, function: MoodsFunction):
        """Preprocess and compile one member function into a callable."""
        params = ", ".join(name for name, _ in function.parameters)
        header = f"def {function.name}(self{', ' + params if params else ''}):\n"
        body = function.source if function.source.strip() else "pass"
        source = header + textwrap.indent(textwrap.dedent(body), "    ")
        try:
            code = compile(source, f"<{function.signature}>", "exec")
        except SyntaxError as exc:
            raise CompilationError(
                f"cannot compile {function.signature}: {exc}"
            ) from None
        namespace: dict[str, Any] = {}
        exec(code, namespace)
        self.stats.compiles += 1
        if self._metrics is not None:
            self._metrics.compiles.inc()
        return namespace[function.name]

    def _rebuild_shared_object(self, class_name: str) -> None:
        """Recompile the class's shared object under its write lock."""
        locks = self.catalog.storage.locks
        owner = ("function_manager", class_name)
        locks.acquire(owner, self._lock_name(class_name), LockMode.X)
        try:
            shared = _SharedObject(class_name)
            definition = self.catalog.hierarchy.get(class_name)
            for function in definition.methods:
                shared.functions[function.name] = self._compile_one(function)
            shared.version = self._shared.get(class_name, shared).version + 1
            self._shared[class_name] = shared
            self._loaded.discard(class_name)  # stale load dropped
        finally:
            locks.release(owner, self._lock_name(class_name))

    # -- administration (add / update / delete) ---------------------------------

    def add_function(self, function: MoodsFunction) -> None:
        """Define and compile a new member function.

        *"At run-time, adding a new function to the system has no effect on
        the server program"* -- only the owning class's shared object is
        rebuilt.
        """
        self._compile_one(function)  # surface syntax errors before cataloguing
        self.catalog.define_function(function)
        self._rebuild_shared_object(function.owner)

    def update_function(self, function: MoodsFunction) -> None:
        self._compile_one(function)
        self.catalog.update_function(function)
        self._rebuild_shared_object(function.owner)

    def delete_function(self, signature: str) -> None:
        owner = signature.split("::", 1)[0]
        self.catalog.drop_function(signature)
        self._rebuild_shared_object(owner)

    # -- invocation ----------------------------------------------------------

    def _locate(self, class_name: str, function_name: str,
                arguments: list[Any]) -> MoodsFunction:
        """Find the function row: exact signature first, then a
        compatible-arity overload, walking the hierarchy."""
        if self._metrics is not None:
            self._metrics.binds.inc()
        signature = signature_for_call(class_name, function_name, arguments)
        try:
            return self.catalog.function_by_signature(signature)
        except CatalogError:
            pass
        for owner in self.catalog.hierarchy.linearize(class_name):
            definition = self.catalog.hierarchy.get(owner)
            for function in definition.methods:
                if function.name != function_name:
                    continue
                if len(function.parameters) != len(arguments):
                    continue
                from repro.functions.signature import infer_parameter_type

                if all(
                    types_compatible(ptype, infer_parameter_type(arg))
                    for (_, ptype), arg in zip(function.parameters, arguments)
                ):
                    return function
        raise FunctionNotFoundError(
            f"no member function matches {signature}"
        )

    def _ensure_loaded(self, class_name: str) -> _SharedObject:
        """Open the class's shared object file and load it into memory."""
        if class_name not in self._shared:
            self._rebuild_shared_object(class_name)
        if class_name in self._loaded:
            self.stats.cache_hits += 1
            if self._metrics is not None:
                self._metrics.cache_hits.inc()
        else:
            # Opening the shared object requires it not being rewritten.
            locks = self.catalog.storage.locks
            owner = ("function_manager_load", class_name)
            locks.acquire(owner, self._lock_name(class_name), LockMode.S)
            try:
                self._loaded.add(class_name)
                self.stats.loads += 1
                if self._metrics is not None:
                    self._metrics.loads.inc()
            finally:
                locks.release(owner, self._lock_name(class_name))
        return self._shared[class_name]

    def invoke(self, obj, function_name: str, arguments: list[Any] | None = None,
               resolve: Resolver | None = None) -> Any:
        """Invoke a member function on an object, with late binding.

        ``resolve`` dereferences OIDs so method bodies can chase
        references; errors raised by the compiled body surface as
        :class:`FunctionRuntimeError` (the paper's Exception class).
        """
        arguments = arguments or []
        self.stats.invocations += 1
        if self._metrics is not None:
            self._metrics.dispatches.inc()
        function = self._locate(obj.class_name, function_name, arguments)
        shared = self._ensure_loaded(function.owner)
        callable_ = shared.functions.get(function.name)
        if callable_ is None:  # defined but not yet compiled (catalog reload)
            self._rebuild_shared_object(function.owner)
            shared = self._ensure_loaded(function.owner)
            callable_ = shared.functions[function.name]
        proxy = SelfProxy(obj, self, resolve)
        wrapped_args = [self._wrap_value(a, resolve) for a in arguments]
        try:
            result = callable_(proxy, *wrapped_args)
        except FunctionRuntimeError:
            raise
        except Exception as exc:  # the kernel's Exception class catches all
            raise FunctionRuntimeError(function.signature, exc) from exc
        return self._coerce_return(function, result)

    def _wrap_value(self, value: Any, resolve: Resolver | None) -> Any:
        if isinstance(value, OID) and resolve is not None and not value.is_null:
            return SelfProxy(resolve(value), self, resolve)
        if isinstance(value, list):
            return [self._wrap_value(v, resolve) for v in value]
        if isinstance(value, (set, frozenset)):
            return [self._wrap_value(v, resolve) for v in sorted(value, key=repr)]
        return value

    def _coerce_return(self, function: MoodsFunction, result: Any) -> Any:
        """Cast the result to the declared return type (C++ semantics)."""
        if result is None:
            return None
        if isinstance(result, SelfProxy):
            return object.__getattribute__(result, "_obj").oid
        declared = parse_type(function.return_type)
        if isinstance(declared, (IntegerType, LongIntegerType)):
            if isinstance(result, (int, float)):
                return int(result)
        elif isinstance(declared, FloatType):
            if isinstance(result, (int, float)):
                return float(result)
        elif isinstance(declared, BooleanType):
            return bool(result)
        elif isinstance(declared, StringType) and isinstance(result, str):
            return result
        try:
            return declared.validate(result)
        except TypeMismatchError as exc:
            raise FunctionRuntimeError(function.signature, exc) from None

    # -- scope management -------------------------------------------------------

    def end_scope(self) -> None:
        """Unload shared objects: *"Function is kept in memory until the
        scope changes in the program."*"""
        self._loaded.clear()

    def loaded_classes(self) -> list[str]:
        return sorted(self._loaded)

    def shared_object_version(self, class_name: str) -> int:
        shared = self._shared.get(class_name)
        return shared.version if shared else 0
