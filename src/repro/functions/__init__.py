"""Function Manager: dynamic compilation and late binding of member functions."""

from repro.functions.manager import FunctionManager, FunctionManagerStats, SelfProxy
from repro.functions.signature import (
    build_signature,
    infer_parameter_type,
    signature_for_call,
    types_compatible,
)

__all__ = [
    "FunctionManager",
    "FunctionManagerStats",
    "SelfProxy",
    "build_signature",
    "infer_parameter_type",
    "signature_for_call",
    "types_compatible",
]
