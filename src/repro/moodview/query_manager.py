"""The SQL-based query manager (Section 9.3).

*"Query manager provides a query editor with facilities for accessing
previous queries in a session."*  Results render as plain-text tables;
whole-object projections show the object's class and OID.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import MoodError
from repro.core.kernel import ExplainResult, MoodKernel, QueryResult
from repro.model.objects import MoodObject


@dataclass
class HistoryEntry:
    sql: str
    ok: bool
    rows: int = 0
    error: str = ""


@dataclass
class QueryManager:
    kernel: MoodKernel
    history: list[HistoryEntry] = field(default_factory=list)

    def run(self, sql: str) -> QueryResult:
        """Execute a query, recording it in the session history."""
        try:
            result = self.kernel.execute(sql)
        except MoodError as exc:
            self.history.append(HistoryEntry(sql, ok=False, error=str(exc)))
            raise
        rows = len(result) if isinstance(result, QueryResult) else 0
        self.history.append(HistoryEntry(sql, ok=True, rows=rows))
        if not isinstance(result, QueryResult):
            raise MoodError("the query manager runs SELECT statements")
        return result

    def explain(self, sql: str, analyze: bool = True) -> str:
        """``EXPLAIN [ANALYZE]`` a query and return the rendered report
        (a bare SELECT is prefixed); recorded in the session history."""
        text = sql.strip().rstrip(";")
        if not text.upper().startswith("EXPLAIN"):
            text = ("EXPLAIN ANALYZE " if analyze else "EXPLAIN ") + text
        try:
            result = self.kernel.execute(text)
        except MoodError as exc:
            self.history.append(HistoryEntry(text, ok=False, error=str(exc)))
            raise
        if not isinstance(result, ExplainResult):
            raise MoodError("explain runs SELECT statements")
        rows = len(result.result) if result.result is not None else 0
        self.history.append(HistoryEntry(text, ok=True, rows=rows))
        return result.render()

    def previous(self, offset: int = 1) -> str:
        """Access a previous query of the session (1 = most recent)."""
        if offset < 1 or offset > len(self.history):
            raise MoodError(f"no history entry {offset}")
        return self.history[-offset].sql

    def rerun_previous(self, offset: int = 1) -> QueryResult:
        return self.run(self.previous(offset))

    def history_listing(self) -> str:
        lines = ["# | ok | rows | query"]
        for index, entry in enumerate(self.history, start=1):
            status = "y" if entry.ok else "n"
            summary = entry.sql.replace("\n", " ")
            if len(summary) > 60:
                summary = summary[:57] + "..."
            lines.append(f"{index} | {status}  | {entry.rows:4d} | {summary}")
        return "\n".join(lines)

    # -- result rendering -------------------------------------------------------

    @staticmethod
    def render_result(result: QueryResult, limit: int = 20) -> str:
        header = list(result.columns)
        body = []
        for row in result.rows[:limit]:
            body.append([_cell(value) for value in row])
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body)) if body
            else len(header[i])
            for i in range(len(header))
        ]
        lines = [
            " | ".join(h.ljust(w) for h, w in zip(header, widths)),
            "-+-".join("-" * w for w in widths),
        ]
        for row in body:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        if len(result.rows) > limit:
            lines.append(f"... {len(result.rows) - limit} more rows")
        lines.append(f"({len(result.rows)} rows)")
        return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, MoodObject):
        return f"{value.class_name}[{value.oid}]"
    if value is None:
        return "NULL"
    return str(value)
