"""The class designer and method tool (Figure 9.2).

MoodView lets the user add/drop/rename attributes and create/update/delete
methods.  Per Section 9.4, *"All the database operations performed by the
user through MoodView are converted to SQL statements and the
interpretation of SQL statements is performed by the Kernel"* -- so every
mutation here is issued as MOODSQL text through ``kernel.execute``.
"""

from __future__ import annotations

from repro.core.kernel import MoodKernel


class ClassDesigner:
    """Graphical type designer: schema mutations as SQL."""

    def __init__(self, kernel: MoodKernel):
        self.kernel = kernel
        self.issued_sql: list[str] = []

    def _run(self, sql: str):
        self.issued_sql.append(sql)
        return self.kernel.execute(sql)

    def create_class(self, name: str,
                     attributes: list[tuple[str, str]] | None = None,
                     superclasses: list[str] | None = None):
        parts = [f"CREATE CLASS {name}"]
        if superclasses:
            parts.append("INHERITS FROM " + ", ".join(superclasses))
        if attributes:
            fields = ", ".join(f"{a} {t}" for a, t in attributes)
            parts.append(f"TUPLE ({fields})")
        return self._run(" ".join(parts))

    def drop_class(self, name: str):
        return self._run(f"DROP CLASS {name}")

    def add_attribute(self, class_name: str, attribute: str, type_text: str):
        return self._run(
            f"ALTER CLASS {class_name} ADD ATTRIBUTE {attribute} {type_text}"
        )

    def drop_attribute(self, class_name: str, attribute: str):
        return self._run(
            f"ALTER CLASS {class_name} DROP ATTRIBUTE {attribute}"
        )

    def rename_attribute(self, class_name: str, old: str, new: str):
        return self._run(
            f"ALTER CLASS {class_name} RENAME ATTRIBUTE {old} TO {new}"
        )


class MethodTool:
    """Figure 9.2(a): create, update and delete methods; view bodies."""

    def __init__(self, kernel: MoodKernel):
        self.kernel = kernel
        self.issued_sql: list[str] = []

    def _run(self, sql: str):
        self.issued_sql.append(sql)
        return self.kernel.execute(sql)

    def define_method(self, class_name: str, name: str,
                      parameters: list[tuple[str, str]],
                      return_type: str, body: str):
        params = ", ".join(f"{p} {t}" for p, t in parameters)
        return self._run(
            f"CREATE METHOD {class_name}::{name}({params}) {return_type} "
            "{ " + body + " }"
        )

    def drop_method(self, class_name: str, name: str,
                    parameter_types: list[str] | None = None):
        types = ", ".join(parameter_types or [])
        return self._run(f"DROP METHOD {class_name}::{name}({types})")

    def method_presentation(self, class_name: str, name: str) -> str:
        """Figure 9.2(a): name, return type, parameters, applicable
        classes, and the body."""
        method = self.kernel.catalog.hierarchy.resolve_method(class_name,
                                                              name)
        applicable = [method.owner] + \
            self.kernel.catalog.hierarchy.subclasses(method.owner)
        lines = [
            "+--- Method Presentation " + "-" * 25,
            f"| Name        : {method.name}",
            f"| Return Type : {method.return_type}",
            "| Parameters  : " + (
                ", ".join(f"{p} {t}" for p, t in method.parameters)
                or "(none)"
            ),
            f"| Applicable Classes: {', '.join(applicable)}",
            "| Body:",
        ]
        body = method.source or "(defined externally)"
        for line in body.splitlines() or [body]:
            lines.append(f"|   {line}")
        lines.append("+" + "-" * 49)
        return "\n".join(lines)
