"""MoodView, the graphical user interface (Section 9), in text mode."""

from repro.moodview.admin_tool import AdminTool
from repro.moodview.class_designer import ClassDesigner, MethodTool
from repro.moodview.cpp_view import CppView
from repro.moodview.environment import MoodView
from repro.moodview.object_browser import ObjectBrowser
from repro.moodview.query_manager import HistoryEntry, QueryManager
from repro.moodview.schema_browser import SchemaBrowser, initial_window
from repro.moodview.spatial_tool import SpatialTool
from repro.moodview.text_editor import TextEditor

__all__ = [
    "AdminTool", "ClassDesigner", "CppView", "HistoryEntry", "MethodTool",
    "MoodView", "ObjectBrowser", "QueryManager", "SchemaBrowser",
    "SpatialTool", "TextEditor", "initial_window",
]
