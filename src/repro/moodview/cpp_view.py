"""Data definition in C++ (Figure 9.1(b)).

MoodView displays class hierarchies defined in C++ (via the modified
cfront) and converts graphically designed schemas back into C++ code.
Both directions run through :mod:`repro.catalog.cppfront`.
"""

from __future__ import annotations

from repro.catalog.cppfront import generate_headers, parse_cpp
from repro.catalog.entities import MoodsFunction
from repro.core.kernel import MoodKernel


class CppView:
    def __init__(self, kernel: MoodKernel):
        self.kernel = kernel

    def import_cpp(self, source: str) -> list[str]:
        """Define classes from C++ source (cfront extracts catalog info and
        method signatures; out-of-line bodies are compiled by the Function
        Manager).  Returns the names defined, in dependency order."""
        classes, bodies = parse_cpp(source)
        by_name = {c.name: c for c in classes}
        defined: list[str] = []

        def define(name: str) -> None:
            if name in defined or self.kernel.catalog.has_class(name):
                return
            parsed = by_name[name]
            for base in parsed.bases:
                if base in by_name:
                    define(base)
            self.kernel.catalog.define_class(
                name,
                attributes=parsed.attributes,
                superclasses=parsed.bases,
                methods=parsed.methods,
            )
            defined.append(name)

        for name in by_name:
            define(name)
        # Attach out-of-line bodies through the Function Manager.
        for body in bodies:
            function = MoodsFunction(
                owner=body.owner,
                name=body.name,
                return_type=body.return_type,
                parameters=body.parameters,
                source=body.body,
            )
            existing = self.kernel.catalog.class_def(body.owner).own_method(
                body.name
            )
            if existing is not None:
                function.parameters = existing.parameters
                self.kernel.functions.update_function(function)
            else:
                self.kernel.functions.add_function(function)
        return defined

    def export_cpp(self, class_names: list[str] | None = None) -> str:
        """C++ headers for (part of) the schema, superclasses first."""
        names = class_names or self.kernel.catalog.class_names()
        return generate_headers(self.kernel.catalog.hierarchy, names)
