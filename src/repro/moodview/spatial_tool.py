"""The graphical indexing tool for spatial data: R-trees (abstract,
Section 9).

Indexes objects by two numeric attributes into an R-tree, answers window
and nearest-neighbour queries, and renders an ASCII 'map' -- the text-mode
stand-in for the graphical tool.
"""

from __future__ import annotations

from repro.core.errors import ExecutionError
from repro.core.kernel import MoodKernel
from repro.model.objects import MoodObject
from repro.storage.rtree import Rect, RTree


class SpatialTool:
    """R-tree indexing of a class by two numeric attributes."""

    def __init__(self, kernel: MoodKernel):
        self.kernel = kernel
        self._indexes: dict[str, tuple[RTree, str, str, str]] = {}

    def create_spatial_index(self, name: str, class_name: str,
                             x_attr: str, y_attr: str) -> RTree:
        if name in self._indexes:
            raise ExecutionError(f"spatial index {name!r} already exists")
        self.kernel.catalog.hierarchy.attribute(class_name, x_attr)
        self.kernel.catalog.hierarchy.attribute(class_name, y_attr)
        tree = self.kernel.storage.create_rtree_index(name)
        for obj in self.kernel.objects.iter_extent(class_name, deep=True):
            x = obj.state.get(x_attr)
            y = obj.state.get(y_attr)
            if x is not None and y is not None:
                tree.insert(Rect.point(float(x), float(y)), obj.oid)
        self._indexes[name] = (tree, class_name, x_attr, y_attr)
        return tree

    def _index(self, name: str) -> tuple[RTree, str, str, str]:
        try:
            return self._indexes[name]
        except KeyError:
            raise ExecutionError(f"no spatial index {name!r}") from None

    def window_query(self, name: str, min_x: float, min_y: float,
                     max_x: float, max_y: float) -> list[MoodObject]:
        tree, _, _, _ = self._index(name)
        hits = tree.search(Rect(min_x, min_y, max_x, max_y))
        return [self.kernel.objects.deref(oid) for _, oid in hits]

    def nearest(self, name: str, x: float, y: float,
                k: int = 1) -> list[MoodObject]:
        tree, _, _, _ = self._index(name)
        return [
            self.kernel.objects.deref(oid)
            for _, oid in tree.nearest(x, y, k)
        ]

    def insert_object(self, name: str, obj: MoodObject) -> None:
        tree, _, x_attr, y_attr = self._index(name)
        tree.insert(
            Rect.point(float(obj.state[x_attr]), float(obj.state[y_attr])),
            obj.oid,
        )

    def remove_object(self, name: str, obj: MoodObject) -> bool:
        tree, _, x_attr, y_attr = self._index(name)
        return tree.delete(
            Rect.point(float(obj.state[x_attr]), float(obj.state[y_attr])),
            obj.oid,
        )

    # -- rendering ------------------------------------------------------------

    def render_map(self, name: str, width: int = 48, height: int = 16,
                   window: Rect | None = None) -> str:
        """ASCII map: '*' per indexed point ('#' where several collide),
        with the query window outlined when given."""
        tree, class_name, x_attr, y_attr = self._index(name)
        entries = list(tree.all_entries())
        if not entries:
            return "(empty spatial index)"
        min_x = min(rect.min_x for rect, _ in entries)
        max_x = max(rect.max_x for rect, _ in entries)
        min_y = min(rect.min_y for rect, _ in entries)
        max_y = max(rect.max_y for rect, _ in entries)
        span_x = max(max_x - min_x, 1e-9)
        span_y = max(max_y - min_y, 1e-9)
        grid = [[" "] * width for _ in range(height)]

        def cell(x: float, y: float) -> tuple[int, int]:
            column = int((x - min_x) / span_x * (width - 1))
            row = int((y - min_y) / span_y * (height - 1))
            column = min(max(column, 0), width - 1)   # clamp windows that
            row = min(max(row, 0), height - 1)        # exceed the data
            return (height - 1 - row), column  # north up

        if window is not None:
            top_row, left = cell(window.min_x, window.max_y)
            bottom_row, right = cell(window.max_x, window.min_y)
            for column in range(left, right + 1):
                grid[top_row][column] = "-"
                grid[bottom_row][column] = "-"
            for row in range(top_row, bottom_row + 1):
                grid[row][left] = "|"
                grid[row][right] = "|"
        for rect, _ in entries:
            row, column = cell(rect.min_x, rect.min_y)
            grid[row][column] = "#" if grid[row][column] == "*" else "*"
        lines = [
            f"R-tree {name!r} on {class_name}({x_attr}, {y_attr}): "
            f"{len(entries)} entries, height {tree.height}"
        ]
        lines.append("+" + "-" * width + "+")
        for row in grid:
            lines.append("|" + "".join(row) + "|")
        lines.append("+" + "-" * width + "+")
        lines.append(
            f"x: [{min_x:g}, {max_x:g}]  y: [{min_y:g}, {max_y:g}]"
        )
        return "\n".join(lines)

    def structure_report(self, name: str) -> str:
        tree, class_name, x_attr, y_attr = self._index(name)
        return (
            f"spatial index {name!r}: class={class_name} "
            f"axes=({x_attr}, {y_attr}) entries={len(tree)} "
            f"height={tree.height} node_reads={tree.stats.node_reads} "
            f"splits={tree.stats.splits}"
        )
