"""The server monitor panel: MoodView's window onto the telemetry layer.

Where :class:`~repro.moodview.admin_tool.AdminTool` reports on *storage*
state (extents, buffer, WAL), the monitor panel reports on *server*
state: the SYS$ monitor views, rendered as text tables.  It reads the
views through :attr:`MoodKernel.system_views`, so what it shows is
exactly what a remote client sees via ``SELECT ... FROM SYS$...``.
"""

from __future__ import annotations

from repro.core.kernel import MoodKernel


class MonitorPanel:
    def __init__(self, kernel: MoodKernel):
        self.kernel = kernel

    # -- one report per SYS$ view -------------------------------------------

    def view_report(self, name: str, limit: int | None = None) -> str:
        """One SYS$ view as an aligned ``col | col`` text table."""
        view = self.kernel.system_views.get(name)
        columns = [column for column, _ in view.columns]
        rows = view.supplier()
        if limit is not None:
            rows = rows[:limit]
        lines = [" | ".join(columns)]
        for row in rows:
            lines.append(" | ".join(
                _render_cell(row.get(column)) for column in columns
            ))
        if not rows:
            lines.append("(empty)")
        return "\n".join(lines)

    def sessions_report(self) -> str:
        return self.view_report("SYS$SESSIONS")

    def statements_report(self, limit: int = 20) -> str:
        return self.view_report("SYS$STATEMENTS", limit=limit)

    def locks_report(self) -> str:
        return self.view_report("SYS$LOCKS")

    def counters_report(self) -> str:
        return self.view_report("SYS$COUNTERS")

    def events_report(self, limit: int = 20) -> str:
        return self.view_report("SYS$EVENTS", limit=limit)

    def plans_report(self, limit: int = 20) -> str:
        """The plan cache: SYS$PLANS rows under a hit-rate headline."""
        stats = self.kernel.plan_cache.stats()
        headline = (
            f"enabled={'yes' if stats['enabled'] else 'no'} "
            f"size={stats['size']}/{stats['capacity']} "
            f"hit_rate={stats['hit_rate']:.2%} "
            f"(hits={stats['hits']:.0f} misses={stats['misses']:.0f} "
            f"invalidations={stats['invalidations']:.0f} "
            f"evictions={stats['evictions']:.0f})"
        )
        return f"{headline}\n{self.view_report('SYS$PLANS', limit=limit)}"

    def slow_query_report(self, limit: int = 10) -> str:
        traces = self.kernel.slow_log.top(limit)
        if not traces:
            return (
                f"(no statements over "
                f"{self.kernel.slow_log.threshold_ms:.0f} ms)"
            )
        blocks = []
        for trace in traces:
            header = (
                f"{trace.trace_id} [{trace.kind}] total={trace.total_ms:.1f}ms "
                f"lock={trace.lock_wait_ms:.1f}ms queue={trace.queue_wait_ms:.1f}ms "
                f"io_pages={trace.io_pages} :: {trace.statement}"
            )
            plan = trace.span_report()
            blocks.append(header if not plan else f"{header}\n{plan}")
        return "\n".join(blocks)

    def render(self) -> str:
        sections = [
            ("SESSIONS", self.sessions_report()),
            ("STATEMENTS", self.statements_report()),
            ("LOCKS", self.locks_report()),
            ("EVENTS", self.events_report()),
            ("PLANS", self.plans_report()),
            ("SLOW QUERIES", self.slow_query_report()),
            ("COUNTERS", self.counters_report()),
        ]
        return "\n\n".join(
            f"== {title} ==\n{body}" for title, body in sections
        )


class ClusterMonitorPanel(MonitorPanel):
    """The monitor panel pointed at a sharded router.

    Bound to the router's view database, every inherited report is
    automatically *federated* (rows carry a ``shard`` column; -1 is the
    router itself), and three cluster-only sections appear: the shard
    topology, distributed-transaction branches, and shard health."""

    def __init__(self, router):
        super().__init__(router._viewdb.kernel)
        self.router = router

    def shards_report(self) -> str:
        return self.view_report("SYS$SHARDS")

    def txns_report(self) -> str:
        return self.view_report("SYS$TXNS")

    def shard_health_report(self) -> str:
        return self.view_report("SYS$SHARD_HEALTH")

    def render(self) -> str:
        cluster = [
            ("SHARDS", self.shards_report()),
            ("SHARD HEALTH", self.shard_health_report()),
            ("TXNS", self.txns_report()),
        ]
        head = "\n\n".join(
            f"== {title} ==\n{body}" for title, body in cluster
        )
        return f"{head}\n\n{super().render()}"


def _render_cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    if isinstance(value, bool):
        return "yes" if value else "no"
    return str(value)
