"""The schema browser and class presentations (Figures 9.1-9.2).

Text-mode renderings of MoodView's windows: the initial tool panel, the
class-hierarchy DAG, the class presentation card and the type designer's
attribute table.  Everything is read through the kernel's catalog, as the
paper requires.
"""

from __future__ import annotations

from repro.catalog.catalog import Catalog
from repro.core.kernel import MoodKernel
from repro.moodview import dag_layout

TOOLS = (
    "Schema Browser",
    "Class Designer",
    "Method Tool",
    "Object Browser",
    "Query Manager",
    "Admin Tool",
    "Spatial Tool (R-Trees)",
    "C++ View",
    "Text Editor",
)


def initial_window() -> str:
    """Figure 9.1(a): the icon panel shown on entering the environment."""
    width = max(len(tool) for tool in TOOLS) + 6
    lines = ["+" + "-" * width + "+",
             "|" + "MoodView".center(width) + "|",
             "+" + "-" * width + "+"]
    for tool in TOOLS:
        lines.append("|" + f"  [{tool}]".ljust(width) + "|")
    lines.append("+" + "-" * width + "+")
    return "\n".join(lines)


class SchemaBrowser:
    """Design, browse and modify the database schema interactively."""

    def __init__(self, kernel: MoodKernel):
        self.kernel = kernel

    @property
    def catalog(self) -> Catalog:
        return self.kernel.catalog

    def hierarchy_drawing(self, include_system: bool = False) -> str:
        """Figure 9.1(c): the class-hierarchy DAG."""
        nodes = self.catalog.class_names(include_system=include_system)
        edges = [
            (parent, child)
            for parent, child in self.catalog.hierarchy.edges()
            if parent in nodes and child in nodes
        ]
        return dag_layout.render(nodes, edges)

    def crossings(self) -> int:
        nodes = self.catalog.class_names()
        edges = self.catalog.hierarchy.edges()
        return dag_layout.layout(nodes, edges).crossings

    def class_presentation(self, class_name: str) -> str:
        """Figure 9.2(b): type name/id, super/subclasses, methods,
        attributes."""
        definition = self.catalog.class_def(class_name)
        hierarchy = self.catalog.hierarchy
        lines = [
            "+--- Class Presentation " + "-" * 26,
            f"| Type Name : {definition.name}",
            f"| Type Id   : {definition.type_id}",
            f"| Class Type: "
            f"{'System Class' if definition.is_system else 'User Class'}"
            f"{'' if definition.is_class else ' (Type: no extent)'}",
            f"| Superclasses: "
            f"{', '.join(definition.superclasses) or '(none)'}",
            f"| Subclasses  : "
            f"{', '.join(hierarchy.subclasses(class_name, transitive=False)) or '(none)'}",
            "| Methods:",
        ]
        methods = hierarchy.all_methods(class_name)
        if methods:
            for name in sorted(methods):
                method = methods[name]
                inherited = "" if method.owner == class_name \
                    else f"   (from {method.owner})"
                lines.append(f"|   {method.signature} "
                             f"{method.return_type}{inherited}")
        else:
            lines.append("|   (none)")
        lines.append("| Attributes:")
        attributes = hierarchy.all_attributes(class_name)
        if attributes:
            for attribute in attributes:
                inherited = "" if attribute.owner == class_name \
                    else f"   (from {attribute.owner})"
                lines.append(
                    f"|   {attribute.name} : {attribute.type_name}{inherited}"
                )
        else:
            lines.append("|   (none)")
        lines.append("+" + "-" * 49)
        return "\n".join(lines)

    def attribute_table(self, class_name: str) -> str:
        """Figure 9.2(c): the type designer's FIELD NAME / DATA TYPE grid."""
        attributes = self.catalog.hierarchy.all_attributes(class_name)
        header = ("FIELD NAME", "DATA TYPE", "DEFINED IN")
        rows = [
            (a.name, a.type_name, a.owner) for a in attributes
        ] or [("(none)", "-", "-")]
        widths = [
            max(len(header[i]), *(len(row[i]) for row in rows))
            for i in range(3)
        ]
        lines = [
            " | ".join(h.ljust(w) for h, w in zip(header, widths)),
            "-+-".join("-" * w for w in widths),
        ]
        for row in rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)
