"""DAG placement for the schema browser (Section 9.2).

*"Their inheritance relationships is represented as a DAG ... and MoodView
uses a DAG placement algorithm that minimizes crossovers and makes drawings
for graph nodes."*

This is the classic layered (Sugiyama-style) method:

1. layer assignment by longest path from the roots;
2. crossing minimisation by repeated barycenter sweeps;
3. coordinate assignment on a character grid.

The renderer draws boxed nodes connected by ``|`` / ``\\`` / ``/`` edges,
suitable for terminals; :func:`count_crossings` lets tests verify the
minimisation actually works.
"""

from __future__ import annotations

from dataclasses import dataclass

Edge = tuple[str, str]   # (parent, child)


@dataclass
class Layout:
    layers: list[list[str]]                  # node names per layer, in order
    positions: dict[str, tuple[int, int]]    # name -> (layer, column index)
    crossings: int = 0


def assign_layers(nodes: list[str], edges: list[Edge]) -> list[list[str]]:
    """Longest-path layering: a node sits one layer below its deepest
    parent; roots are layer 0."""
    parents: dict[str, list[str]] = {node: [] for node in nodes}
    for parent, child in edges:
        parents[child].append(parent)
    depth: dict[str, int] = {}

    def depth_of(node: str, visiting: tuple = ()) -> int:
        if node in depth:
            return depth[node]
        if node in visiting:
            raise ValueError(f"inheritance graph has a cycle at {node!r}")
        if not parents[node]:
            depth[node] = 0
        else:
            depth[node] = 1 + max(
                depth_of(parent, visiting + (node,))
                for parent in parents[node]
            )
        return depth[node]

    for node in nodes:
        depth_of(node)
    num_layers = max(depth.values(), default=-1) + 1
    layers: list[list[str]] = [[] for _ in range(num_layers)]
    for node in sorted(nodes):
        layers[depth[node]].append(node)
    return layers


def count_crossings(layers: list[list[str]], edges: list[Edge]) -> int:
    """Edge crossings between consecutive layers, for the given orders."""
    position = {
        node: (layer_index, column)
        for layer_index, layer in enumerate(layers)
        for column, node in enumerate(layer)
    }
    crossings = 0
    for layer_index in range(len(layers) - 1):
        segment = [
            (position[parent][1], position[child][1])
            for parent, child in edges
            if parent in position and child in position
            and position[parent][0] == layer_index
            and position[child][0] == layer_index + 1
        ]
        for i in range(len(segment)):
            for j in range(i + 1, len(segment)):
                (a_top, a_bottom), (b_top, b_bottom) = segment[i], segment[j]
                if (a_top - b_top) * (a_bottom - b_bottom) < 0:
                    crossings += 1
    return crossings


def minimize_crossings(layers: list[list[str]], edges: list[Edge],
                       sweeps: int = 8) -> list[list[str]]:
    """Barycenter heuristic: order each layer by the mean position of its
    neighbours in the fixed adjacent layer, alternating down/up sweeps;
    keep the best ordering seen."""
    children: dict[str, list[str]] = {}
    parents: dict[str, list[str]] = {}
    for parent, child in edges:
        children.setdefault(parent, []).append(child)
        parents.setdefault(child, []).append(parent)

    best = [list(layer) for layer in layers]
    best_crossings = count_crossings(best, edges)
    current = [list(layer) for layer in layers]

    for sweep in range(sweeps):
        downward = sweep % 2 == 0
        layer_range = (
            range(1, len(current)) if downward
            else range(len(current) - 2, -1, -1)
        )
        for layer_index in layer_range:
            reference = current[layer_index - 1] if downward \
                else current[layer_index + 1]
            reference_position = {node: i for i, node in enumerate(reference)}
            neighbour_map = parents if downward else children
            original_position = {
                node: i for i, node in enumerate(current[layer_index])
            }

            def barycenter(node: str) -> float:
                neighbours = [
                    reference_position[n]
                    for n in neighbour_map.get(node, [])
                    if n in reference_position
                ]
                if not neighbours:
                    return float(original_position[node])
                return sum(neighbours) / len(neighbours)

            current[layer_index].sort(key=barycenter)
        crossings = count_crossings(current, edges)
        if crossings < best_crossings:
            best_crossings = crossings
            best = [list(layer) for layer in current]
    return best


def layout(nodes: list[str], edges: list[Edge]) -> Layout:
    """Full pipeline: layering, crossing minimisation, positions."""
    layers = assign_layers(nodes, edges)
    layers = minimize_crossings(layers, edges)
    positions = {
        node: (layer_index, column)
        for layer_index, layer in enumerate(layers)
        for column, node in enumerate(layer)
    }
    return Layout(layers=layers, positions=positions,
                  crossings=count_crossings(layers, edges))


@dataclass
class _Box:
    name: str
    left: int

    @property
    def width(self) -> int:
        return len(self.name) + 4

    @property
    def center(self) -> int:
        return self.left + self.width // 2


def render(nodes: list[str], edges: list[Edge],
           column_gap: int = 3) -> str:
    """ASCII drawing of the DAG: boxed class names, edges between layers."""
    if not nodes:
        return "(empty schema)"
    computed = layout(nodes, edges)
    rows: list[str] = []
    boxes_per_layer: list[dict[str, _Box]] = []
    for layer in computed.layers:
        boxes: dict[str, _Box] = {}
        cursor = 0
        for node in layer:
            boxes[node] = _Box(node, cursor)
            cursor += boxes[node].width + column_gap
        boxes_per_layer.append(boxes)

    def box_lines(boxes: dict[str, _Box]) -> list[str]:
        top = _compose(
            [(b.left, "+" + "-" * (b.width - 2) + "+")
             for b in boxes.values()]
        )
        mid = _compose(
            [(b.left, f"| {b.name} |") for b in boxes.values()]
        )
        return [top, mid, top]

    for layer_index, boxes in enumerate(boxes_per_layer):
        rows.extend(box_lines(boxes))
        if layer_index + 1 >= len(boxes_per_layer):
            break
        below = boxes_per_layer[layer_index + 1]
        connectors = []
        for parent, child in edges:
            if parent in boxes and child in below:
                top_x = boxes[parent].center
                bottom_x = below[child].center
                connectors.append((top_x, bottom_x))
        rows.extend(_edge_rows(connectors))
    return "\n".join(rows)


def _compose(pieces: list[tuple[int, str]]) -> str:
    width = max((left + len(text) for left, text in pieces), default=0)
    row = [" "] * width
    for left, text in pieces:
        for offset, ch in enumerate(text):
            row[left + offset] = ch
    return "".join(row)


def _edge_rows(connectors: list[tuple[int, int]], height: int = 2) -> list[str]:
    rows = []
    for step in range(1, height + 1):
        pieces = []
        for top_x, bottom_x in connectors:
            x = top_x + round((bottom_x - top_x) * step / (height + 1))
            if bottom_x > top_x:
                glyph = "\\"
            elif bottom_x < top_x:
                glyph = "/"
            else:
                glyph = "|"
            pieces.append((x, glyph))
        rows.append(_compose(pieces))
    return rows
