"""The MoodView environment: one object exposing every tool (Figure 9.1(a)).

*"MoodView provides the database programmer with tools and functionalities
for every phase of OODBMS application development."*
"""

from __future__ import annotations

from repro.core.kernel import MoodKernel
from repro.moodview.admin_tool import AdminTool
from repro.moodview.class_designer import ClassDesigner, MethodTool
from repro.moodview.cpp_view import CppView
from repro.moodview.monitor import MonitorPanel
from repro.moodview.object_browser import ObjectBrowser
from repro.moodview.query_manager import QueryManager
from repro.moodview.schema_browser import SchemaBrowser, initial_window
from repro.moodview.spatial_tool import SpatialTool
from repro.moodview.text_editor import TextEditor


class MoodView:
    """The graphical front end to MOOD, in text mode."""

    def __init__(self, kernel: MoodKernel):
        self.kernel = kernel
        self.schema_browser = SchemaBrowser(kernel)
        self.class_designer = ClassDesigner(kernel)
        self.method_tool = MethodTool(kernel)
        self.object_browser = ObjectBrowser(kernel)
        self.query_manager = QueryManager(kernel)
        self.admin_tool = AdminTool(kernel)
        self.monitor = MonitorPanel(kernel)
        self.spatial_tool = SpatialTool(kernel)
        self.cpp_view = CppView(kernel)
        self.text_editor = TextEditor()

    def initial_window(self) -> str:
        return initial_window()
