"""The object browser: generic object presentations (Figure 9.3).

*"MOOD objects constitute graphs connecting atoms and constructors.
MoodView has a generic display algorithm for displaying these object graphs
and walking through the referenced objects."*  The algorithm below renders
any object from catalog information alone (no per-class code), follows
references to a bounded depth, shares back-references, and guards cycles.

Updates go through :meth:`ObjectBrowser.update_attribute`, which performs
the dynamic type checking the paper describes before persisting.
"""

from __future__ import annotations

from repro.catalog.typeparse import parse_type
from repro.core.errors import ExecutionError, TypeMismatchError
from repro.core.kernel import MoodKernel, QueryResult
from repro.engine.cursor import ObjectCursor
from repro.model.objects import MoodObject
from repro.storage.oid import OID


class ObjectBrowser:
    """Display, walk and update object graphs."""

    def __init__(self, kernel: MoodKernel, max_depth: int = 3):
        self.kernel = kernel
        self.max_depth = max_depth

    # -- generic display algorithm -------------------------------------------

    def present(self, obj: MoodObject, depth: int | None = None) -> str:
        """Figure 9.3: a generic, catalog-driven object presentation."""
        lines: list[str] = []
        self._present_into(obj, lines, indent=0,
                           depth=self.max_depth if depth is None else depth,
                           visited=set())
        return "\n".join(lines)

    def _present_into(self, obj: MoodObject, lines: list[str], indent: int,
                      depth: int, visited: set[OID]) -> None:
        pad = "  " * indent
        lines.append(f"{pad}[{obj.class_name}] oid={obj.oid}")
        if obj.oid in visited:
            lines[-1] += "  (already shown)"
            return
        visited.add(obj.oid)
        for attribute in self.kernel.catalog.hierarchy.all_attributes(
                obj.class_name):
            value = obj.state.get(attribute.name)
            label = f"{pad}  {attribute.name} ({attribute.type_name})"
            if isinstance(value, OID):
                if value.is_null:
                    lines.append(f"{label} = NULL")
                elif depth > 0:
                    lines.append(f"{label} ->")
                    self._present_into(self.kernel.objects.deref(value),
                                       lines, indent + 2, depth - 1, visited)
                else:
                    lines.append(f"{label} -> {value}")
            elif isinstance(value, (set, frozenset, list)):
                items = sorted(value, key=repr) if isinstance(
                    value, (set, frozenset)) else list(value)
                lines.append(f"{label} = collection of {len(items)}")
                for item in items:
                    if isinstance(item, OID) and depth > 0:
                        self._present_into(self.kernel.objects.deref(item),
                                           lines, indent + 2, depth - 1,
                                           visited)
                    else:
                        lines.append(f"{pad}    - {item!r}")
            else:
                lines.append(f"{label} = {value!r}")

    # -- updates with dynamic type checking -----------------------------------------

    def update_attribute(self, obj: MoodObject, attribute: str,
                         value) -> None:
        """Set one attribute, dynamically type-checked against the
        catalog's declared type, then persisted."""
        declared = parse_type(
            self.kernel.catalog.hierarchy.attribute(obj.class_name,
                                                    attribute).type_name
        )
        if isinstance(value, MoodObject):
            value = value.oid
        try:
            canonical = declared.validate(value)
        except TypeMismatchError as exc:
            raise TypeMismatchError(
                f"MoodView update rejected: {exc}"
            ) from None
        obj.state[attribute] = canonical
        self.kernel.objects.update_object(obj)

    def copy_attribute(self, source: MoodObject, target: MoodObject,
                       attribute: str) -> None:
        """The copy/paste operation, with the same dynamic checks."""
        self.update_attribute(target, attribute,
                              source.state.get(attribute))

    # -- method activation -------------------------------------------------------

    def activate_method(self, obj: MoodObject, method: str,
                        args: list | None = None):
        """Interactive method activation against a presented object."""
        return self.kernel.functions.invoke(
            obj, method, args or [], resolve=self.kernel.objects.deref
        )

    # -- cursors over query results --------------------------------------------------

    def browse(self, result: QueryResult, var: str | None = None) -> ObjectCursor:
        return self.kernel.cursor_for(result, var)

    def present_cursor(self, cursor: ObjectCursor) -> str:
        """Render the cursor's current object from its buffer area of
        (name, type, value) cells -- exactly what the kernel hands
        MoodView to synthesise widgets from."""
        try:
            obj = cursor.current()
        except ExecutionError:
            return "(cursor not positioned)"
        lines = [f"Object {cursor.position + 1} of {len(cursor)} "
                 f"-- {obj.class_name} {obj.oid}"]
        for cell in cursor.buffer():
            lines.append(f"  {cell}")
        return "\n".join(lines)
