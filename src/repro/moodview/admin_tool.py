"""The database administration tool (abstract: "a database administration
tool ... are also implemented").

Reports on extents, indexes, named objects, buffer behaviour, simulated
I/O, the write-ahead log and the lock table -- the operational state an
administrator inspects.
"""

from __future__ import annotations

from repro.core.kernel import MoodKernel


class AdminTool:
    def __init__(self, kernel: MoodKernel):
        self.kernel = kernel

    def extent_report(self) -> str:
        lines = ["class | instances | pages"]
        for name in self.kernel.catalog.class_names():
            definition = self.kernel.catalog.class_def(name)
            if not definition.is_class:
                lines.append(f"{name} | (type) | -")
                continue
            extent = self.kernel.catalog.extent_file(name)
            lines.append(
                f"{name} | {extent.record_count()} | {extent.nbpages()}"
            )
        return "\n".join(lines)

    def index_report(self) -> str:
        lines = ["index | class | attribute | kind | unique"]
        for info in self.kernel.catalog.all_indexes():
            lines.append(
                f"{info.name} | {info.class_name} | {info.attribute} | "
                f"{info.kind} | {'yes' if info.unique else 'no'}"
            )
        if len(lines) == 1:
            lines.append("(no indexes)")
        return "\n".join(lines)

    def named_object_report(self) -> str:
        named = self.kernel.catalog.named_objects()
        if not named:
            return "(no named objects)"
        return "\n".join(f"{name} -> {oid}" for name, oid in sorted(named.items()))

    def buffer_report(self) -> str:
        stats = self.kernel.storage.buffer.stats
        return (
            f"capacity={self.kernel.storage.buffer.capacity} "
            f"hits={stats.hits} misses={stats.misses} "
            f"hit_ratio={stats.hit_ratio:.2f} evictions={stats.evictions} "
            f"flushes={stats.flushes}"
        )

    def io_report(self) -> str:
        stats = self.kernel.storage.io_stats
        return (
            f"random_reads={stats.random_reads} "
            f"sequential_reads={stats.sequential_reads} "
            f"random_writes={stats.random_writes} "
            f"sequential_writes={stats.sequential_writes} "
            f"elapsed_ms={stats.elapsed_ms:.1f}"
        )

    def wal_report(self) -> str:
        wal = self.kernel.storage.wal
        return (
            f"records={len(wal)} last_lsn={wal.last_lsn} "
            f"forced_lsn={wal.forced_lsn} "
            f"checkpoint_lsn={wal.last_checkpoint_lsn()}"
        )

    def statistics_report(self) -> str:
        if not self.kernel.has_statistics():
            return "(no statistics; run ANALYZE)"
        stats = self.kernel.stats
        lines = ["class | |C| | nbpages | size"]
        for name in sorted(stats.classes):
            card = stats.classes[name]
            lines.append(
                f"{name} | {card.count} | {card.nbpages} | {card.size}"
            )
        return "\n".join(lines)

    def full_report(self) -> str:
        sections = [
            ("EXTENTS", self.extent_report()),
            ("INDEXES", self.index_report()),
            ("NAMED OBJECTS", self.named_object_report()),
            ("STATISTICS", self.statistics_report()),
            ("BUFFER", self.buffer_report()),
            ("I/O", self.io_report()),
            ("WAL", self.wal_report()),
        ]
        blocks = []
        for title, body in sections:
            blocks.append(f"== {title} ==\n{body}")
        return "\n\n".join(blocks)

    def checkpoint(self) -> None:
        self.kernel.storage.checkpoint()
