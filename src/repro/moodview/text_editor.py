"""The full-screen text editor (abstract: "a full screen text-editor ...
are also implemented").

A minimal line-oriented buffer editor: load/save text, insert/delete/
replace lines, search, and render a numbered "screen".  MoodView uses it
for method bodies and query texts.
"""

from __future__ import annotations

from repro.core.errors import MoodError


class TextEditor:
    def __init__(self, text: str = ""):
        self._lines: list[str] = text.splitlines() if text else []
        self.modified = False

    # -- buffer access ----------------------------------------------------

    @property
    def text(self) -> str:
        return "\n".join(self._lines)

    def line_count(self) -> int:
        return len(self._lines)

    def line(self, number: int) -> str:
        self._check(number)
        return self._lines[number - 1]

    def _check(self, number: int) -> None:
        if not 1 <= number <= len(self._lines):
            raise MoodError(
                f"line {number} out of range (1..{len(self._lines)})"
            )

    # -- editing ----------------------------------------------------------

    def load(self, text: str) -> None:
        self._lines = text.splitlines()
        self.modified = False

    def insert_line(self, number: int, text: str) -> None:
        """Insert before line ``number`` (line_count+1 appends)."""
        if not 1 <= number <= len(self._lines) + 1:
            raise MoodError(f"cannot insert at line {number}")
        self._lines.insert(number - 1, text)
        self.modified = True

    def append_line(self, text: str) -> None:
        self._lines.append(text)
        self.modified = True

    def delete_line(self, number: int) -> str:
        self._check(number)
        self.modified = True
        return self._lines.pop(number - 1)

    def replace_line(self, number: int, text: str) -> None:
        self._check(number)
        self._lines[number - 1] = text
        self.modified = True

    def search(self, needle: str, start: int = 1) -> int | None:
        """1-based line number of the first match at/after ``start``."""
        for number in range(start, len(self._lines) + 1):
            if needle in self._lines[number - 1]:
                return number
        return None

    def replace_all(self, needle: str, replacement: str) -> int:
        count = 0
        for index, line in enumerate(self._lines):
            if needle in line:
                self._lines[index] = line.replace(needle, replacement)
                count += 1
        if count:
            self.modified = True
        return count

    # -- rendering ------------------------------------------------------------

    def screen(self, top: int = 1, height: int = 20) -> str:
        """A numbered window onto the buffer."""
        width = len(str(len(self._lines))) or 1
        lines = []
        for number in range(top, min(top + height, len(self._lines) + 1)):
            lines.append(f"{number:>{width}} | {self._lines[number - 1]}")
        status = f"-- {len(self._lines)} lines" + \
            (" [modified]" if self.modified else "")
        lines.append(status)
        return "\n".join(lines)
