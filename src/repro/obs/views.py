"""SYS$ monitor views: the server's runtime state as virtual classes.

The paper's MoodView exists to make the DBMS legible; these views make the
*server* legible through the language itself.  Each view is a read-only
virtual class (``SYS$SESSIONS``, ``SYS$STATEMENTS``, ``SYS$LOCKS``,
``SYS$COUNTERS``, ``SYS$SLOW_QUERIES``, ``SYS$EVENTS``) registered in the
catalog with a declared schema and fed *live* by a supplier callable --
no storage, no extent, no locks on user data.  Ordinary MOODSQL works::

    SELECT s.trace_id, s.lock_wait_ms FROM SYS$STATEMENTS s
    WHERE s.total_ms > 100

The kernel intercepts a SELECT whose FROM ranges a registered view and
evaluates it with the standard expression evaluator over transient
objects, so WHERE / projection / ORDER BY / DISTINCT behave exactly as on
stored classes.  Joins against stored classes and EXPLAIN are refused:
monitor rows have no statistics, and pretending otherwise would poison
the cost model's est-vs-actual contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.errors import MoodSqlError


@dataclass(frozen=True)
class SystemView:
    """One virtual class: a name, a declared schema, a live supplier."""

    name: str
    columns: tuple[tuple[str, str], ...]   # (attribute, MOOD type text)
    supplier: Callable[[], list[dict]]
    description: str = ""


class SystemViewRegistry:
    """Name -> :class:`SystemView`, with catalog schema registration."""

    def __init__(self, catalog=None):
        self.catalog = catalog
        self._views: dict[str, SystemView] = {}

    def register(
        self,
        name: str,
        columns: list[tuple[str, str]],
        supplier: Callable[[], list[dict]],
        description: str = "",
    ) -> SystemView:
        canonical = name.upper()
        view = SystemView(canonical, tuple(columns), supplier, description)
        self._views[canonical] = view
        if self.catalog is not None:
            self.catalog.register_system_view(canonical, list(columns))
        return view

    def has(self, name: str) -> bool:
        return name.upper() in self._views

    def get(self, name: str) -> SystemView:
        try:
            return self._views[name.upper()]
        except KeyError:
            raise MoodSqlError(f"no system view {name!r}") from None

    def names(self) -> list[str]:
        return sorted(self._views)

    def rows(self, name: str) -> list[dict]:
        """The view's current rows (each a flat attribute dict)."""
        return self.get(name).supplier()


# --------------------------------------------------------------------------
# Kernel-level views (the server adds SYS$SESSIONS on top)
# --------------------------------------------------------------------------

def register_kernel_views(kernel) -> None:
    """Register the views fed by kernel-owned state: metrics, the event
    journal, the lock table, and the statement/slow-query logs."""
    views = kernel.system_views
    storage = kernel.storage

    def counter_rows() -> list[dict]:
        rows = [
            {"name": name, "kind": "counter", "value": value,
             "count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
            for name, value in storage.metrics.counters().items()
        ]
        for name, summary in storage.metrics.histograms().items():
            rows.append({
                "name": name, "kind": "histogram",
                "value": summary["mean"],
                "count": summary["count"], "mean": summary["mean"],
                "p50": summary["p50"], "p95": summary["p95"],
                "p99": summary["p99"],
            })
        return sorted(rows, key=lambda r: r["name"])

    views.register(
        "SYS$COUNTERS",
        [("name", "String"), ("kind", "String"), ("value", "Float"),
         ("count", "Integer"), ("mean", "Float"),
         ("p50", "Float"), ("p95", "Float"), ("p99", "Float")],
        counter_rows,
        "every registry counter and histogram (with percentiles)",
    )

    def event_rows() -> list[dict]:
        return [
            {"seq": event.seq, "ts": event.ts, "kind": event.kind,
             "detail": event.detail()}
            for event in storage.events.recent()
        ]

    views.register(
        "SYS$EVENTS",
        [("seq", "Integer"), ("ts", "Float"), ("kind", "String"),
         ("detail", "String")],
        event_rows,
        "the bounded event journal (lock waits, deadlocks, checkpoints, "
        "recovery, cache storms, admission rejections)",
    )

    def lock_rows() -> list[dict]:
        return storage.locks.dump()

    views.register(
        "SYS$LOCKS",
        [("resource", "String"), ("txn_id", "Integer"), ("mode", "String"),
         ("granted", "Boolean"), ("queue_position", "Integer")],
        lock_rows,
        "the live lock table: grants plus the FIFO wait queue",
    )

    views.register(
        "SYS$STATEMENTS",
        _TRACE_COLUMNS,
        lambda: [t.row() for t in kernel.statement_log.recent()],
        "the most recent statements, newest first, fully decomposed",
    )

    def slow_rows() -> list[dict]:
        rows = []
        for trace in kernel.slow_log.top(kernel.slow_log.capacity):
            row = trace.row()
            row["plan"] = trace.span_report()
            rows.append(row)
        return rows

    views.register(
        "SYS$SLOW_QUERIES",
        _TRACE_COLUMNS + (("plan", "String"),),
        slow_rows,
        "statements over the slow threshold, slowest first, with their "
        "recorded span trees",
    )

    def plan_rows() -> list[dict]:
        return kernel.plan_cache.rows(
            kernel.catalog.schema_version, kernel.stats.version
        )

    def clustering_rows() -> list[dict]:
        reclusterer = getattr(kernel, "reclusterer", None)
        if reclusterer is None:
            return []
        return [reclusterer.status()]

    views.register(
        "SYS$CLUSTERING",
        CLUSTERING_COLUMNS,
        clustering_rows,
        "the background reclusterer: moves done, pages compacted, "
        "estimated cold-traversal locality gain, co-access graph size",
    )

    views.register(
        "SYS$PLANS",
        [("statement", "String"), ("hits", "Integer"),
         ("schema_version", "Integer"), ("stats_version", "Integer"),
         ("valid", "Boolean"), ("created_at", "Float"),
         ("last_used_at", "Float")],
        plan_rows,
        "the plan cache, most recently used first, each entry's version "
        "stamps checked against the live catalog and statistics",
    )


#: Shared schema of SYS$STATEMENTS / SYS$SLOW_QUERIES rows
#: (:meth:`repro.obs.trace.StatementTrace.row`).  Public alias
#: ``TRACE_COLUMNS`` below: the router's federated cluster views prepend
#: a ``shard`` column to exactly this schema.
_TRACE_COLUMNS: tuple[tuple[str, str], ...] = (
    ("trace_id", "String"),
    ("session_id", "Integer"),
    ("txn_id", "Integer"),
    ("statement", "String"),
    ("kind", "String"),
    ("status", "String"),
    ("started_at", "Float"),
    ("queue_wait_ms", "Float"),
    ("lock_wait_ms", "Float"),
    ("latch_wait_ms", "Float"),
    ("exec_ms", "Float"),
    ("total_ms", "Float"),
    ("io_pages", "Integer"),
    ("io_ms", "Float"),
    ("rows", "Integer"),
)

TRACE_COLUMNS = _TRACE_COLUMNS

#: Schema of SYS$CLUSTERING rows (:meth:`repro.cluster.recluster.
#: Reclusterer.status`); the router's federated view prepends ``shard``.
CLUSTERING_COLUMNS: tuple[tuple[str, str], ...] = (
    ("state", "String"),
    ("runs", "Integer"),
    ("moves", "Integer"),
    ("batches", "Integer"),
    ("pages_allocated", "Integer"),
    ("pages_compacted", "Integer"),
    ("ref_rewrites", "Integer"),
    ("index_rewrites", "Integer"),
    ("stubs_reclaimed", "Integer"),
    ("lock_timeouts", "Integer"),
    ("estimated_gain", "Float"),
    ("coaccess_edges", "Integer"),
    ("last_run_at", "Float"),
    ("last_error", "String"),
)
