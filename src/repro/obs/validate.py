"""Plan-vs-actual cost validation.

The optimizer's estimates (SEQCOST/RNDCOST/INDCOST arithmetic over Table 8
statistics) and the simulated disk's actual charges share the same Table 10
constants, so on cold caches they should agree closely.  The
:class:`CostValidator` turns that expectation into an assertable contract:
tests and benchmarks feed it ``(estimated, actual)`` pairs -- or a whole
``EXPLAIN ANALYZE`` report -- and it raises :class:`CostValidationError`
when the relative error exceeds the tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import MoodError


class CostValidationError(MoodError):
    """An estimate and its measurement disagree beyond the tolerance."""


@dataclass(frozen=True)
class CostCheck:
    """One estimate/actual comparison."""

    label: str
    estimated: float
    actual: float
    tolerance: float

    @property
    def ratio(self) -> float:
        """actual / estimated (1.0 when both are zero)."""
        if self.estimated == 0.0:
            return 1.0 if self.actual == 0.0 else float("inf")
        return self.actual / self.estimated

    @property
    def error(self) -> float:
        """Relative error |actual - estimated| / estimated."""
        if self.estimated == 0.0:
            return 0.0 if self.actual == 0.0 else float("inf")
        return abs(self.actual - self.estimated) / self.estimated

    @property
    def ok(self) -> bool:
        return self.error <= self.tolerance

    def __str__(self) -> str:
        status = "ok" if self.ok else "FAIL"
        return (
            f"[{status}] {self.label}: estimated={self.estimated:.3f} "
            f"actual={self.actual:.3f} error={self.error:.1%} "
            f"(tolerance {self.tolerance:.1%})"
        )


class CostValidator:
    """Asserts estimate/actual agreement within a configurable tolerance."""

    #: Default relative tolerance.  Estimates assume cold caches and exact
    #: Table 8 statistics; real executions see buffer hits and integer
    #: cardinalities, so the default allows a generous margin.  Tighten it
    #: per check when the workload is controlled (the Table 16 replay in
    #: ``tests/obs`` runs at 1%).
    default_tolerance = 0.25

    def __init__(self, tolerance: float | None = None):
        self.tolerance = (
            self.default_tolerance if tolerance is None else tolerance
        )
        self.checks: list[CostCheck] = []

    def check(
        self,
        estimated: float,
        actual: float,
        label: str = "cost",
        tolerance: float | None = None,
    ) -> CostCheck:
        """Record a comparison without raising; returns the check."""
        result = CostCheck(
            label=label,
            estimated=float(estimated),
            actual=float(actual),
            tolerance=self.tolerance if tolerance is None else tolerance,
        )
        self.checks.append(result)
        return result

    def require(
        self,
        estimated: float,
        actual: float,
        label: str = "cost",
        tolerance: float | None = None,
    ) -> CostCheck:
        """Like :meth:`check` but raises when the pair disagrees."""
        result = self.check(estimated, actual, label, tolerance)
        if not result.ok:
            raise CostValidationError(str(result))
        return result

    # -- report-level validation -------------------------------------------

    def validate_report(
        self,
        report,
        tolerance: float | None = None,
        min_estimate_ms: float = 1.0,
    ) -> list[CostCheck]:
        """Check every analyzed report line whose own estimate is material.

        Lines estimated below ``min_estimate_ms`` are skipped (a SELECT
        node estimates zero cost; comparing noise against zero is not
        meaningful).  Also checks the report's totals.  Returns the checks
        without raising; combine with :meth:`require_ok`.
        """
        checks = []
        for line in report.lines:
            if line.act_sim_ms is None:
                continue  # plain EXPLAIN: nothing was executed
            if line.est_self_ms < min_estimate_ms:
                continue
            checks.append(self.check(
                line.est_self_ms,
                line.act_self_ms,
                label=f"{line.operator}({line.detail})",
                tolerance=tolerance,
            ))
        if report.total_actual_ms is not None and \
                report.total_estimated_ms >= min_estimate_ms:
            checks.append(self.check(
                report.total_estimated_ms,
                report.total_actual_ms,
                label="plan total",
                tolerance=tolerance,
            ))
        return checks

    def require_ok(self, checks: list[CostCheck] | None = None) -> None:
        """Raise if any recorded (or given) check failed."""
        failures = [c for c in (checks or self.checks) if not c.ok]
        if failures:
            raise CostValidationError(
                "; ".join(str(failure) for failure in failures)
            )
