"""A bounded, server-wide journal of notable operational events.

VOODB-style OODB performance evaluation needs more than counters: to
attribute latency you must know *when* the discrete events happened --
lock waits that crossed a threshold, deadlock victimisations, WAL
checkpoints, recovery replays, object-cache invalidation storms, and
admission rejections.  The :class:`EventJournal` is a thread-safe ring
buffer of typed :class:`Event` records; producers call :meth:`emit`
(cheap: one lock, one deque append), and consumers read it through the
``SYS$EVENTS`` monitor view or :meth:`recent`.

The ring is bounded: once ``capacity`` events are held, each new event
evicts the oldest and ``dropped`` counts the loss -- observability must
never become the memory leak it is meant to find.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

#: Default number of events kept resident.
DEFAULT_CAPACITY = 512


@dataclass(frozen=True)
class Event:
    """One journal entry: a sequence number, a wall-clock stamp, a dotted
    kind (``lock.wait``, ``wal.checkpoint``, ...) and free-form fields."""

    seq: int
    ts: float                      # epoch seconds
    kind: str
    fields: dict = field(default_factory=dict)

    def detail(self) -> str:
        """The fields as a stable ``k=v`` rendering for views and logs."""
        return " ".join(f"{k}={v}" for k, v in sorted(self.fields.items()))

    def __str__(self) -> str:
        return f"[{self.seq}] {self.kind} {self.detail()}"


class EventJournal:
    """Bounded ring of :class:`Event` with a monotonically growing seq."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("event journal needs capacity >= 1")
        self.capacity = capacity
        self._mutex = threading.Lock()
        self._events: deque[Event] = deque(maxlen=capacity)
        self._next_seq = 1
        self.dropped = 0

    def emit(self, kind: str, **fields) -> Event:
        with self._mutex:
            event = Event(self._next_seq, time.time(), kind, fields)
            self._next_seq += 1
            if len(self._events) == self.capacity:
                self.dropped += 1
            self._events.append(event)
            return event

    def recent(self, count: int | None = None) -> list[Event]:
        """Newest-last snapshot of the ring (all of it by default)."""
        with self._mutex:
            events = list(self._events)
        return events if count is None else events[-count:]

    def of_kind(self, kind: str) -> list[Event]:
        return [e for e in self.recent() if e.kind == kind]

    def __len__(self) -> int:
        with self._mutex:
            return len(self._events)

    def clear(self) -> None:
        with self._mutex:
            self._events.clear()
