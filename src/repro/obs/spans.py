"""Structured trace spans mirroring the plan tree.

The executor's flat :class:`~repro.engine.executor.TraceEvent` list records
*that* operators ran in Figure 7.2 order; spans additionally record what
each operator *cost*.  A :class:`SpanRecorder` attached to the executor
opens one :class:`Span` per plan node: rows produced, the charged simulated
I/O of the node's subtree (a :class:`~repro.storage.disk.IOStats` delta),
and wall-clock time, nested exactly like the plan tree.  ``self_io`` /
``self_wall_ms`` subtract the children, giving per-operator figures that the
``EXPLAIN ANALYZE`` report compares against per-node estimated costs.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.optimizer.plan import (
    BindNode,
    DupElimNode,
    FusedTraversalNode,
    IndSelNode,
    JoinNode,
    NamedRef,
    PartitionNode,
    PlanNode,
    ProjectNode,
    SelectNode,
    SortNode,
    UnionNode,
)
from repro.storage.disk import IOStats


def describe_node(node: PlanNode) -> tuple[str, str]:
    """Map a plan node to its span's ``(operator, detail)`` labels."""
    if isinstance(node, BindNode):
        return "BIND", f"{node.class_name}, {node.var}"
    if isinstance(node, IndSelNode):
        return "INDSEL", f"{node.class_name}, {node.var}"
    if isinstance(node, SelectNode):
        return "SELECT", " AND ".join(str(p) for p in node.predicates)
    if isinstance(node, NamedRef):
        return "TEMP", node.name
    if isinstance(node, JoinNode):
        return "JOIN", f"{node.method}, {node.predicate_text}"
    if isinstance(node, FusedTraversalNode):
        return "FUSED_TRAVERSAL", "; ".join(node.hop_texts())
    if isinstance(node, ProjectNode):
        return "PROJECT", ", ".join(str(p) for p in node.projections) or "*"
    if isinstance(node, UnionNode):
        return "UNION", f"{len(node.inputs)} AND-terms"
    if isinstance(node, PartitionNode):
        return "PARTITION", ", ".join(str(k) for k in node.keys)
    if isinstance(node, DupElimNode):
        return "DUPELIM", ""
    if isinstance(node, SortNode):
        return "SORT", ", ".join(str(k.expr) for k in node.keys)
    return type(node).__name__, ""


@dataclass
class Span:
    """One executed plan operator: labels, cardinality, I/O, timing."""

    operator: str
    detail: str = ""
    node: Any = None                  # the PlanNode that produced the span
    rows_out: int = -1                # -1 until the operator finishes
    io: IOStats | None = None         # charged I/O of the whole subtree
    wall_ms: float = 0.0              # host wall-clock of the whole subtree
    children: list["Span"] = field(default_factory=list)
    events: list[str] = field(default_factory=list)  # flat trace events
    trace_id: str | None = None       # the statement trace this belongs to

    # -- subtree vs self ---------------------------------------------------

    def self_io(self) -> IOStats:
        """Charged I/O of this operator minus its children's subtrees."""
        total = self.io.snapshot() if self.io is not None else IOStats()
        for child in self.children:
            if child.io is not None:
                total = total.since(child.io)
        return total

    def self_wall_ms(self) -> float:
        return self.wall_ms - sum(c.wall_ms for c in self.children)

    # -- traversal ---------------------------------------------------------

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, operator: str, detail_contains: str = "") -> "Span | None":
        """First span (pre-order) matching operator and detail substring."""
        for span in self.walk():
            if span.operator == operator and detail_contains in span.detail:
                return span
        return None

    # -- rendering ---------------------------------------------------------

    def render(self, indent: int = 0) -> str:
        io = self.io or IOStats()
        label = f"{self.operator}({self.detail})" if self.detail \
            else self.operator
        line = (
            f"{'    ' * indent}{label} rows={self.rows_out} "
            f"pages={io.page_ios} sim_ms={io.elapsed_ms:.3f} "
            f"wall_ms={self.wall_ms:.3f}"
        )
        return "\n".join(
            [line] + [child.render(indent + 1) for child in self.children]
        )

    def __str__(self) -> str:
        return self.render()


class SpanRecorder:
    """Collects a span tree during plan execution.

    ``io_probe`` returns a cumulative :class:`IOStats` snapshot (typically
    :meth:`repro.storage.manager.StorageManager.io_snapshot`); each span's
    ``io`` is the delta across its lifetime.
    """

    def __init__(
        self,
        io_probe: Callable[[], IOStats] | None = None,
        trace_id: str | None = None,
    ):
        self.io_probe = io_probe
        self.trace_id = trace_id
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    @contextmanager
    def span(self, operator: str, detail: str = "", node: Any = None):
        span = Span(operator, detail, node, trace_id=self.trace_id)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        before = self.io_probe() if self.io_probe is not None else None
        started = time.perf_counter()
        try:
            yield span
        finally:
            span.wall_ms = (time.perf_counter() - started) * 1000.0
            if before is not None:
                span.io = self.io_probe().since(before)
            self._stack.pop()

    def event(self, text: str) -> None:
        """Attach a flat trace event to the currently open span."""
        if self._stack:
            self._stack[-1].events.append(text)

    def current(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    def walk(self):
        for root in self.roots:
            yield from root.walk()

    def render(self) -> str:
        return "\n".join(root.render() for root in self.roots)
