"""A registry of named counters and histograms.

Every storage and engine component exposes its operational counts through
one shared :class:`MetricsRegistry` owned by the storage manager.  Names
are dotted (``disk.random_reads``, ``buffer.hits``, ``locks.deadlocks``,
``wal.records``, ``functions.dispatches``); a component obtains a
:class:`ComponentMetrics` handle bound to its prefix once and resolves its
counters up front, so the hot-path cost of being observed is one attribute
increment.

The registry is deliberately simulation-friendly: counters accept float
increments (simulated milliseconds as well as page counts), and
:meth:`MetricsRegistry.snapshot` / :meth:`MetricsRegistry.since` allow
windowed measurements without resetting the underlying components.

The registry and its instruments are thread-safe: server worker threads
increment shared counters concurrently, so :meth:`Counter.inc` and
:meth:`Histogram.observe` take a small per-instrument mutex (an
uncontended CPython lock costs tens of nanoseconds; the single-threaded
embedded paths are unaffected beyond that).
"""

from __future__ import annotations

import threading


class Counter:
    """A monotonically increasing named value (int or float increments)."""

    __slots__ = ("name", "value", "_mutex")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self._mutex = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        with self._mutex:
            self.value += amount

    def reset(self) -> None:
        with self._mutex:
            self.value = 0.0

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value:g})"


#: Default bucket upper bounds: roughly logarithmic (1-2.5-5 per decade)
#: from 50 microseconds to one minute, wide enough for both simulated-
#: millisecond latencies and small cardinalities (batch sizes).  The last
#: implicit bucket is +Inf.
DEFAULT_BUCKETS = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
    30000.0, 60000.0,
)


class Histogram:
    """Bucketed summary of observed values with percentile estimation.

    Keeps the streaming count/total/min/max plus a fixed array of
    logarithmically spaced bucket counts, so :meth:`percentile` answers
    p50/p95/p99 in O(buckets) without retaining samples.  Estimates
    interpolate linearly within the containing bucket and are clamped to
    the observed min/max, so they are exact at the extremes and never
    invent values outside the observed range.
    """

    __slots__ = ("name", "count", "total", "min", "max", "bounds",
                 "bucket_counts", "_mutex")

    def __init__(self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS):
        self.name = name
        self.bounds = bounds
        self._mutex = threading.Lock()
        self.reset()

    def observe(self, value: float) -> None:
        with self._mutex:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            self.bucket_counts[self._bucket_index(value)] += 1

    def _bucket_index(self, value: float) -> int:
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo  # len(bounds) == the +Inf bucket

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, fraction: float) -> float:
        """Estimated value at ``fraction`` (0.0-1.0) of the distribution."""
        with self._mutex:
            if not self.count:
                return 0.0
            target = fraction * self.count
            cumulative = 0
            for index, bucket_count in enumerate(self.bucket_counts):
                if not bucket_count:
                    continue
                if cumulative + bucket_count >= target:
                    lower = self.bounds[index - 1] if index else 0.0
                    upper = (
                        self.bounds[index]
                        if index < len(self.bounds) else self.max
                    )
                    fill = (target - cumulative) / bucket_count
                    estimate = lower + (upper - lower) * fill
                    return max(self.min, min(self.max, estimate))
                cumulative += bucket_count
            return self.max

    def percentiles(self) -> dict[str, float]:
        """The standard reporting set: p50/p95/p99 plus count and mean."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }

    def dump(self) -> dict:
        """A JSON-safe, *mergeable* form of this histogram: the streaming
        aggregates plus the raw bucket counts (bounds included so a peer
        can refuse to merge incompatible layouts).  Routers federate
        worker histograms by shipping dumps over the wire and summing
        them with :func:`merge_histogram_dumps`."""
        with self._mutex:
            return {
                "count": self.count,
                "total": self.total,
                "min": self.min,
                "max": self.max,
                "bounds": list(self.bounds),
                "buckets": list(self.bucket_counts),
            }

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ending at +Inf --
        the shape Prometheus histogram exposition wants."""
        with self._mutex:
            pairs: list[tuple[float, int]] = []
            cumulative = 0
            for bound, bucket_count in zip(self.bounds, self.bucket_counts):
                cumulative += bucket_count
                pairs.append((bound, cumulative))
            pairs.append((float("inf"), self.count))
            return pairs

    def reset(self) -> None:
        with self._mutex:
            self.count = 0
            self.total = 0.0
            self.min = None
            self.max = None
            self.bucket_counts = [0] * (len(self.bounds) + 1)

    def __repr__(self) -> str:
        return (
            f"Histogram({self.name}: n={self.count} mean={self.mean:g} "
            f"min={self.min} max={self.max})"
        )


def merge_histogram_dumps(dumps: list[dict]) -> dict | None:
    """Sum a list of :meth:`Histogram.dump` payloads into one.

    Bucketed histograms with identical bounds merge exactly by summing
    their bucket arrays -- the property the router exploits to compute
    *cluster-wide* percentiles from per-shard dumps.  A dump whose bounds
    disagree with the first one's is skipped rather than poisoning the
    estimate.  Returns ``None`` when nothing merged.
    """
    merged: dict | None = None
    for dump in dumps:
        if not isinstance(dump, dict) or "buckets" not in dump:
            continue
        if merged is None:
            merged = {
                "count": 0, "total": 0.0, "min": None, "max": None,
                "bounds": list(dump.get("bounds", DEFAULT_BUCKETS)),
                "buckets": [0] * len(dump["buckets"]),
            }
        if (list(dump.get("bounds", ())) != merged["bounds"]
                or len(dump["buckets"]) != len(merged["buckets"])):
            continue
        merged["count"] += dump.get("count", 0)
        merged["total"] += dump.get("total", 0.0)
        for low_high in ("min", "max"):
            value = dump.get(low_high)
            if value is None:
                continue
            current = merged[low_high]
            if current is None:
                merged[low_high] = value
            elif low_high == "min":
                merged[low_high] = min(current, value)
            else:
                merged[low_high] = max(current, value)
        merged["buckets"] = [
            a + b for a, b in zip(merged["buckets"], dump["buckets"])
        ]
    return merged


def dump_percentile(dump: dict, fraction: float) -> float:
    """:meth:`Histogram.percentile` over a dump (same interpolation)."""
    count = dump.get("count", 0)
    if not count:
        return 0.0
    bounds = dump.get("bounds", DEFAULT_BUCKETS)
    low = dump.get("min") or 0.0
    high = dump.get("max") or 0.0
    target = fraction * count
    cumulative = 0
    for index, bucket_count in enumerate(dump["buckets"]):
        if not bucket_count:
            continue
        if cumulative + bucket_count >= target:
            lower = bounds[index - 1] if index else 0.0
            upper = bounds[index] if index < len(bounds) else high
            fill = (target - cumulative) / bucket_count
            estimate = lower + (upper - lower) * fill
            return max(low, min(high, estimate))
        cumulative += bucket_count
    return high


def summarize_dump(dump: dict) -> dict[str, float]:
    """The :meth:`Histogram.percentiles` reporting set over a dump."""
    count = dump.get("count", 0)
    return {
        "count": count,
        "mean": (dump.get("total", 0.0) / count) if count else 0.0,
        "p50": dump_percentile(dump, 0.50),
        "p95": dump_percentile(dump, 0.95),
        "p99": dump_percentile(dump, 0.99),
    }


class ComponentMetrics:
    """A cheap handle binding a registry to one component's name prefix."""

    __slots__ = ("registry", "prefix")

    def __init__(self, registry: "MetricsRegistry", prefix: str):
        self.registry = registry
        self.prefix = prefix

    def counter(self, name: str) -> Counter:
        return self.registry.counter(f"{self.prefix}.{name}")

    def histogram(self, name: str) -> Histogram:
        return self.registry.histogram(f"{self.prefix}.{name}")


class MetricsRegistry:
    """Process-wide registry of named :class:`Counter`/:class:`Histogram`."""

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}
        self._mutex = threading.Lock()

    # -- access ------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            with self._mutex:
                counter = self._counters.get(name)
                if counter is None:
                    counter = self._counters[name] = Counter(name)
        return counter

    def histogram(self, name: str) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            with self._mutex:
                histogram = self._histograms.get(name)
                if histogram is None:
                    histogram = self._histograms[name] = Histogram(name)
        return histogram

    def component(self, prefix: str) -> ComponentMetrics:
        return ComponentMetrics(self, prefix)

    def value(self, name: str) -> float:
        """Current value of a counter (0.0 if it was never touched)."""
        counter = self._counters.get(name)
        return counter.value if counter is not None else 0.0

    def _counter_items(self) -> list[tuple[str, Counter]]:
        with self._mutex:
            return list(self._counters.items())

    def counters(self) -> dict[str, float]:
        return {name: c.value for name, c in sorted(self._counter_items())}

    def _histogram_items(self) -> list[tuple[str, Histogram]]:
        with self._mutex:
            return list(self._histograms.items())

    def histograms(self) -> dict[str, dict[str, float]]:
        """Percentile summaries of every histogram, sorted by name."""
        return {
            name: histogram.percentiles()
            for name, histogram in sorted(self._histogram_items())
        }

    def histogram_dumps(self) -> dict[str, dict]:
        """Mergeable :meth:`Histogram.dump` payloads of every histogram
        -- the shape the TELEMETRY wire verb ships to the router."""
        return {
            name: histogram.dump()
            for name, histogram in sorted(self._histogram_items())
        }

    def names(self) -> list[str]:
        with self._mutex:
            return sorted([*self._counters, *self._histograms])

    # -- windows -----------------------------------------------------------

    def snapshot(self) -> dict[str, float]:
        """Counter values at this instant (histograms are not windowed)."""
        return {name: c.value for name, c in self._counter_items()}

    def since(self, earlier: dict[str, float]) -> dict[str, float]:
        """Counter deltas relative to an earlier :meth:`snapshot`."""
        return {
            name: counter.value - earlier.get(name, 0.0)
            for name, counter in self._counter_items()
            if counter.value != earlier.get(name, 0.0)
        }

    def reset(self) -> None:
        with self._mutex:
            instruments = [*self._counters.values(),
                           *self._histograms.values()]
        for instrument in instruments:
            instrument.reset()

    # -- reporting ---------------------------------------------------------

    def render(self) -> str:
        """A sorted plain-text table of every metric."""
        with self._mutex:
            counters = sorted(self._counters.items())
            histograms = sorted(self._histograms.items())
        lines = []
        for name, counter in counters:
            lines.append(f"{name:<40} {counter.value:g}")
        for name, histogram in histograms:
            lines.append(
                f"{name:<40} n={histogram.count} mean={histogram.mean:g}"
            )
        return "\n".join(lines)
