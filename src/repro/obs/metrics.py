"""A registry of named counters and histograms.

Every storage and engine component exposes its operational counts through
one shared :class:`MetricsRegistry` owned by the storage manager.  Names
are dotted (``disk.random_reads``, ``buffer.hits``, ``locks.deadlocks``,
``wal.records``, ``functions.dispatches``); a component obtains a
:class:`ComponentMetrics` handle bound to its prefix once and resolves its
counters up front, so the hot-path cost of being observed is one attribute
increment.

The registry is deliberately simulation-friendly: counters accept float
increments (simulated milliseconds as well as page counts), and
:meth:`MetricsRegistry.snapshot` / :meth:`MetricsRegistry.since` allow
windowed measurements without resetting the underlying components.

The registry and its instruments are thread-safe: server worker threads
increment shared counters concurrently, so :meth:`Counter.inc` and
:meth:`Histogram.observe` take a small per-instrument mutex (an
uncontended CPython lock costs tens of nanoseconds; the single-threaded
embedded paths are unaffected beyond that).
"""

from __future__ import annotations

import threading


class Counter:
    """A monotonically increasing named value (int or float increments)."""

    __slots__ = ("name", "value", "_mutex")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self._mutex = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        with self._mutex:
            self.value += amount

    def reset(self) -> None:
        with self._mutex:
            self.value = 0.0

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value:g})"


class Histogram:
    """Streaming summary (count/total/min/max/mean) of observed values."""

    __slots__ = ("name", "count", "total", "min", "max", "_mutex")

    def __init__(self, name: str):
        self.name = name
        self._mutex = threading.Lock()
        self.reset()

    def observe(self, value: float) -> None:
        with self._mutex:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        with self._mutex:
            self.count = 0
            self.total = 0.0
            self.min = None
            self.max = None

    def __repr__(self) -> str:
        return (
            f"Histogram({self.name}: n={self.count} mean={self.mean:g} "
            f"min={self.min} max={self.max})"
        )


class ComponentMetrics:
    """A cheap handle binding a registry to one component's name prefix."""

    __slots__ = ("registry", "prefix")

    def __init__(self, registry: "MetricsRegistry", prefix: str):
        self.registry = registry
        self.prefix = prefix

    def counter(self, name: str) -> Counter:
        return self.registry.counter(f"{self.prefix}.{name}")

    def histogram(self, name: str) -> Histogram:
        return self.registry.histogram(f"{self.prefix}.{name}")


class MetricsRegistry:
    """Process-wide registry of named :class:`Counter`/:class:`Histogram`."""

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}
        self._mutex = threading.Lock()

    # -- access ------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            with self._mutex:
                counter = self._counters.get(name)
                if counter is None:
                    counter = self._counters[name] = Counter(name)
        return counter

    def histogram(self, name: str) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            with self._mutex:
                histogram = self._histograms.get(name)
                if histogram is None:
                    histogram = self._histograms[name] = Histogram(name)
        return histogram

    def component(self, prefix: str) -> ComponentMetrics:
        return ComponentMetrics(self, prefix)

    def value(self, name: str) -> float:
        """Current value of a counter (0.0 if it was never touched)."""
        counter = self._counters.get(name)
        return counter.value if counter is not None else 0.0

    def _counter_items(self) -> list[tuple[str, Counter]]:
        with self._mutex:
            return list(self._counters.items())

    def counters(self) -> dict[str, float]:
        return {name: c.value for name, c in sorted(self._counter_items())}

    def names(self) -> list[str]:
        with self._mutex:
            return sorted([*self._counters, *self._histograms])

    # -- windows -----------------------------------------------------------

    def snapshot(self) -> dict[str, float]:
        """Counter values at this instant (histograms are not windowed)."""
        return {name: c.value for name, c in self._counter_items()}

    def since(self, earlier: dict[str, float]) -> dict[str, float]:
        """Counter deltas relative to an earlier :meth:`snapshot`."""
        return {
            name: counter.value - earlier.get(name, 0.0)
            for name, counter in self._counter_items()
            if counter.value != earlier.get(name, 0.0)
        }

    def reset(self) -> None:
        with self._mutex:
            instruments = [*self._counters.values(),
                           *self._histograms.values()]
        for instrument in instruments:
            instrument.reset()

    # -- reporting ---------------------------------------------------------

    def render(self) -> str:
        """A sorted plain-text table of every metric."""
        with self._mutex:
            counters = sorted(self._counters.items())
            histograms = sorted(self._histograms.items())
        lines = []
        for name, counter in counters:
            lines.append(f"{name:<40} {counter.value:g}")
        for name, histogram in histograms:
            lines.append(
                f"{name:<40} n={histogram.count} mean={histogram.mean:g}"
            )
        return "\n".join(lines)
