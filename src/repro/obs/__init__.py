"""repro.obs: the unified observability layer.

Three cooperating pieces turn the reproduction's analytic cost model into a
measurable, regression-testable contract:

* :mod:`repro.obs.metrics` -- a process-wide :class:`MetricsRegistry` of
  named counters/histograms with cheap per-component handles, wired into the
  simulated disk, the buffer manager, the lock manager, the WAL and the
  function manager;
* :mod:`repro.obs.spans` -- structured trace spans that mirror the plan
  tree: every executed plan operator records rows out, charged page I/O and
  wall/simulated time;
* :mod:`repro.obs.explain` / :mod:`repro.obs.validate` -- the
  ``EXPLAIN ANALYZE`` report builder (estimated cost per node side-by-side
  with actual charged I/O) and the :class:`CostValidator` that tests and
  benchmarks use to assert estimate/actual agreement within a tolerance.

PR 4 adds the server-facing telemetry half:

* :mod:`repro.obs.trace` -- end-to-end statement traces (one id minted by
  the client, threaded through admission, locks, latch and spans) in
  bounded statement / slow-query rings;
* :mod:`repro.obs.events` -- the bounded operational event journal
  (lock waits, deadlocks, checkpoints, recovery, cache storms, admission
  rejections);
* :mod:`repro.obs.views` -- the ``SYS$`` monitor views, queryable with
  ordinary MOODSQL;
* :mod:`repro.obs.promtext` -- Prometheus text exposition of the whole
  registry, percentiles included.

Attribute access is lazy (PEP 562): the storage layer imports
:mod:`repro.obs.metrics` while ``repro.storage`` is still initialising, and
an eager import of :mod:`repro.obs.spans` here would close a cycle through
the optimizer and catalog packages.
"""

_EXPORTS = {
    "ComponentMetrics": "repro.obs.metrics",
    "Counter": "repro.obs.metrics",
    "Histogram": "repro.obs.metrics",
    "MetricsRegistry": "repro.obs.metrics",
    "Span": "repro.obs.spans",
    "SpanRecorder": "repro.obs.spans",
    "ExplainLine": "repro.obs.explain",
    "ExplainReport": "repro.obs.explain",
    "CostCheck": "repro.obs.validate",
    "CostValidationError": "repro.obs.validate",
    "CostValidator": "repro.obs.validate",
    "Event": "repro.obs.events",
    "EventJournal": "repro.obs.events",
    "StatementTrace": "repro.obs.trace",
    "StatementLog": "repro.obs.trace",
    "SlowQueryLog": "repro.obs.trace",
    "new_trace_id": "repro.obs.trace",
    "SystemView": "repro.obs.views",
    "SystemViewRegistry": "repro.obs.views",
    "render_prometheus": "repro.obs.promtext",
    "parse_prometheus": "repro.obs.promtext",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
