"""Prometheus text exposition of the metrics registry.

The ``METRICS`` wire op answers with this rendering, so any Prometheus-
compatible scraper (or a human with ``nc``) can read the server's
counters and latency distributions.  Counters become ``counter`` samples;
histograms become ``summary`` families with ``quantile`` labels
(p50/p95/p99 from the bucketed estimator) plus ``_sum``/``_count`` --
the exposition-format shape scrapers already know how to ingest.

Names are sanitised to the Prometheus grammar: the registry's dotted
names (``server.statement_ms``) turn into ``<prefix>_server_statement_ms``.
"""

from __future__ import annotations

import re

from repro.obs.metrics import MetricsRegistry

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")

#: Quantiles every histogram summary exposes.
QUANTILES = ((0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99"))


def metric_name(dotted: str, prefix: str = "mood") -> str:
    """``server.statement_ms`` -> ``mood_server_statement_ms``."""
    name = _NAME_OK.sub("_", f"{prefix}_{dotted}".replace(".", "_"))
    if name and name[0].isdigit():
        name = "_" + name
    return name


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry, prefix: str = "mood") -> str:
    """The whole registry in Prometheus text exposition format 0.0.4."""
    lines: list[str] = []
    for dotted, value in registry.counters().items():
        name = metric_name(dotted, prefix)
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {_format_value(value)}")
    for dotted, histogram in sorted(registry._histogram_items()):
        name = metric_name(dotted, prefix)
        lines.append(f"# TYPE {name} summary")
        for fraction, label in QUANTILES:
            lines.append(
                f'{name}{{quantile="{label}"}} '
                f"{_format_value(histogram.percentile(fraction))}"
            )
        lines.append(f"{name}_sum {_format_value(histogram.total)}")
        lines.append(f"{name}_count {_format_value(histogram.count)}")
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> dict[str, float]:
    """Parse an exposition back into ``{sample_name_with_labels: value}``.

    Round-trip helper for tests and the MoodView monitor panel; it
    understands exactly what :func:`render_prometheus` emits.
    """
    samples: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        key, _, value = line.rpartition(" ")
        samples[key] = float(value)
    return samples
