"""Prometheus text exposition of the metrics registry.

The ``METRICS`` wire op answers with this rendering, so any Prometheus-
compatible scraper (or a human with ``nc``) can read the server's
counters and latency distributions.  Counters become ``counter`` samples;
histograms become ``summary`` families with ``quantile`` labels
(p50/p95/p99 from the bucketed estimator) plus ``_sum``/``_count`` --
the exposition-format shape scrapers already know how to ingest.

Names are sanitised to the Prometheus grammar: the registry's dotted
names (``server.statement_ms``) turn into ``<prefix>_server_statement_ms``.
"""

from __future__ import annotations

import re

from repro.obs.metrics import (
    MetricsRegistry,
    dump_percentile,
    merge_histogram_dumps,
)

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")

#: Quantiles every histogram summary exposes.
QUANTILES = ((0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99"))


def metric_name(dotted: str, prefix: str = "mood") -> str:
    """``server.statement_ms`` -> ``mood_server_statement_ms``."""
    name = _NAME_OK.sub("_", f"{prefix}_{dotted}".replace(".", "_"))
    if name and name[0].isdigit():
        name = "_" + name
    return name


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry, prefix: str = "mood") -> str:
    """The whole registry in Prometheus text exposition format 0.0.4."""
    lines: list[str] = []
    for dotted, value in registry.counters().items():
        name = metric_name(dotted, prefix)
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {_format_value(value)}")
    for dotted, histogram in sorted(registry._histogram_items()):
        name = metric_name(dotted, prefix)
        lines.append(f"# TYPE {name} summary")
        for fraction, label in QUANTILES:
            lines.append(
                f'{name}{{quantile="{label}"}} '
                f"{_format_value(histogram.percentile(fraction))}"
            )
        lines.append(f"{name}_sum {_format_value(histogram.total)}")
        lines.append(f"{name}_count {_format_value(histogram.count)}")
    return "\n".join(lines) + "\n"


def render_cluster_prometheus(
    registry: MetricsRegistry,
    per_shard: dict[int, tuple[dict, dict]],
    prefix: str = "mood",
) -> str:
    """The merged cluster exposition a sharded router's METRICS answers.

    ``registry`` is the router's own registry (its samples carry no
    ``shard`` label); ``per_shard`` maps a shard index to its
    ``(counters, histogram_dumps)`` TELEMETRY payload, rendered with
    ``shard="<i>"`` labels.  Each metric family is declared once, then
    lists the router sample (if any) followed by one sample per shard --
    plus a cluster-wide ``quantile`` summary computed by merging the
    shards' histogram dumps (bucket sums, not averages of percentiles).
    """
    counter_families: dict[str, list[tuple[str | None, float]]] = {}
    for dotted, value in registry.counters().items():
        counter_families.setdefault(dotted, []).append((None, value))
    for shard in sorted(per_shard):
        counters, _ = per_shard[shard]
        for dotted, value in counters.items():
            counter_families.setdefault(dotted, []).append((str(shard), value))

    histogram_families: dict[str, list[tuple[str | None, dict]]] = {}
    for dotted, histogram in registry._histogram_items():
        histogram_families.setdefault(dotted, []).append(
            (None, histogram.dump())
        )
    for shard in sorted(per_shard):
        _, dumps = per_shard[shard]
        for dotted, dump in dumps.items():
            histogram_families.setdefault(dotted, []).append(
                (str(shard), dump)
            )

    lines: list[str] = []
    for dotted in sorted(counter_families):
        name = metric_name(dotted, prefix)
        lines.append(f"# TYPE {name} counter")
        for shard_label, value in counter_families[dotted]:
            lines.append(
                f"{name}{_labels(shard=shard_label)} {_format_value(value)}"
            )
    for dotted in sorted(histogram_families):
        name = metric_name(dotted, prefix)
        lines.append(f"# TYPE {name} summary")
        samples = histogram_families[dotted]
        for shard_label, dump in samples:
            for fraction, quantile in QUANTILES:
                lines.append(
                    f"{name}{_labels(shard=shard_label, quantile=quantile)} "
                    f"{_format_value(dump_percentile(dump, fraction))}"
                )
            lines.append(
                f"{name}_sum{_labels(shard=shard_label)} "
                f"{_format_value(dump.get('total', 0.0))}"
            )
            lines.append(
                f"{name}_count{_labels(shard=shard_label)} "
                f"{_format_value(dump.get('count', 0))}"
            )
        if len(samples) > 1:
            merged = merge_histogram_dumps([dump for _, dump in samples])
            if merged is not None:
                for fraction, quantile in QUANTILES:
                    lines.append(
                        f'{name}{{shard="cluster",quantile="{quantile}"}} '
                        f"{_format_value(dump_percentile(merged, fraction))}"
                    )
    return "\n".join(lines) + "\n"


def _labels(**labels: str | None) -> str:
    """``{shard="0",quantile="0.5"}`` from the non-None label values."""
    present = [
        f'{key}="{value}"'
        for key, value in labels.items() if value is not None
    ]
    return "{" + ",".join(present) + "}" if present else ""


def parse_prometheus(text: str) -> dict[str, float]:
    """Parse an exposition back into ``{sample_name_with_labels: value}``.

    Round-trip helper for tests and the MoodView monitor panel; it
    understands exactly what :func:`render_prometheus` emits.
    """
    samples: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        key, _, value = line.rpartition(" ")
        samples[key] = float(value)
    return samples
