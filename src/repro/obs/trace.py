"""End-to-end statement traces: one id stitches a statement's phases.

A trace id is minted by :class:`~repro.server.client.MoodClient` (or by
the server for clients that do not supply one), carried in the wire frame,
and threaded through admission, the session's lock closure, the engine
latch and the plan-tree spans.  The resulting :class:`StatementTrace`
decomposes one statement's latency the way the paper's MoodView decomposes
a plan: queue wait, lock wait, latch wait, execution -- plus the charged
simulated I/O and the span tree for SELECTs.

Records land in bounded rings: :class:`StatementLog` keeps the last N
statements (the ``SYS$STATEMENTS`` view), :class:`SlowQueryLog` keeps
statements whose total latency crossed a threshold together with their
rendered span trees (the ``SYS$SLOW_QUERIES`` view and the slow-query
export).
"""

from __future__ import annotations

import itertools
import threading
import uuid
from collections import deque
from dataclasses import dataclass, field

#: Statement text is truncated to this many characters in trace records.
MAX_STATEMENT_CHARS = 200

#: Default ring capacities.
STATEMENT_LOG_CAPACITY = 256
SLOW_LOG_CAPACITY = 64

#: Default slow-statement threshold, wall-clock milliseconds.
DEFAULT_SLOW_MS = 250.0

_server_seq = itertools.count(1)


def new_trace_id() -> str:
    """A compact client-minted trace id (128 bits folded to 16 hex)."""
    return uuid.uuid4().hex[:16]


def server_trace_id() -> str:
    """Fallback id for statements that arrived without one."""
    return f"srv-{next(_server_seq)}"


@dataclass
class StatementTrace:
    """One executed (or failed) statement, fully decomposed."""

    trace_id: str
    session_id: int
    statement: str
    kind: str = ""                 # SELECT / NEW / UPDATE / ...
    txn_id: int = 0
    started_at: float = 0.0        # epoch seconds
    status: str = "OK"             # "OK" or the stable error code
    queue_wait_ms: float = 0.0     # admission queue
    lock_wait_ms: float = 0.0      # conservative-2PL closure acquisition
    latch_wait_ms: float = 0.0     # engine latch
    exec_ms: float = 0.0           # inside the engine
    total_ms: float = 0.0          # end to end (locks + latch + exec)
    io_pages: int = 0              # charged page I/Os while latched
    io_ms: float = 0.0             # simulated disk ms while latched
    rows: int = 0
    spans: list = field(default_factory=list)   # Span roots (SELECT only)

    def span_report(self) -> str:
        """The recorded plan-tree spans, rendered (empty for non-SELECT)."""
        return "\n".join(span.render() for span in self.spans)

    def row(self) -> dict:
        """The flat, scalar-only shape the SYS$ views expose."""
        return {
            "trace_id": self.trace_id,
            "session_id": self.session_id,
            "txn_id": self.txn_id,
            "statement": self.statement,
            "kind": self.kind,
            "status": self.status,
            "started_at": self.started_at,
            "queue_wait_ms": round(self.queue_wait_ms, 3),
            "lock_wait_ms": round(self.lock_wait_ms, 3),
            "latch_wait_ms": round(self.latch_wait_ms, 3),
            "exec_ms": round(self.exec_ms, 3),
            "total_ms": round(self.total_ms, 3),
            "io_pages": self.io_pages,
            "io_ms": round(self.io_ms, 3),
            "rows": self.rows,
        }


def truncate_statement(sql: str) -> str:
    text = " ".join(str(sql).split())
    if len(text) > MAX_STATEMENT_CHARS:
        return text[: MAX_STATEMENT_CHARS - 3] + "..."
    return text


class StatementLog:
    """Bounded ring of the most recent :class:`StatementTrace` records."""

    def __init__(self, capacity: int = STATEMENT_LOG_CAPACITY):
        if capacity < 1:
            raise ValueError("statement log needs capacity >= 1")
        self.capacity = capacity
        self._mutex = threading.Lock()
        self._traces: deque[StatementTrace] = deque(maxlen=capacity)

    def record(self, trace: StatementTrace) -> None:
        with self._mutex:
            self._traces.append(trace)

    def recent(self, count: int | None = None) -> list[StatementTrace]:
        """Newest-first snapshot (the order a monitor wants)."""
        with self._mutex:
            traces = list(self._traces)
        traces.reverse()
        return traces if count is None else traces[:count]

    def find(self, trace_id: str) -> StatementTrace | None:
        for trace in self.recent():
            if trace.trace_id == trace_id:
                return trace
        return None

    def __len__(self) -> int:
        with self._mutex:
            return len(self._traces)


class SlowQueryLog(StatementLog):
    """Statement log restricted to traces over a latency threshold; each
    entry additionally keeps its rendered plan/span report."""

    def __init__(
        self,
        threshold_ms: float = DEFAULT_SLOW_MS,
        capacity: int = SLOW_LOG_CAPACITY,
    ):
        super().__init__(capacity)
        self.threshold_ms = threshold_ms

    def consider(self, trace: StatementTrace) -> bool:
        """Record ``trace`` iff it crossed the threshold."""
        if trace.total_ms >= self.threshold_ms:
            self.record(trace)
            return True
        return False

    def top(self, count: int = 10) -> list[StatementTrace]:
        """The slowest retained statements, slowest first."""
        return sorted(
            self.recent(), key=lambda t: t.total_ms, reverse=True
        )[:count]
