"""The ``EXPLAIN [ANALYZE]`` report.

``EXPLAIN`` renders the optimizer's chosen plan with per-node estimated
cost (milliseconds of the Section 5 SEQCOST/RNDCOST model) and estimated
cardinality.  ``EXPLAIN ANALYZE`` additionally executes the plan under a
:class:`~repro.obs.spans.SpanRecorder` and reports, side-by-side and per
node, the actual charged page I/O, actual simulated milliseconds, actual
row counts and the prediction-error ratio ``act/est``.

Estimated totals are computed over the *span* tree, not the plan tree, so
that a temporary (the paper's T1) executed inline under its first
``NamedRef`` is charged to the same node on both sides of the comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.obs.spans import Span, describe_node
from repro.optimizer.plan import NamedRef, PlanNode, render_plan


@dataclass
class ExplainLine:
    """One plan operator's estimated and (optionally) actual figures.

    ``est_total_ms``/``act_*`` figures cover the operator's subtree;
    ``est_self_ms``/``act_self_*`` subtract the children.
    """

    depth: int
    operator: str
    detail: str
    est_self_ms: float
    est_total_ms: float
    est_rows: float
    act_rows: int | None = None
    act_pages: int | None = None        # subtree page I/O
    act_sim_ms: float | None = None     # subtree simulated ms
    act_wall_ms: float | None = None    # subtree host wall-clock ms
    act_self_pages: int | None = None
    act_self_ms: float | None = None
    span: Span | None = None

    @property
    def ratio(self) -> float | None:
        """Prediction-error ratio act/est over the subtree, or None."""
        if self.act_sim_ms is None or self.est_total_ms <= 0.0:
            return None
        return self.act_sim_ms / self.est_total_ms

    @property
    def label(self) -> str:
        return f"{self.operator}({self.detail})" if self.detail \
            else self.operator


@dataclass
class ExplainReport:
    """The rendered product of ``EXPLAIN [ANALYZE]``."""

    plan_text: str
    lines: list[ExplainLine]
    analyzed: bool
    pipeline: list[str] = field(default_factory=list)
    total_estimated_ms: float = 0.0
    total_actual_ms: float | None = None
    total_actual_pages: int | None = None
    #: Object-cache counter deltas over the analyzed statement (``hits``,
    #: ``misses``, ``invalidations``, ``batches``, ... plus ``enabled``).
    cache_stats: dict[str, float] | None = None

    @property
    def error_ratio(self) -> float | None:
        """Whole-plan act/est ratio (None without ANALYZE or estimates)."""
        if self.total_actual_ms is None or self.total_estimated_ms <= 0.0:
            return None
        return self.total_actual_ms / self.total_estimated_ms

    def find(self, operator: str, detail_contains: str = "") -> ExplainLine:
        for line in self.lines:
            if line.operator == operator and detail_contains in line.detail:
                return line
        raise KeyError(f"no {operator} line matching {detail_contains!r}")

    def render(self) -> str:
        title = "EXPLAIN ANALYZE" if self.analyzed else "EXPLAIN"
        out = [title, "=" * len(title)]
        out.extend(self.pipeline)
        if self.pipeline:
            out.append("")
        out.append(self.plan_text)
        out.append("")
        header = (
            f"{'operator':<52} {'est.ms':>12} {'est.rows':>10} "
            f"{'act.ms':>12} {'act.pages':>9} {'act.rows':>8} {'act/est':>8}"
        )
        out.append(header)
        out.append("-" * len(header))
        for line in self.lines:
            label = "  " * line.depth + line.label
            if len(label) > 52:
                label = label[:49] + "..."
            act_ms = f"{line.act_sim_ms:.3f}" if line.act_sim_ms is not None \
                else "-"
            act_pages = str(line.act_pages) if line.act_pages is not None \
                else "-"
            act_rows = str(line.act_rows) if line.act_rows is not None \
                else "-"
            ratio = f"{line.ratio:.2f}" if line.ratio is not None else "-"
            out.append(
                f"{label:<52} {line.est_total_ms:>12.3f} "
                f"{line.est_rows:>10.1f} {act_ms:>12} {act_pages:>9} "
                f"{act_rows:>8} {ratio:>8}"
            )
        out.append("-" * len(header))
        summary = f"estimated total: {self.total_estimated_ms:.3f} ms"
        if self.total_actual_ms is not None:
            summary += (
                f" | actual total: {self.total_actual_ms:.3f} ms "
                f"({self.total_actual_pages} pages)"
            )
            if self.error_ratio is not None:
                summary += f" | act/est: {self.error_ratio:.2f}"
        out.append(summary)
        if self.cache_stats is not None:
            stats = self.cache_stats
            hits = stats.get("hits", 0.0)
            misses = stats.get("misses", 0.0)
            total = hits + misses
            ratio = f"{hits / total:.1%}" if total else "-"
            line = (
                f"object cache: hits={hits:g} misses={misses:g} "
                f"hit-ratio={ratio} "
                f"invalidations={stats.get('invalidations', 0.0):g} "
                f"batches={stats.get('batches', 0.0):g}"
            )
            if not stats.get("enabled", 1.0):
                line += " (disabled)"
            out.append(line)
        return "\n".join(out)

    def __str__(self) -> str:
        return self.render()


# --------------------------------------------------------------------------
# Report construction
# --------------------------------------------------------------------------

def _span_est_self(span: Span) -> float:
    node = span.node
    return float(node.estimated_cost) if isinstance(node, PlanNode) else 0.0


def _span_est_total(span: Span) -> float:
    """Estimated cost of a span subtree, following execution structure.

    A ``NamedRef`` span with children executed its temporary inline, so the
    temporary's estimate lands here -- mirroring where the actual I/O was
    charged.  A childless ``NamedRef`` span served cached rows: estimate 0.
    """
    return _span_est_self(span) + sum(
        _span_est_total(child) for child in span.children
    )


def _span_est_rows(span: Span) -> float:
    node = span.node
    if isinstance(node, NamedRef) and node.plan is not None:
        return float(node.plan.estimated_cardinality)
    return float(node.estimated_cardinality) if isinstance(node, PlanNode) \
        else 0.0


def report_from_spans(
    plan_root: PlanNode,
    roots: list[Span],
    temporaries: list[tuple[str, PlanNode]] | None = None,
    pipeline: list[str] | None = None,
    cache_stats: dict[str, float] | None = None,
) -> ExplainReport:
    """Build the ANALYZE report from a recorded span tree."""
    lines: list[ExplainLine] = []

    def add(span: Span, depth: int) -> None:
        io = span.io
        self_io = span.self_io()
        lines.append(ExplainLine(
            depth=depth,
            operator=span.operator,
            detail=span.detail,
            est_self_ms=_span_est_self(span),
            est_total_ms=_span_est_total(span),
            est_rows=_span_est_rows(span),
            act_rows=span.rows_out,
            act_pages=io.page_ios if io is not None else None,
            act_sim_ms=io.elapsed_ms if io is not None else None,
            act_wall_ms=span.wall_ms,
            act_self_pages=self_io.page_ios,
            act_self_ms=self_io.elapsed_ms,
            span=span,
        ))
        for child in span.children:
            add(child, depth + 1)

    for root in roots:
        add(root, 0)
    total_est = sum(_span_est_total(root) for root in roots)
    total_ms = sum(
        root.io.elapsed_ms for root in roots if root.io is not None
    )
    total_pages = sum(
        root.io.page_ios for root in roots if root.io is not None
    )
    return ExplainReport(
        plan_text=render_plan(plan_root, temporaries),
        lines=lines,
        analyzed=True,
        pipeline=list(pipeline or []),
        total_estimated_ms=total_est,
        total_actual_ms=total_ms,
        total_actual_pages=total_pages,
        cache_stats=cache_stats,
    )


def report_from_plan(
    plan_root: PlanNode,
    temporaries: list[tuple[str, PlanNode]] | None = None,
    pipeline: list[str] | None = None,
) -> ExplainReport:
    """Build the estimate-only report (``EXPLAIN`` without ``ANALYZE``)."""
    lines: list[ExplainLine] = []

    def add(node: PlanNode, depth: int) -> None:
        operator, detail = describe_node(node)
        total = node.estimated_cost if isinstance(node, NamedRef) \
            else node.total_estimated_cost()
        est_rows = node.plan.estimated_cardinality \
            if isinstance(node, NamedRef) and node.plan is not None \
            else node.estimated_cardinality
        lines.append(ExplainLine(
            depth=depth,
            operator=operator,
            detail=detail,
            est_self_ms=float(node.estimated_cost),
            est_total_ms=float(total),
            est_rows=float(est_rows),
        ))
        for child in node.children():
            add(child, depth + 1)

    total_est = 0.0
    for name, temp_plan in temporaries or []:
        lines.append(ExplainLine(
            depth=0,
            operator="TEMP",
            detail=name,
            est_self_ms=0.0,
            est_total_ms=float(temp_plan.total_estimated_cost()),
            est_rows=float(temp_plan.estimated_cardinality),
        ))
        add(temp_plan, 1)
        total_est += temp_plan.total_estimated_cost()
    add(plan_root, 0)
    total_est += plan_root.total_estimated_cost()
    return ExplainReport(
        plan_text=render_plan(plan_root, temporaries),
        lines=lines,
        analyzed=False,
        pipeline=list(pipeline or []),
        total_estimated_ms=total_est,
    )


def _plan_of(query_plan: Any) -> tuple[PlanNode, list[tuple[str, PlanNode]]]:
    return query_plan.root, list(getattr(query_plan, "temporaries", []) or [])


def explain_query_plan(query_plan: Any,
                       pipeline: list[str] | None = None) -> ExplainReport:
    """Estimate-only report for an optimizer
    :class:`~repro.optimizer.planner.QueryPlan`."""
    root, temporaries = _plan_of(query_plan)
    return report_from_plan(root, temporaries, pipeline)


def analyze_query_plan(
    query_plan: Any,
    roots: list[Span],
    pipeline: list[str] | None = None,
    cache_stats: dict[str, float] | None = None,
) -> ExplainReport:
    """ANALYZE report for an executed
    :class:`~repro.optimizer.planner.QueryPlan`."""
    root, temporaries = _plan_of(query_plan)
    return report_from_spans(root, roots, temporaries, pipeline, cache_stats)
