"""Dynamic object clustering (ROADMAP item 2).

Deref cost is ultimately page locality: objects created in insertion
order stay scattered across extent pages forever, and neither the object
cache nor batched dereferencing helps a cold buffer pool.  This package
closes the loop the access statistics opened:

* :mod:`repro.cluster.coaccess` -- a bounded, weighted co-access graph
  fed by the object manager's deref traffic (single chases and
  ``deref_many`` hop frontiers);
* :mod:`repro.cluster.policy` -- a greedy DSTC-style placement policy
  (Darmont: simple statistics-driven dynamic placement beats elaborate
  static schemes) grouping frequently co-traversed objects onto shared
  pages;
* :mod:`repro.cluster.recluster` -- the online reclusterer executing the
  policy in small WAL'd batches over the storage manager's crash-safe
  ``relocate`` primitive, under the ordinary conservative-2PL locks.
"""

from repro.cluster.coaccess import CoAccessGraph
from repro.cluster.policy import PlacementPlan, plan_placements
from repro.cluster.recluster import ReclusterDaemon, Reclusterer

__all__ = [
    "CoAccessGraph",
    "PlacementPlan",
    "plan_placements",
    "ReclusterDaemon",
    "Reclusterer",
]
