"""The online reclusterer: execute placement plans in small WAL'd batches.

Each run turns the co-access graph into per-class :class:`PlacementPlan`s
and executes them batch by batch.  A batch is one ordinary transaction:

1. take X locks (sorted, with a short lock timeout) on every extent file
   plus the catalog's system files -- relocation re-identifies objects,
   so any record anywhere may need its stored references rewritten;
2. allocate fresh target pages and :meth:`StorageManager.relocate` each
   group member onto them (WAL ``MOVE`` + page images: crash-safe);
3. rewrite every stored reference to a moved OID (a full scan applying
   the old->new mapping to each record's decoded state), remap index
   entries, re-point named roots and catalog name bindings, and re-home
   object-cache entries;
4. reclaim the forwarding stubs the moves left (nothing resolves through
   the old OIDs any more) and commit.

A lock timeout aborts only the current batch -- the WAL undoes its page
images -- and the run resumes at the next tick, so foreground statements
are never blocked for long.  Strict 2PL makes the whole batch atomic to
concurrent sessions: they either see the old placement or the new one,
never a torn mix.
"""

from __future__ import annotations

import threading
import time

from repro.core.errors import (
    LockError,
    PageFullError,
    RecordNotFoundError,
    SerdeError,
    StorageError,
)
from repro.cluster.policy import PlacementPlan, plan_placements
from repro.model.serde import decode, encode
from repro.storage.oid import OID

#: Default objects moved per batch transaction.
DEFAULT_BATCH_SIZE = 64
#: Default lock-wait budget (seconds) for a batch before it yields.
DEFAULT_LOCK_TIMEOUT = 2.0


class _ClusterCounters:
    """Pre-resolved ``cluster.*`` registry counters."""

    __slots__ = ("runs", "batches", "moves", "pages_allocated",
                 "ref_rewrites", "index_rewrites", "lock_timeouts")

    def __init__(self, component):
        self.runs = component.counter("runs")
        self.batches = component.counter("batches")
        self.moves = component.counter("moves")
        self.pages_allocated = component.counter("pages_allocated")
        self.ref_rewrites = component.counter("ref_rewrites")
        self.index_rewrites = component.counter("index_rewrites")
        self.lock_timeouts = component.counter("lock_timeouts")


def _replace_oids(value, mapping: dict[OID, OID]):
    """Apply an OID mapping through any serde value shape; returns
    ``(new_value, changed)``."""
    if isinstance(value, OID):
        new = mapping.get(value)
        return (new, True) if new is not None else (value, False)
    if isinstance(value, dict):
        changed = False
        out = {}
        for key, item in value.items():
            out[key], touched = _replace_oids(item, mapping)
            changed = changed or touched
        return (out, True) if changed else (value, False)
    if isinstance(value, list):
        changed = False
        out_list = []
        for item in value:
            new_item, touched = _replace_oids(item, mapping)
            out_list.append(new_item)
            changed = changed or touched
        return (out_list, True) if changed else (value, False)
    if isinstance(value, (set, frozenset)):
        changed = False
        out_set = set()
        for item in value:
            new_item, touched = _replace_oids(item, mapping)
            out_set.add(new_item)
            changed = changed or touched
        return (out_set, True) if changed else (value, False)
    return value, False


class Reclusterer:
    """Executes DSTC-style placement plans online, one batch at a time."""

    def __init__(
        self,
        storage,
        catalog,
        objects,
        indexes,
        coaccess,
        batch_size: int = DEFAULT_BATCH_SIZE,
        lock_timeout: float = DEFAULT_LOCK_TIMEOUT,
        min_weight: float = 1.0,
        decay: float = 0.5,
    ):
        self.storage = storage
        self.catalog = catalog
        self.objects = objects
        self.indexes = indexes
        self.coaccess = coaccess
        self.batch_size = max(1, batch_size)
        self.lock_timeout = lock_timeout
        self.min_weight = min_weight
        self.decay = decay
        self._counters = _ClusterCounters(
            storage.metrics.component("cluster")
        )
        self._run_mutex = threading.Lock()
        # -- cumulative status (SYS$CLUSTERING) --
        self.state = "idle"
        self.runs = 0
        self.moves_done = 0
        self.batches_done = 0
        self.pages_compacted = 0
        self.pages_allocated = 0
        self.ref_rewrites = 0
        self.index_rewrites = 0
        self.stubs_reclaimed = 0
        self.lock_timeouts = 0
        self.last_gain = 1.0
        self.last_run_at = 0.0
        self.last_error = ""

    # -- planning ------------------------------------------------------------

    def _objects_per_page(self, extent) -> int:
        """Page capacity in objects, from the extent's live average record
        size (tag byte + slot entry included)."""
        count = extent.record_count()
        if count == 0:
            return 0
        used = 0
        sampled = 0
        with self.storage.latch:  # sample consistently vs foreground writes
            for _, payload in extent.scan():
                used += len(payload) + 5  # tag byte + slot-directory entry
                sampled += 1
                if sampled >= 64:
                    break
        avg = max(1, used // max(1, sampled))
        return max(2, (extent.page_size - 4) // avg)

    def _page_of(self, extent, oid: OID):
        """The page a (possibly forwarded) record currently lives on."""
        try:
            with self.storage.latch:
                return extent.resolve_oid(oid).page
        except (RecordNotFoundError, StorageError):
            return None

    def plan(self) -> list[PlacementPlan]:
        """Current placement plans, one per class with co-access edges."""
        plans = []
        for class_name in self.coaccess.class_names():
            try:
                extent = self.catalog.extent_file(class_name)
            except Exception:
                continue  # class dropped since the edges were recorded
            capacity = self._objects_per_page(extent)
            if capacity < 2:
                continue
            plan = plan_placements(
                class_name,
                self.coaccess.edges_for_class(class_name),
                capacity,
                min_weight=self.min_weight,
                current_page_of=lambda oid, e=extent: self._page_of(e, oid),
            )
            if plan.groups:
                plans.append(plan)
        return plans

    # -- execution -----------------------------------------------------------

    def run_once(self) -> dict:
        """Plan and execute one full reclustering pass; returns run stats.
        Concurrent calls coalesce: a second caller returns immediately."""
        if not self._run_mutex.acquire(blocking=False):
            return {"state": "already_running", "moves": 0}
        started = time.monotonic()
        moves = batches = timeouts = 0
        gain_before = gain_after = 0
        try:
            self.state = "running"
            self.last_error = ""
            for plan in self.plan():
                gain_before += plan.pages_before
                gain_after += plan.pages_after
                done, timed_out = self._execute_plan(plan)
                moves += done
                batches += (done + self.batch_size - 1) // self.batch_size
                timeouts += timed_out
            if gain_after:
                self.last_gain = gain_before / gain_after
            self.coaccess.decay(self.decay)
            self.runs += 1
            self._counters.runs.inc()
            self.last_run_at = time.time()
            self.storage.events.emit(
                "cluster.run", moves=moves, batches=batches,
                lock_timeouts=timeouts,
                ms=round((time.monotonic() - started) * 1000.0, 3),
            )
        except Exception as exc:  # surface in SYS$CLUSTERING, don't die
            self.last_error = f"{type(exc).__name__}: {exc}"
            self.storage.events.emit("cluster.error", error=self.last_error)
            raise
        finally:
            self.state = "idle"
            self._run_mutex.release()
        return {
            "state": "ok", "moves": moves, "batches": batches,
            "lock_timeouts": timeouts, "estimated_gain": self.last_gain,
        }

    def _execute_plan(self, plan: PlacementPlan) -> tuple[int, int]:
        """Execute one class's plan in batches; returns
        ``(objects moved, lock timeouts)``."""
        moved = timeouts = 0
        batch: list[list[OID]] = []
        size = 0
        for group in plan.groups:
            batch.append(group)
            size += len(group)
            if size >= self.batch_size:
                outcome = self._execute_batch(plan.class_name, batch)
                if outcome is None:
                    timeouts += 1
                else:
                    moved += outcome
                batch, size = [], 0
        if batch:
            outcome = self._execute_batch(plan.class_name, batch)
            if outcome is None:
                timeouts += 1
            else:
                moved += outcome
        return moved, timeouts

    def _execute_batch(
        self, class_name: str, groups: list[list[OID]]
    ) -> int | None:
        """Relocate one batch of page groups under a single transaction.
        Returns objects moved, or ``None`` on a lock timeout (the batch
        rolled back; retry at the next run)."""
        storage = self.storage
        extent = self.catalog.extent_file(class_name)
        txn = storage.begin()
        txn.lock_timeout = self.lock_timeout
        try:
            resources = sorted(
                ("file", f.file_id) for f in storage.files()
            )
            for resource in resources:
                storage.txns.lock_exclusive(txn, resource)
        except LockError:
            txn.abort()
            self.lock_timeouts += 1
            self._counters.lock_timeouts.inc()
            self.storage.events.emit(
                "cluster.batch_yield", class_name=class_name,
                groups=len(groups),
            )
            return None

        mapping: dict[OID, OID] = {}
        pages_before: set[int] = set()
        for group in groups:
            target = None
            for oid in group:
                page = self._page_of(extent, oid)
                if page is None:
                    continue  # deleted since planning
                pages_before.add(page)
                if target is None:
                    target = self._allocate_target(extent, txn)
                try:
                    new_oid = storage.relocate(extent, oid, target, txn)
                except PageFullError:
                    # Estimate was optimistic: spill to a fresh page.
                    target = self._allocate_target(extent, txn)
                    new_oid = storage.relocate(extent, oid, target, txn)
                except (RecordNotFoundError, StorageError):
                    continue  # concurrently deleted or already re-identified
                if new_oid != oid:
                    mapping[oid] = new_oid

        if not mapping:
            txn.commit()
            return 0

        # Re-home caches first: the reference rewrite below invalidates
        # any entry (old or new identity) whose payload it touches, and a
        # later rehome must not resurrect a stale state over that.
        for old_oid, new_oid in mapping.items():
            self.objects.note_relocation(class_name, old_oid, new_oid)
        rewrites = self._rewrite_references(mapping, txn)
        index_rewrites = self.indexes.remap_oids(mapping)
        self._rebind_names(mapping, txn)
        for old_oid in mapping:
            storage.reclaim_stub(extent, old_oid, txn)
        txn.commit()

        moves = len(mapping)
        self.moves_done += moves
        self.batches_done += 1
        self.ref_rewrites += rewrites
        self.index_rewrites += index_rewrites
        self.stubs_reclaimed += moves
        self.pages_compacted += max(0, len(pages_before) - len(
            {new.page for new in mapping.values()}
        ))
        self._counters.batches.inc()
        self._counters.moves.inc(moves)
        self._counters.ref_rewrites.inc(rewrites)
        self._counters.index_rewrites.inc(index_rewrites)
        self.storage.events.emit(
            "cluster.batch", class_name=class_name, moves=moves,
            ref_rewrites=rewrites, index_rewrites=index_rewrites,
        )
        return moves

    def _allocate_target(self, extent, txn) -> int:
        """A fresh, WAL-covered, page-map-registered target page."""
        with self.storage.latch:
            self.storage.buffer.start_capture()
            try:
                page_no = extent.allocate_page()
            finally:
                changes = self.storage.buffer.end_capture()
            self.storage._log_changes(txn, changes)
        self.pages_allocated += 1
        self._counters.pages_allocated.inc()
        return page_no

    def _rewrite_references(self, mapping: dict[OID, OID], txn) -> int:
        """Rewrite every stored reference to a moved OID, everywhere."""
        storage = self.storage
        rewrites = 0
        for storage_file in storage.files():
            for oid, payload in list(storage_file.scan()):
                try:
                    state = decode(payload)
                except SerdeError:
                    continue  # not a serde record (nothing to rewrite)
                new_state, changed = _replace_oids(state, mapping)
                if changed:
                    storage.update(storage_file, oid, encode(new_state), txn)
                    if self.objects.cache is not None:
                        self.objects.cache.invalidate(oid)
                    rewrites += 1
        return rewrites

    def _rebind_names(self, mapping: dict[OID, OID], txn) -> None:
        """Re-point named roots and catalog name bindings at moved OIDs."""
        storage = self.storage
        for name in storage.root_names():
            root = storage.get_root(name)
            if root in mapping:
                storage.set_root(name, mapping[root])
        for name, oid in self.catalog.named_objects().items():
            if oid in mapping:
                # bind_name persists through the names system file, whose
                # pages the generic reference rewrite already covered; this
                # keeps the catalog's in-memory map in step.
                with storage.latch:
                    storage.buffer.start_capture()
                    try:
                        self.catalog.bind_name(name, mapping[oid])
                    finally:
                        changes = storage.buffer.end_capture()
                    storage._log_changes(txn, changes)

    # -- status --------------------------------------------------------------

    def status(self) -> dict:
        """One SYS$CLUSTERING row."""
        return {
            "state": self.state,
            "runs": self.runs,
            "moves": self.moves_done,
            "batches": self.batches_done,
            "pages_allocated": self.pages_allocated,
            "pages_compacted": self.pages_compacted,
            "ref_rewrites": self.ref_rewrites,
            "index_rewrites": self.index_rewrites,
            "stubs_reclaimed": self.stubs_reclaimed,
            "lock_timeouts": self.lock_timeouts,
            "estimated_gain": round(self.last_gain, 3),
            "coaccess_edges": len(self.coaccess),
            "last_run_at": self.last_run_at,
            "last_error": self.last_error,
        }


class ReclusterDaemon:
    """Background thread running :meth:`Reclusterer.run_once` on a timer."""

    def __init__(self, reclusterer: Reclusterer, interval: float = 30.0):
        self.reclusterer = reclusterer
        self.interval = interval
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        if self.running:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="mood-recluster", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=10.0)
        self._thread = None

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.reclusterer.run_once()
            except Exception:
                # run_once already journaled and recorded last_error;
                # the daemon keeps its cadence.
                continue
