"""Greedy DSTC-style placement: co-accessed objects onto shared pages.

Darmont's comparison study of OO clustering techniques (and the follow-up
"advocacy for simplicity") found that a simple greedy statistics-driven
policy captures most of the locality win of far more elaborate schemes.
This module is that policy, pure and stateless:

1. take one class's co-access edges, heaviest first;
2. union-find them into clusters capped at the page's object capacity
   (an edge that would overflow either cluster is skipped);
3. order clusters by their internal weight and emit each as one target
   *page group* -- the ordered list of OIDs the reclusterer should
   co-locate on one fresh page.

Groups whose members already share a page are filtered out (nothing to
gain), so a second run over an already-clustered workload converges to
no work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.storage.oid import OID


@dataclass
class PlacementPlan:
    """The policy's output for one class."""

    class_name: str
    #: Each inner list is one target page's worth of OIDs, heaviest
    #: cluster first.
    groups: list[list[OID]] = field(default_factory=list)
    #: Pages a cold traversal touches today: each group's distinct current
    #: pages, summed per group (groups sharing a source page each pay for
    #: it -- a traversal of either group reads it separately).
    pages_before: int = 0
    #: Pages they will occupy afterwards (= ``len(groups)``).
    pages_after: int = 0

    @property
    def moves(self) -> int:
        return sum(len(group) for group in self.groups)

    @property
    def estimated_gain(self) -> float:
        """Cold-traversal I/O ratio before/after (>= 1.0 is a win)."""
        if not self.pages_after:
            return 1.0
        return self.pages_before / self.pages_after


class _UnionFind:
    def __init__(self) -> None:
        self.parent: dict[OID, OID] = {}
        self.size: dict[OID, int] = {}

    def find(self, oid: OID) -> OID:
        root = oid
        while self.parent.get(root, root) != root:
            root = self.parent[root]
        while self.parent.get(oid, oid) != oid:
            self.parent[oid], oid = root, self.parent[oid]
        return root

    def add(self, oid: OID) -> None:
        if oid not in self.parent:
            self.parent[oid] = oid
            self.size[oid] = 1

    def union(self, a: OID, b: OID, cap: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return True
        if self.size[ra] + self.size[rb] > cap:
            return False
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        return True


def plan_placements(
    class_name: str,
    edges: list[tuple[OID, OID, float]],
    objects_per_page: int,
    min_weight: float = 1.0,
    current_page_of=None,
) -> PlacementPlan:
    """Compute the placement plan for one class.

    ``edges`` come from :meth:`CoAccessGraph.edges_for_class` (heaviest
    first); ``objects_per_page`` caps cluster size; edges below
    ``min_weight`` are noise and ignored.  ``current_page_of(oid)`` (when
    given) lets the plan drop groups that are already co-located and
    count the pages the traversal touches today.
    """
    plan = PlacementPlan(class_name)
    if objects_per_page < 2:
        return plan
    if current_page_of is not None:
        # Stability: among equal weights, union already-co-located pairs
        # first so the previous run's placement is re-affirmed before
        # cross-page edges spend cluster capacity.  Without this the
        # chunking of equal-weight chains depends on OID order -- which
        # every relocation changes -- and successive runs oscillate
        # instead of converging to no work.
        pages = {}

        def _page(oid):
            if oid not in pages:
                pages[oid] = current_page_of(oid)
            return pages[oid]

        edges = sorted(
            edges,
            key=lambda e: (
                -e[2],
                _page(e[0]) is None or _page(e[0]) != _page(e[1]),
                e[0], e[1],
            ),
        )
    uf = _UnionFind()
    cluster_weight: dict[OID, float] = {}
    order: dict[OID, int] = {}
    for a, b, weight in edges:
        if weight < min_weight:
            continue
        uf.add(a)
        uf.add(b)
        order.setdefault(a, len(order))
        order.setdefault(b, len(order))
        root_a, root_b = uf.find(a), uf.find(b)
        if root_a == root_b:
            cluster_weight[root_a] = cluster_weight.get(root_a, 0.0) + weight
        elif uf.union(a, b, objects_per_page):
            merged = (
                cluster_weight.pop(root_a, 0.0)
                + cluster_weight.pop(root_b, 0.0)
                + weight
            )
            cluster_weight[uf.find(a)] = merged
    clusters: dict[OID, list[OID]] = {}
    for oid in uf.parent:
        clusters.setdefault(uf.find(oid), []).append(oid)
    ranked = sorted(
        (members for members in clusters.values() if len(members) >= 2),
        key=lambda members: -cluster_weight.get(uf.find(members[0]), 0.0),
    )
    pages_before = 0
    for members in ranked:
        # First-touch order within the group (page-internal order does
        # not matter for I/O, but determinism matters for tests).
        members.sort(key=lambda oid: order[oid])
        if current_page_of is not None:
            pages = {current_page_of(oid) for oid in members}
            pages.discard(None)
            if len(pages) <= 1:
                continue  # already co-located: no I/O to win
            pages_before += len(pages)
        plan.groups.append(members)
    plan.pages_before = pages_before
    plan.pages_after = len(plan.groups)
    return plan
