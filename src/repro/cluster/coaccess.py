"""The co-access graph: which objects are traversed together, how often.

Nodes are OIDs, edges are weighted by how often two objects of the same
class were dereferenced consecutively -- the signal DSTC-style dynamic
clustering policies feed on.  Two sources drive it, both wired through
:class:`~repro.engine.objects.ObjectManager`:

* ``deref_many`` hop frontiers: a fused traversal dereferences each hop's
  frontier in traversal order, so consecutive frontier members are
  exactly the objects a cold replay of the same query will chase
  back-to-back;
* single ``deref`` streams: with batching off (or under a transaction)
  the same traversal arrives one chase at a time; a per-class "last
  dereferenced" register recovers the consecutive pairs.

Only same-class pairs become edges: extent files never share pages, so
cross-class co-location is physically impossible here and cross-class
pairs would only dilute the budget.  The graph is bounded: when the edge
budget overflows, the lightest half is dropped (recently-reinforced edges
survive); :meth:`decay` ages all weights between reclustering runs so the
policy tracks the *current* workload.
"""

from __future__ import annotations

import threading

from repro.storage.oid import OID

#: Default maximum number of edges kept.
DEFAULT_MAX_EDGES = 50_000


class CoAccessGraph:
    """Bounded weighted graph of same-class co-dereference pairs."""

    def __init__(self, max_edges: int = DEFAULT_MAX_EDGES):
        self.max_edges = max_edges
        self._mutex = threading.Lock()
        # (low OID, high OID) -> weight; both of the same class.
        self._edges: dict[tuple[OID, OID], float] = {}
        # OID -> class name for every OID appearing in an edge.
        self._classes: dict[OID, str] = {}
        # class name -> OID of its most recent single deref.
        self._last_single: dict[str, OID] = {}
        self.pairs_noted = 0
        self.edges_dropped = 0

    def __len__(self) -> int:
        with self._mutex:
            return len(self._edges)

    # -- recording -----------------------------------------------------------

    def note_deref(self, oid: OID, class_name: str) -> None:
        """Record one single-object chase; pairs it with the previous
        chase of the same class."""
        with self._mutex:
            last = self._last_single.get(class_name)
            self._last_single[class_name] = oid
            if last is not None and last != oid:
                self._bump(last, oid, class_name)

    def note_frontier(self, members: list[tuple[OID, str]]) -> None:
        """Record one ``deref_many`` frontier in traversal order; every
        consecutive same-class pair gains an edge."""
        with self._mutex:
            for (a, cls_a), (b, cls_b) in zip(members, members[1:]):
                if cls_a == cls_b and a != b:
                    self._bump(a, b, cls_a)

    def _bump(self, a: OID, b: OID, class_name: str, weight: float = 1.0) -> None:
        key = (a, b) if a <= b else (b, a)
        self._edges[key] = self._edges.get(key, 0.0) + weight
        self._classes[a] = class_name
        self._classes[b] = class_name
        self.pairs_noted += 1
        if len(self._edges) > self.max_edges:
            self._evict()

    def _evict(self) -> None:
        """Drop the lightest half of the edges (budget overflow)."""
        keep = sorted(self._edges.items(), key=lambda kv: kv[1],
                      reverse=True)[: self.max_edges // 2]
        self.edges_dropped += len(self._edges) - len(keep)
        self._edges = dict(keep)
        live = {oid for key in self._edges for oid in key}
        self._classes = {
            oid: cls for oid, cls in self._classes.items() if oid in live
        }

    # -- maintenance ---------------------------------------------------------

    def rename(self, old_oid: OID, new_oid: OID) -> None:
        """Carry an OID's accumulated affinity over to its new identity
        after a relocation."""
        with self._mutex:
            cls = self._classes.pop(old_oid, None)
            if cls is None:
                return
            self._classes[new_oid] = cls
            for key in [k for k in self._edges if old_oid in k]:
                weight = self._edges.pop(key)
                a, b = key
                a = new_oid if a == old_oid else a
                b = new_oid if b == old_oid else b
                if a == b:
                    continue
                new_key = (a, b) if a <= b else (b, a)
                self._edges[new_key] = self._edges.get(new_key, 0.0) + weight
            for cls_name, last in list(self._last_single.items()):
                if last == old_oid:
                    self._last_single[cls_name] = new_oid

    def forget(self, oid: OID) -> None:
        """Drop an OID entirely (object deleted)."""
        with self._mutex:
            self._classes.pop(oid, None)
            for key in [k for k in self._edges if oid in k]:
                del self._edges[key]

    def decay(self, factor: float = 0.5, floor: float = 0.25) -> None:
        """Age every weight by ``factor``; edges below ``floor`` vanish."""
        with self._mutex:
            decayed = {
                key: weight * factor
                for key, weight in self._edges.items()
                if weight * factor >= floor
            }
            self.edges_dropped += len(self._edges) - len(decayed)
            self._edges = decayed

    def clear(self) -> None:
        with self._mutex:
            self._edges.clear()
            self._classes.clear()
            self._last_single.clear()

    # -- consumption ---------------------------------------------------------

    def class_names(self) -> list[str]:
        """Classes with at least one edge."""
        with self._mutex:
            return sorted({cls for cls in self._classes.values()})

    def edges_for_class(self, class_name: str) -> list[tuple[OID, OID, float]]:
        """``(a, b, weight)`` edges of one class, heaviest first."""
        with self._mutex:
            out = [
                (a, b, weight)
                for (a, b), weight in self._edges.items()
                if self._classes.get(a) == class_name
            ]
        out.sort(key=lambda e: (-e[2], e[0], e[1]))
        return out
