"""Buffer manager: a pool of page frames over the simulated disk.

ESM provides MOOD with buffered page access; we reproduce a classic
pin/unpin LRU buffer pool.  Frames are ``bytearray`` views that callers
(e.g. :class:`repro.storage.page.SlottedPage`) edit in place; a frame
marked dirty is written back when evicted or flushed.

The pool also keeps hit/miss statistics so experiments can distinguish
buffer behaviour from raw disk behaviour, and supports :meth:`drop_all`,
which models losing volatile memory in a crash.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.core.errors import StorageError
from repro.storage.disk import SimulatedDisk

PageId = tuple[int, int]  # (volume, page_no)


@dataclass
class _Frame:
    page_id: PageId
    data: bytearray
    pin_count: int = 0
    dirty: bool = False


@dataclass
class BufferStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    flushes: int = 0
    pins: int = 0
    unpins: int = 0
    capture_windows: int = 0   # capture windows ever opened
    peak_resident: int = 0     # high-water mark of resident frames

    @property
    def fetches(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.flushes = 0
        self.pins = 0
        self.unpins = 0
        self.capture_windows = 0
        self.peak_resident = 0


@dataclass
class _CaptureWindow:
    """One open before-image capture window (they nest, LIFO)."""

    before: dict[PageId, bytes] = field(default_factory=dict)
    dirty: set[PageId] = field(default_factory=set)


class _BufferCounters:
    """Pre-resolved registry counters for the pool's hot paths."""

    __slots__ = ("hits", "misses", "evictions", "flushes")

    def __init__(self, component):
        self.hits = component.counter("hits")
        self.misses = component.counter("misses")
        self.evictions = component.counter("evictions")
        self.flushes = component.counter("flushes")


class BufferManager:
    """Fixed-capacity LRU buffer pool with pin counting."""

    def __init__(self, disk: SimulatedDisk, capacity: int = 128):
        if capacity < 1:
            raise StorageError("buffer pool needs at least one frame")
        self.disk = disk
        self.capacity = capacity
        self.stats = BufferStats()
        # Recency-ordered: least-recently used first.  A fetch moves the
        # frame to the tail, so eviction pops from the head in O(1) (the
        # scan below only skips pinned frames).
        self._frames: "OrderedDict[PageId, _Frame]" = OrderedDict()
        self._captures: list[_CaptureWindow] = []
        self._metrics = None

    def attach_metrics(self, component) -> None:
        """Mirror pool activity into registry counters (``buffer.*``)."""
        self._metrics = _BufferCounters(component)

    # -- core protocol -------------------------------------------------------

    def fetch(self, volume: int, page_no: int) -> bytearray:
        """Pin the page and return its in-memory frame buffer."""
        page_id = (volume, page_no)
        frame = self._frames.get(page_id)
        if frame is None:
            self.stats.misses += 1
            if self._metrics is not None:
                self._metrics.misses.inc()
            self._ensure_room()
            frame = _Frame(page_id, bytearray(self.disk.read_page(volume, page_no)))
            self._frames[page_id] = frame
            if len(self._frames) > self.stats.peak_resident:
                self.stats.peak_resident = len(self._frames)
        else:
            self.stats.hits += 1
            if self._metrics is not None:
                self._metrics.hits.inc()
            self._frames.move_to_end(page_id)
        for window in self._captures:
            if page_id not in window.before:
                window.before[page_id] = bytes(frame.data)
        frame.pin_count += 1
        self.stats.pins += 1
        return frame.data

    def unpin(self, volume: int, page_no: int, dirty: bool = False) -> None:
        frame = self._frames.get((volume, page_no))
        if frame is None or frame.pin_count == 0:
            raise StorageError(f"unpin of unpinned page {volume}.{page_no}")
        frame.pin_count -= 1
        self.stats.unpins += 1
        frame.dirty = frame.dirty or dirty
        if dirty:
            for window in self._captures:
                # A window only reports pages it saw fetched: the before-
                # image must predate the window's own start.
                if (volume, page_no) in window.before:
                    window.dirty.add((volume, page_no))

    def _ensure_room(self) -> None:
        if len(self._frames) < self.capacity:
            return
        # Frames iterate least-recently used first; the first unpinned one
        # is the LRU victim (O(1) amortised, vs. the old full min() scan).
        for frame in self._frames.values():
            if frame.pin_count == 0:
                self._evict(frame)
                return
        raise StorageError("buffer pool exhausted: every frame is pinned")

    def _evict(self, frame: _Frame) -> None:
        if frame.dirty:
            self.disk.write_page(*frame.page_id, bytes(frame.data))
            self.stats.flushes += 1
            if self._metrics is not None:
                self._metrics.flushes.inc()
        del self._frames[frame.page_id]
        self.stats.evictions += 1
        if self._metrics is not None:
            self._metrics.evictions.inc()

    # -- page-image capture (write-ahead logging support) --------------------

    def start_capture(self) -> None:
        """Begin recording before-images of pages touched from now on.

        Windows nest: each ``start_capture`` pushes a fresh window and each
        ``end_capture`` pops the innermost one, so WAL before-image capture
        and an observability measurement window can coexist.  Every open
        window records the before-image of each page fetched while it is
        open, independently of the others.
        """
        self._captures.append(_CaptureWindow())
        self.stats.capture_windows += 1

    def end_capture(self) -> list[tuple[PageId, bytes, bytes]]:
        """Close the innermost window; return ``(page_id, before, after)``
        per page dirtied inside it."""
        if not self._captures:
            raise StorageError("no page capture in progress")
        window = self._captures.pop()
        changes: list[tuple[PageId, bytes, bytes]] = []
        for page_id in sorted(window.dirty):
            before = window.before[page_id]
            frame = self._frames.get(page_id)
            if frame is not None:
                after = bytes(frame.data)
            else:  # evicted mid-operation; the disk holds the after-image
                after = self.disk.peek_page(*page_id)
            changes.append((page_id, before, after))
        # Outer windows must also report pages dirtied by the inner one.
        for outer in self._captures:
            outer.dirty.update(
                page_id for page_id in window.dirty if page_id in outer.before
            )
        return changes

    @property
    def capture_depth(self) -> int:
        return len(self._captures)

    # -- durability --------------------------------------------------------

    def flush_page(self, volume: int, page_no: int) -> None:
        frame = self._frames.get((volume, page_no))
        if frame is not None and frame.dirty:
            self.disk.write_page(volume, page_no, bytes(frame.data))
            frame.dirty = False
            self.stats.flushes += 1
            if self._metrics is not None:
                self._metrics.flushes.inc()

    def flush_all(self) -> None:
        for page_id in sorted(self._frames):
            self.flush_page(*page_id)

    def drop_all(self) -> None:
        """Discard every frame without write-back (crash simulation)."""
        self._frames.clear()

    def forget_page(self, volume: int, page_no: int) -> None:
        """Discard a frame without write-back (used when a page is freed)."""
        self._frames.pop((volume, page_no), None)

    # -- introspection -------------------------------------------------------

    @property
    def resident_pages(self) -> list[PageId]:
        return sorted(self._frames)

    def pin_count(self, volume: int, page_no: int) -> int:
        frame = self._frames.get((volume, page_no))
        return frame.pin_count if frame else 0
