"""B+-tree index.

ESM supplies MOOD with B+-tree indexing (Section 3.2, ``IndSel``); the cost
model's Table 9 records, per index ``I``: its order ``v(I)``, number of
levels ``level(I)``, number of leaves ``leaves(I)``, key size ``keysize(I)``
and unique flag ``unique(I)``.  This implementation maintains all five.

The tree stores ``(key, value)`` entries; duplicate keys are supported (for
non-unique indexes) by ordering entries on the composite ``(key, value)``,
so every entry has a unique position and deletes are exact.  Each node is
considered to occupy one disk page: every node visited during a descent is
reported to an optional *accountant* callback, which the storage manager
wires to a random-page-read charge -- this makes measured index I/O
comparable with the INDCOST formula of Section 5.

The tree is parameterised by its order ``v``: nodes hold at most ``2v``
entries (leaves) or keys (internal nodes) and at least ``v`` except for the
root, as in the classical definition used by the paper's INDCOST derivation.
"""

from __future__ import annotations

import bisect
from collections.abc import Callable, Iterator
from dataclasses import dataclass
from typing import Any

from repro.core.errors import IndexStructureError


class _MinSentinel:
    """Orders below every value; used to form open lower range bounds."""

    def __lt__(self, other: object) -> bool:
        return not isinstance(other, _MinSentinel)

    def __gt__(self, other: object) -> bool:
        return False

    def __le__(self, other: object) -> bool:
        return True

    def __ge__(self, other: object) -> bool:
        return isinstance(other, _MinSentinel)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _MinSentinel)

    def __hash__(self) -> int:
        return hash("_MinSentinel")


class _MaxSentinel:
    """Orders above every value; used to form open upper range bounds."""

    def __lt__(self, other: object) -> bool:
        return False

    def __gt__(self, other: object) -> bool:
        return not isinstance(other, _MaxSentinel)

    def __le__(self, other: object) -> bool:
        return isinstance(other, _MaxSentinel)

    def __ge__(self, other: object) -> bool:
        return True

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _MaxSentinel)

    def __hash__(self) -> int:
        return hash("_MaxSentinel")


_MIN = _MinSentinel()
_MAX = _MaxSentinel()


class _Node:
    __slots__ = ("leaf", "keys", "children", "values", "next")

    def __init__(self, leaf: bool):
        self.leaf = leaf
        self.keys: list[Any] = []      # composite (key, value) keys
        self.children: list[_Node] = []  # internal only
        self.values: list[Any] = []    # leaf only: the value parts
        self.next: _Node | None = None  # leaf chain


@dataclass(frozen=True)
class BTreeParams:
    """The paper's Table 9 parameters for a B+-tree index ``I``."""

    v: int
    level: int
    leaves: int
    keysize: int
    unique: bool


@dataclass
class BTreeStats:
    node_reads: int = 0
    splits: int = 0
    merges: int = 0
    borrows: int = 0

    def reset(self) -> None:
        self.node_reads = 0
        self.splits = 0
        self.merges = 0
        self.borrows = 0


class BPlusTree:
    """Order-``v`` B+-tree over ``(key, value)`` entries."""

    def __init__(
        self,
        order: int = 32,
        unique: bool = False,
        keysize: int = 8,
        on_node_access: Callable[[], None] | None = None,
    ):
        if order < 2:
            raise IndexStructureError("B+-tree order must be at least 2")
        self.order = order
        self.unique = unique
        self.keysize = keysize
        self.stats = BTreeStats()
        self._on_node_access = on_node_access
        self._root = _Node(leaf=True)
        self._height = 1
        self._num_leaves = 1
        self._num_entries = 0

    # -- bookkeeping -----------------------------------------------------

    @property
    def max_entries(self) -> int:
        return 2 * self.order

    @property
    def min_entries(self) -> int:
        return self.order

    def __len__(self) -> int:
        return self._num_entries

    def params(self) -> BTreeParams:
        return BTreeParams(
            v=self.order,
            level=self._height,
            leaves=self._num_leaves,
            keysize=self.keysize,
            unique=self.unique,
        )

    def _visit(self, node: _Node) -> None:
        self.stats.node_reads += 1
        if self._on_node_access is not None:
            self._on_node_access()

    @staticmethod
    def _composite(key: Any, value: Any) -> tuple[Any, Any]:
        return (key, value)

    # -- search -----------------------------------------------------------

    def _descend_to_leaf(self, ckey: tuple[Any, Any]) -> _Node:
        node = self._root
        self._visit(node)
        while not node.leaf:
            index = bisect.bisect_right(node.keys, ckey)
            node = node.children[index]
            self._visit(node)
        return node

    def search(self, key: Any) -> list[Any]:
        """Return every value stored under ``key`` (possibly empty)."""
        return [value for _, value in self.range_scan(key, key)]

    def contains(self, key: Any) -> bool:
        for _ in self.range_scan(key, key):
            return True
        return False

    def range_scan(
        self,
        lo: Any = None,
        hi: Any = None,
        lo_inclusive: bool = True,
        hi_inclusive: bool = True,
    ) -> Iterator[tuple[Any, Any]]:
        """Yield ``(key, value)`` pairs with ``lo <= key <= hi`` in order.

        ``None`` bounds are open.  Exclusive bounds are selected with the
        ``*_inclusive`` flags.
        """
        if lo is None:
            start: tuple[Any, Any] = (_MIN, _MIN)
        else:
            start = (lo, _MIN) if lo_inclusive else (lo, _MAX)
        node = self._descend_to_leaf(start)
        index = bisect.bisect_left(node.keys, start)
        if not lo_inclusive and lo is not None:
            index = bisect.bisect_right(node.keys, start)
        while node is not None:
            while index < len(node.keys):
                key, value = node.keys[index]
                if hi is not None:
                    if hi_inclusive and key > hi:
                        return
                    if not hi_inclusive and key >= hi:
                        return
                yield key, value
                index += 1
            node = node.next
            if node is not None:
                self._visit(node)
            index = 0

    def items(self) -> Iterator[tuple[Any, Any]]:
        return self.range_scan()

    def min_key(self) -> Any:
        for key, _ in self.range_scan():
            return key
        return None

    def max_key(self) -> Any:
        node = self._root
        self._visit(node)
        while not node.leaf:
            node = node.children[-1]
            self._visit(node)
        if not node.keys:
            return None
        return node.keys[-1][0]

    # -- insertion -----------------------------------------------------------

    def insert(self, key: Any, value: Any) -> None:
        if self.unique and self.contains(key):
            raise IndexStructureError(
                f"duplicate key {key!r} in unique index"
            )
        ckey = self._composite(key, value)
        split = self._insert_into(self._root, ckey)
        if split is not None:
            sep, right = split
            new_root = _Node(leaf=False)
            new_root.keys = [sep]
            new_root.children = [self._root, right]
            self._root = new_root
            self._height += 1
        self._num_entries += 1

    def _insert_into(
        self, node: _Node, ckey: tuple[Any, Any]
    ) -> tuple[tuple[Any, Any], _Node] | None:
        self._visit(node)
        if node.leaf:
            index = bisect.bisect_left(node.keys, ckey)
            if index < len(node.keys) and node.keys[index] == ckey:
                raise IndexStructureError(
                    f"entry {ckey!r} already present in index"
                )
            node.keys.insert(index, ckey)
            if len(node.keys) <= self.max_entries:
                return None
            return self._split_leaf(node)
        index = bisect.bisect_right(node.keys, ckey)
        split = self._insert_into(node.children[index], ckey)
        if split is None:
            return None
        sep, right = split
        node.keys.insert(index, sep)
        node.children.insert(index + 1, right)
        if len(node.keys) <= self.max_entries:
            return None
        return self._split_internal(node)

    def _split_leaf(self, node: _Node) -> tuple[tuple[Any, Any], _Node]:
        self.stats.splits += 1
        mid = len(node.keys) // 2
        right = _Node(leaf=True)
        right.keys = node.keys[mid:]
        node.keys = node.keys[:mid]
        right.next = node.next
        node.next = right
        self._num_leaves += 1
        return right.keys[0], right

    def _split_internal(self, node: _Node) -> tuple[tuple[Any, Any], _Node]:
        self.stats.splits += 1
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = _Node(leaf=False)
        right.keys = node.keys[mid + 1:]
        right.children = node.children[mid + 1:]
        node.keys = node.keys[:mid]
        node.children = node.children[:mid + 1]
        return sep, right

    # -- deletion ------------------------------------------------------------

    def delete(self, key: Any, value: Any) -> bool:
        """Remove the exact ``(key, value)`` entry; return whether found."""
        ckey = self._composite(key, value)
        removed = self._delete_from(self._root, ckey)
        if not removed:
            return False
        if not self._root.leaf and len(self._root.children) == 1:
            self._root = self._root.children[0]
            self._height -= 1
        self._num_entries -= 1
        return True

    def _delete_from(self, node: _Node, ckey: tuple[Any, Any]) -> bool:
        self._visit(node)
        if node.leaf:
            index = bisect.bisect_left(node.keys, ckey)
            if index >= len(node.keys) or node.keys[index] != ckey:
                return False
            node.keys.pop(index)
            return True
        index = bisect.bisect_right(node.keys, ckey)
        child = node.children[index]
        removed = self._delete_from(child, ckey)
        if removed:
            self._rebalance(node, index)
        return removed

    def _min_load(self, node: _Node) -> int:
        return self.min_entries

    def _rebalance(self, parent: _Node, index: int) -> None:
        child = parent.children[index]
        if len(child.keys) >= self._min_load(child):
            return
        left = parent.children[index - 1] if index > 0 else None
        right = parent.children[index + 1] if index + 1 < len(parent.children) else None
        if left is not None and len(left.keys) > self._min_load(left):
            self._borrow_from_left(parent, index, left, child)
        elif right is not None and len(right.keys) > self._min_load(right):
            self._borrow_from_right(parent, index, child, right)
        elif left is not None:
            self._merge(parent, index - 1, left, child)
        elif right is not None:
            self._merge(parent, index, child, right)

    def _borrow_from_left(
        self, parent: _Node, index: int, left: _Node, child: _Node
    ) -> None:
        self.stats.borrows += 1
        if child.leaf:
            child.keys.insert(0, left.keys.pop())
            parent.keys[index - 1] = child.keys[0]
        else:
            child.keys.insert(0, parent.keys[index - 1])
            parent.keys[index - 1] = left.keys.pop()
            child.children.insert(0, left.children.pop())

    def _borrow_from_right(
        self, parent: _Node, index: int, child: _Node, right: _Node
    ) -> None:
        self.stats.borrows += 1
        if child.leaf:
            child.keys.append(right.keys.pop(0))
            parent.keys[index] = right.keys[0]
        else:
            child.keys.append(parent.keys[index])
            parent.keys[index] = right.keys.pop(0)
            child.children.append(right.children.pop(0))

    def _merge(self, parent: _Node, left_index: int, left: _Node, right: _Node) -> None:
        self.stats.merges += 1
        if left.leaf:
            left.keys.extend(right.keys)
            left.next = right.next
            self._num_leaves -= 1
        else:
            left.keys.append(parent.keys[left_index])
            left.keys.extend(right.keys)
            left.children.extend(right.children)
        parent.keys.pop(left_index)
        parent.children.pop(left_index + 1)

    # -- structural checking (used by tests) -----------------------------------

    def check_invariants(self) -> None:
        """Raise :class:`IndexStructureError` on any structural violation."""
        leaves: list[_Node] = []
        self._check_node(self._root, depth=1, leaves=leaves, is_root=True)
        if len(leaves) != self._num_leaves:
            raise IndexStructureError(
                f"leaf counter {self._num_leaves} != actual {len(leaves)}"
            )
        # Leaf chain covers all leaves in order.
        chained = []
        node: _Node | None = leaves[0] if leaves else None
        while node is not None:
            chained.append(node)
            node = node.next
        if [id(n) for n in chained] != [id(n) for n in leaves]:
            raise IndexStructureError("leaf chain does not match leaf order")
        flat = [ckey for leaf in leaves for ckey in leaf.keys]
        if flat != sorted(flat):
            raise IndexStructureError("entries are not globally sorted")
        if len(flat) != self._num_entries:
            raise IndexStructureError(
                f"entry counter {self._num_entries} != actual {len(flat)}"
            )

    def _check_node(
        self, node: _Node, depth: int, leaves: list[_Node], is_root: bool
    ) -> None:
        if node.leaf:
            if depth != self._height:
                raise IndexStructureError("leaves at differing depths")
            if not is_root and len(node.keys) < self.min_entries:
                raise IndexStructureError("underfull leaf")
            if len(node.keys) > self.max_entries:
                raise IndexStructureError("overfull leaf")
            leaves.append(node)
            return
        if not is_root and len(node.keys) < self.min_entries:
            raise IndexStructureError("underfull internal node")
        if len(node.keys) > self.max_entries:
            raise IndexStructureError("overfull internal node")
        if len(node.children) != len(node.keys) + 1:
            raise IndexStructureError("internal fan-out mismatch")
        if node.keys != sorted(node.keys):
            raise IndexStructureError("internal keys unsorted")
        for child in node.children:
            self._check_node(child, depth + 1, leaves, is_root=False)
