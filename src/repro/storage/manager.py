"""The storage manager facade: our stand-in for the Exodus Storage Manager.

Per the paper's Section 1, ESM gives MOOD storage management, concurrency
control, and backup/recovery; the MOOD kernel layers catalog management,
SQL interpretation/optimization, and dynamic function linking on top.  This
class is the 'ESM' the rest of the reproduction talks to:

* volumes/pages/buffering over the simulated disk,
* record files addressed by OID,
* B+-tree, extendible-hash and R-tree indexes wired into I/O accounting,
* transactions with strict file-level 2PL and physical WAL,
* crash and restart-recovery simulation,
* named roots (persistent entry points used to bootstrap the catalog).
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.core.errors import (
    FileNotFoundStorageError,
    StorageError,
)
from repro.obs.events import EventJournal
from repro.obs.metrics import MetricsRegistry
from repro.storage.btree import BPlusTree
from repro.storage.buffer import BufferManager
from repro.storage.disk import DiskParams, IOStats, SimulatedDisk
from repro.storage.file import _FWD, StorageCounters, StorageFile
from repro.storage.hashindex import ExtendibleHashIndex
from repro.storage.locks import LockManager
from repro.storage.oid import OID
from repro.storage.recovery import RecoveryReport, recover
from repro.storage.rtree import RTree
from repro.storage.transactions import Transaction, TransactionManager
from repro.storage.wal import LogKind, WriteAheadLog


class StorageManager:
    """Facade over disk, buffer pool, WAL, locks, files and indexes."""

    def __init__(
        self,
        params: DiskParams | None = None,
        buffer_capacity: int = 256,
        page_base: int = 0,
    ):
        self.metrics = MetricsRegistry()
        #: Server-wide journal of notable operational events (lock waits,
        #: deadlocks, checkpoints, recovery, cache storms, admission
        #: rejections); components above the storage layer share it.
        self.events = EventJournal()
        self.disk = SimulatedDisk(params, page_base=page_base)
        self.disk.attach_metrics(self.metrics.component("disk"))
        self.volume = self.disk.mount_volume()
        self.buffer = BufferManager(self.disk, buffer_capacity)
        self.buffer.attach_metrics(self.metrics.component("buffer"))
        self.wal = WriteAheadLog(self.disk.params)
        self.wal.attach_metrics(self.metrics.component("wal"))
        self.locks = LockManager()
        self.locks.attach_metrics(self.metrics.component("locks"))
        self.locks.attach_events(self.events)
        self.txns = TransactionManager(self.wal, self.locks, self._apply_page_image)
        self.txns.on_abort = self._refresh_after_abort
        #: The storage latch (shared with the transaction manager and used
        #: by the server as its engine latch): whoever holds it may touch
        #: pages, the buffer pool, and capture windows.  Reentrant, so
        #: nested storage calls under a session's statement are free.
        self.latch = self.txns.latch
        #: Forwarding/relocation counters (``storage.*``), shared by every
        #: file so chain-following and stub work is visible fleet-wide.
        self.storage_counters = StorageCounters(
            self.metrics.component("storage")
        )
        self._files: dict[int, StorageFile] = {}
        self._file_names: dict[str, int] = {}
        self._next_file_id = 1
        #: Test hook: called between a relocation's MOVE log record and
        #: its page writes (None in production).
        self._relocate_failpoint = None
        self._btrees: dict[str, BPlusTree] = {}
        self._hashes: dict[str, ExtendibleHashIndex] = {}
        self._rtrees: dict[str, RTree] = {}
        self._named_roots: dict[str, OID] = {}
        #: Callbacks run when volatile state is lost (crash) or rebuilt
        #: (restart recovery) -- caches layered above register here.
        self._reset_hooks: list = []

    def add_reset_hook(self, hook) -> None:
        """Register ``hook()`` to run on :meth:`crash` and :meth:`restart`."""
        self._reset_hooks.append(hook)

    def _run_reset_hooks(self) -> None:
        for hook in self._reset_hooks:
            hook()

    # -- I/O accounting ------------------------------------------------------

    @property
    def params(self) -> DiskParams:
        return self.disk.params

    @property
    def io_stats(self) -> IOStats:
        return self.disk.stats

    def io_snapshot(self) -> IOStats:
        return self.disk.stats.snapshot()

    def _charge_index_page(self) -> None:
        """One index-node visit = one random page read (INDCOST model)."""
        self.disk.stats.charge_random_read(self.disk.params)

    # -- files --------------------------------------------------------------

    def create_file(self, name: str | None = None) -> StorageFile:
        file_id = self._next_file_id
        self._next_file_id += 1
        storage_file = StorageFile(file_id, self.volume, self.buffer)
        storage_file.counters = self.storage_counters
        self._files[file_id] = storage_file
        if name is not None:
            if name in self._file_names:
                raise StorageError(f"file named {name!r} already exists")
            self._file_names[name] = file_id
        return storage_file

    def file(self, file_id: int) -> StorageFile:
        try:
            return self._files[file_id]
        except KeyError:
            raise FileNotFoundStorageError(f"no file {file_id}") from None

    def file_by_name(self, name: str) -> StorageFile:
        if name not in self._file_names:
            raise FileNotFoundStorageError(f"no file named {name!r}")
        return self._files[self._file_names[name]]

    def drop_file(self, file_id: int) -> None:
        storage_file = self.file(file_id)
        storage_file.destroy()
        del self._files[file_id]
        for name, fid in list(self._file_names.items()):
            if fid == file_id:
                del self._file_names[name]

    def files(self) -> list[StorageFile]:
        return [self._files[fid] for fid in sorted(self._files)]

    # -- record operations (transaction-aware) -------------------------------

    def insert(
        self, storage_file: StorageFile, payload: bytes, txn: Transaction | None = None
    ) -> OID:
        if txn is None:
            return storage_file.insert(payload)
        self.txns.lock_exclusive(txn, ("file", storage_file.file_id))
        # The latch keeps the capture window (a global LIFO on the buffer
        # pool) paired with exactly this operation's page writes.
        with self.latch:
            self.buffer.start_capture()
            try:
                oid = storage_file.insert(payload)
            finally:
                changes = self.buffer.end_capture()
            self._log_changes(txn, changes)
        return oid

    def read(
        self, storage_file: StorageFile, oid: OID, txn: Transaction | None = None
    ) -> bytes:
        if txn is not None:
            self.txns.lock_shared(txn, ("file", storage_file.file_id))
        return storage_file.read(oid)

    def update(
        self,
        storage_file: StorageFile,
        oid: OID,
        payload: bytes,
        txn: Transaction | None = None,
    ) -> None:
        if txn is None:
            storage_file.update(oid, payload)
            return
        self.txns.lock_exclusive(txn, ("file", storage_file.file_id))
        with self.latch:
            self.buffer.start_capture()
            try:
                storage_file.update(oid, payload)
            finally:
                changes = self.buffer.end_capture()
            self._log_changes(txn, changes)

    def delete(
        self, storage_file: StorageFile, oid: OID, txn: Transaction | None = None
    ) -> None:
        if txn is None:
            storage_file.delete(oid)
            return
        self.txns.lock_exclusive(txn, ("file", storage_file.file_id))
        with self.latch:
            self.buffer.start_capture()
            try:
                storage_file.delete(oid)
            finally:
                changes = self.buffer.end_capture()
            self._log_changes(txn, changes)

    def scan(
        self, storage_file: StorageFile, txn: Transaction | None = None
    ) -> Iterator[tuple[OID, bytes]]:
        if txn is not None:
            self.txns.lock_shared(txn, ("file", storage_file.file_id))
        return storage_file.scan()

    def relocate(
        self,
        storage_file: StorageFile,
        oid: OID,
        target_page: int,
        txn: Transaction | None = None,
    ) -> OID:
        """Crash-safe object relocation: move ``oid``'s record onto
        ``target_page`` and return its new OID.

        Under a transaction the move is bracketed by a single logical
        ``MOVE`` log record followed by the physical page images it
        caused.  A crash after the MOVE record but before the page writes
        makes the transaction a loser with nothing to undo for the move;
        a crash after the page writes undoes them from before-images --
        either way exactly one live copy survives, at exactly one of the
        two placements.
        """
        if txn is None:
            return storage_file.relocate(oid, target_page)
        self.txns.lock_exclusive(txn, ("file", storage_file.file_id))
        with self.latch:
            self.buffer.start_capture()
            try:
                self.wal.append(
                    LogKind.MOVE, txn.txn_id,
                    volume=oid.volume, page_no=oid.page,
                    before=_FWD.pack(oid.volume, oid.page, oid.slot),
                    after=_FWD.pack(oid.volume, target_page, 0),
                )
                if self._relocate_failpoint is not None:
                    self._relocate_failpoint()
                new_oid = storage_file.relocate(oid, target_page)
            finally:
                changes = self.buffer.end_capture()
            self._log_changes(txn, changes)
        return new_oid

    def reclaim_stub(
        self, storage_file: StorageFile, oid: OID, txn: Transaction | None = None
    ) -> None:
        """Free a forwarding-stub slot (see ``StorageFile.reclaim_stub``)."""
        if txn is None:
            storage_file.reclaim_stub(oid)
            return
        self.txns.lock_exclusive(txn, ("file", storage_file.file_id))
        with self.latch:
            self.buffer.start_capture()
            try:
                storage_file.reclaim_stub(oid)
            finally:
                changes = self.buffer.end_capture()
            self._log_changes(txn, changes)

    def _log_changes(self, txn: Transaction, changes) -> None:
        for (volume, page_no), before, after in changes:
            self.txns.log_page_update(txn, volume, page_no, before, after)

    # -- transactions -------------------------------------------------------

    def begin(self) -> Transaction:
        return self.txns.begin()

    def checkpoint(self) -> None:
        """Flush all dirty pages and cut a checkpoint in the log."""
        self.buffer.flush_all()
        lsn = self.wal.append(LogKind.CHECKPOINT, 0)
        self.wal.force()
        self.events.emit("wal.checkpoint", lsn=lsn, records=len(self.wal))

    # -- crash / restart simulation -------------------------------------------

    def crash(self) -> None:
        """Lose volatile state: buffer pool, lock table, active transactions."""
        self.buffer.drop_all()
        self.disk.crash()
        self.txns.active.clear()
        self.txns.in_doubt.clear()   # resurrected from the log on restart
        self.locks = LockManager()
        self.locks.attach_metrics(self.metrics.component("locks"))
        self.locks.attach_events(self.events)
        self.txns.locks = self.locks
        self.events.emit("storage.crash")
        self._run_reset_hooks()

    def restart(self) -> RecoveryReport:
        """Run restart recovery and refresh per-file record counts.

        In-doubt (2PC-prepared) transactions found on the log are
        resurrected with their lock sets re-held: their pages stay redone
        (not undone), and only their coordinator's decision -- delivered
        via ``txns.commit_prepared`` / ``txns.rollback_prepared`` --
        releases them.
        """
        report = recover(self.wal, self._apply_page_image)
        for entry in report.in_doubt:
            if entry.gid not in self.txns.in_doubt:
                self.txns.resurrect_in_doubt(
                    entry.gid, entry.txn_id, entry.update_lsns, entry.locks
                )
        for storage_file in self._files.values():
            self._recount(storage_file)
        self.events.emit(
            "recovery.replay",
            winners=len(report.winners), losers=len(report.losers),
            redone=report.redone, undone=report.undone,
            in_doubt=len(report.in_doubt),
        )
        self._run_reset_hooks()
        return report

    def _apply_page_image(self, volume: int, page_no: int, image: bytes) -> None:
        self.buffer.forget_page(volume, page_no)
        self.disk.poke_page(volume, page_no, image)

    def _recount(self, storage_file: StorageFile) -> None:
        count = sum(1 for _ in storage_file.scan())
        storage_file._record_count = count

    def _refresh_after_abort(self, txn: Transaction) -> None:
        """Recount records of files the aborted transaction wrote."""
        for resource in self.locks.held_by(txn.txn_id):
            if isinstance(resource, tuple) and resource[0] == "file":
                storage_file = self._files.get(resource[1])
                if storage_file is not None:
                    self._recount(storage_file)

    # -- indexes --------------------------------------------------------------

    def create_btree_index(
        self,
        name: str,
        order: int = 32,
        unique: bool = False,
        keysize: int = 8,
    ) -> BPlusTree:
        if name in self._btrees:
            raise StorageError(f"B+-tree index {name!r} already exists")
        tree = BPlusTree(
            order=order,
            unique=unique,
            keysize=keysize,
            on_node_access=self._charge_index_page,
        )
        self._btrees[name] = tree
        return tree

    def btree_index(self, name: str) -> BPlusTree:
        try:
            return self._btrees[name]
        except KeyError:
            raise StorageError(f"no B+-tree index {name!r}") from None

    def create_hash_index(
        self, name: str, bucket_capacity: int = 32, unique: bool = False
    ) -> ExtendibleHashIndex:
        if name in self._hashes:
            raise StorageError(f"hash index {name!r} already exists")
        index = ExtendibleHashIndex(
            bucket_capacity=bucket_capacity,
            unique=unique,
            on_bucket_access=self._charge_index_page,
        )
        self._hashes[name] = index
        return index

    def hash_index(self, name: str) -> ExtendibleHashIndex:
        try:
            return self._hashes[name]
        except KeyError:
            raise StorageError(f"no hash index {name!r}") from None

    def create_rtree_index(self, name: str, max_entries: int = 8) -> RTree:
        if name in self._rtrees:
            raise StorageError(f"R-tree index {name!r} already exists")
        tree = RTree(max_entries=max_entries, on_node_access=self._charge_index_page)
        self._rtrees[name] = tree
        return tree

    def rtree_index(self, name: str) -> RTree:
        try:
            return self._rtrees[name]
        except KeyError:
            raise StorageError(f"no R-tree index {name!r}") from None

    def drop_index(self, name: str) -> None:
        for registry in (self._btrees, self._hashes, self._rtrees):
            if name in registry:
                del registry[name]
                return
        raise StorageError(f"no index {name!r}")

    def index_names(self) -> list[str]:
        return sorted([*self._btrees, *self._hashes, *self._rtrees])

    # -- named roots ------------------------------------------------------------

    def set_root(self, name: str, oid: OID) -> None:
        self._named_roots[name] = oid

    def get_root(self, name: str) -> OID | None:
        return self._named_roots.get(name)

    def root_names(self) -> list[str]:
        return sorted(self._named_roots)
