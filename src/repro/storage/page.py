"""Slotted data pages.

Records grow upward from a small header; the slot directory grows downward
from the end of the page.  A deleted record leaves a tombstone slot so that
slot numbers (and hence OIDs) remain stable; tombstones are reused by later
inserts.  :meth:`SlottedPage.compact` defragments the record area in place.

Layout (little-endian)::

    0              2              4                       free_ptr
    +--------------+--------------+-----------------------+---------+
    | num_slots u16| free_ptr u16 | record 0 | record 1 ..| (free)  |
    +--------------+--------------+-----------------------+---------+
                                        slot dir: ... | off,len | off,len |
                                                       page_end - 4*n

A slot offset of 0xFFFF marks a tombstone.
"""

from __future__ import annotations

import struct

from repro.core.errors import PageFullError, RecordNotFoundError, StorageError

_HEADER = struct.Struct("<HH")
_SLOT = struct.Struct("<HH")
HEADER_SIZE = _HEADER.size
SLOT_SIZE = _SLOT.size
TOMBSTONE = 0xFFFF

#: Largest record a page of size ``page_size`` can hold.
def max_record_size(page_size: int) -> int:
    return page_size - HEADER_SIZE - SLOT_SIZE


class SlottedPage:
    """In-place slotted-page editor over a ``bytearray`` buffer frame."""

    def __init__(self, data: bytearray):
        if len(data) < HEADER_SIZE + SLOT_SIZE:
            raise StorageError("page buffer too small for slotted layout")
        self.data = data

    # -- header ------------------------------------------------------------

    @classmethod
    def format(cls, data: bytearray) -> "SlottedPage":
        """Initialise an empty slotted page in ``data``."""
        page = cls(data)
        page._write_header(0, HEADER_SIZE)
        return page

    def _read_header(self) -> tuple[int, int]:
        num_slots, free_ptr = _HEADER.unpack_from(self.data, 0)
        if free_ptr < HEADER_SIZE:
            # An all-zero page (freshly allocated, or restored to its
            # pre-format image by transaction undo) reads as a valid empty
            # page: no slots, record area starting after the header.
            return num_slots, HEADER_SIZE
        return num_slots, free_ptr

    def _write_header(self, num_slots: int, free_ptr: int) -> None:
        _HEADER.pack_into(self.data, 0, num_slots, free_ptr)

    @property
    def num_slots(self) -> int:
        return self._read_header()[0]

    @property
    def _free_ptr(self) -> int:
        return self._read_header()[1]

    # -- slot directory ------------------------------------------------------

    def _slot_pos(self, slot: int) -> int:
        return len(self.data) - SLOT_SIZE * (slot + 1)

    def _read_slot(self, slot: int) -> tuple[int, int]:
        num_slots = self.num_slots
        if not 0 <= slot < num_slots:
            raise RecordNotFoundError(f"slot {slot} out of range (0..{num_slots - 1})")
        return _SLOT.unpack_from(self.data, self._slot_pos(slot))

    def _write_slot(self, slot: int, offset: int, length: int) -> None:
        _SLOT.pack_into(self.data, self._slot_pos(slot), offset, length)

    def slot_is_live(self, slot: int) -> bool:
        offset, _ = self._read_slot(slot)
        return offset != TOMBSTONE

    def live_slots(self) -> list[int]:
        return [s for s in range(self.num_slots) if self.slot_is_live(s)]

    # -- space accounting ----------------------------------------------------

    def free_space(self) -> int:
        """Contiguous free bytes between record area and slot directory."""
        num_slots, free_ptr = self._read_header()
        return len(self.data) - SLOT_SIZE * num_slots - free_ptr

    def _reusable_slot(self) -> int | None:
        for slot in range(self.num_slots):
            offset, _ = self._read_slot(slot)
            if offset == TOMBSTONE:
                return slot
        return None

    def has_room_for(self, record: bytes) -> bool:
        needed = len(record)
        if self._reusable_slot() is None:
            needed += SLOT_SIZE
        if self.free_space() >= needed:
            return True
        return self._reclaimable() + self.free_space() >= needed

    def _reclaimable(self) -> int:
        """Bytes a compaction would recover from dead record space."""
        num_slots, free_ptr = self._read_header()
        live = sum(self._read_slot(s)[1] for s in range(num_slots)
                   if self._read_slot(s)[0] != TOMBSTONE)
        return (free_ptr - HEADER_SIZE) - live

    # -- record operations -----------------------------------------------------

    def insert(self, record: bytes) -> int:
        """Insert ``record``; return its slot number.

        Raises :class:`PageFullError` when the page cannot hold it even
        after compaction.
        """
        if len(record) > max_record_size(len(self.data)):
            raise PageFullError(
                f"record of {len(record)} bytes exceeds page capacity"
            )
        if not self.has_room_for(record):
            raise PageFullError("page full")
        slot = self._reusable_slot()
        needed = len(record) + (0 if slot is not None else SLOT_SIZE)
        if self.free_space() < needed:
            self.compact()
        num_slots, free_ptr = self._read_header()
        if slot is None:
            slot = num_slots
            num_slots += 1
        self.data[free_ptr:free_ptr + len(record)] = record
        self._write_header(num_slots, free_ptr + len(record))
        self._write_slot(slot, free_ptr, len(record))
        return slot

    def read(self, slot: int) -> bytes:
        offset, length = self._read_slot(slot)
        if offset == TOMBSTONE:
            raise RecordNotFoundError(f"slot {slot} is deleted")
        return bytes(self.data[offset:offset + length])

    def delete(self, slot: int) -> None:
        offset, _ = self._read_slot(slot)
        if offset == TOMBSTONE:
            raise RecordNotFoundError(f"slot {slot} is already deleted")
        self._write_slot(slot, TOMBSTONE, 0)

    def update(self, slot: int, record: bytes) -> None:
        """Replace the record in ``slot``.

        Shrinking updates happen in place; growing updates re-insert into
        free space (compacting if necessary).  Raises
        :class:`PageFullError` when the new image does not fit, in which
        case the caller must relocate the record to another page.
        """
        offset, length = self._read_slot(slot)
        if offset == TOMBSTONE:
            raise RecordNotFoundError(f"slot {slot} is deleted")
        if len(record) <= length:
            self.data[offset:offset + len(record)] = record
            self._write_slot(slot, offset, len(record))
            return
        # Grow: logically free the old image, then place the new one.
        self._write_slot(slot, TOMBSTONE, 0)
        if len(record) > self.free_space() + self._reclaimable():
            self._write_slot(slot, offset, length)  # roll back
            raise PageFullError("updated record does not fit on page")
        if len(record) > self.free_space():
            self.compact()
        num_slots, free_ptr = self._read_header()
        self.data[free_ptr:free_ptr + len(record)] = record
        self._write_header(num_slots, free_ptr + len(record))
        self._write_slot(slot, free_ptr, len(record))

    def records(self) -> list[tuple[int, bytes]]:
        """All live ``(slot, record)`` pairs in slot order."""
        return [(slot, self.read(slot)) for slot in self.live_slots()]

    def compact(self) -> None:
        """Slide live records together, erasing dead space."""
        live = [(slot,) + self._read_slot(slot) for slot in range(self.num_slots)
                if self._read_slot(slot)[0] != TOMBSTONE]
        live.sort(key=lambda entry: entry[1])  # by current offset
        images = [(slot, bytes(self.data[off:off + length]))
                  for slot, off, length in live]
        write_ptr = HEADER_SIZE
        for slot, image in images:
            self.data[write_ptr:write_ptr + len(image)] = image
            self._write_slot(slot, write_ptr, len(image))
            write_ptr += len(image)
        self._write_header(self.num_slots, write_ptr)
