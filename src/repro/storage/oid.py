"""Object identifiers.

MOOD objects live on ESM pages and are addressed physically; we use the
classic ``(volume, page, slot)`` triple.  OIDs are immutable, hashable and
totally ordered (page order, then slot order), which the algebra relies on
for sorted OID collections.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import StorageError


@dataclass(frozen=True, order=True)
class OID:
    """Physical object identifier: ``volume.page.slot``."""

    volume: int
    page: int
    slot: int

    def __str__(self) -> str:
        return f"{self.volume}.{self.page}.{self.slot}"

    @classmethod
    def parse(cls, text: str) -> "OID":
        """Parse the ``volume.page.slot`` textual form."""
        parts = text.split(".")
        if len(parts) != 3:
            raise StorageError(f"malformed OID {text!r}")
        try:
            volume, page, slot = (int(part) for part in parts)
        except ValueError:
            raise StorageError(f"malformed OID {text!r}") from None
        return cls(volume, page, slot)

    @property
    def is_null(self) -> bool:
        return self == NULL_OID


#: The null reference: no MOOD object ever receives this identifier.
NULL_OID = OID(0, 0, 0)


#: Width of each shard's page range in a sharded deployment.  Shard ``i``
#: allocates pages from ``i * SHARD_PAGE_SPAN``, so the page number inside
#: any OID identifies the shard that owns the object -- the OID-space
#: partition function needs no directory lookups.
SHARD_PAGE_SPAN = 1 << 20


def shard_page_base(shard_index: int) -> int:
    """First page number of ``shard_index``'s disjoint page range."""
    if shard_index < 0:
        raise StorageError(f"negative shard index {shard_index}")
    return shard_index * SHARD_PAGE_SPAN


def shard_of_oid(oid: OID | str, shard_count: int) -> int:
    """Which shard owns ``oid`` (range partition on the page number)."""
    if isinstance(oid, str):
        oid = OID.parse(oid)
    shard = oid.page // SHARD_PAGE_SPAN
    if not 0 <= shard < shard_count:
        raise StorageError(
            f"OID {oid} maps to shard {shard}, outside 0..{shard_count - 1}"
        )
    return shard
