"""Guttman R-tree for spatial data.

The MoodView front end ships "a graphical indexing tool for the spatial
data, i.e., R Trees" (abstract and Section 9).  This is a classic Guttman
R-tree with quadratic split: insert, delete with tree condensation, window
(range) queries, and a best-first nearest-neighbour search.

Node accesses are reported to an optional accountant, like the other index
structures, so spatial probes participate in I/O accounting.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Iterator
from dataclasses import dataclass
from typing import Any

from repro.core.errors import IndexStructureError


@dataclass(frozen=True)
class Rect:
    """Axis-aligned rectangle (a point is a degenerate rectangle)."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise IndexStructureError(f"degenerate rectangle {self}")

    @classmethod
    def point(cls, x: float, y: float) -> "Rect":
        return cls(x, y, x, y)

    def area(self) -> float:
        return (self.max_x - self.min_x) * (self.max_y - self.min_y)

    def union(self, other: "Rect") -> "Rect":
        return Rect(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    def intersects(self, other: "Rect") -> bool:
        return not (
            self.max_x < other.min_x
            or other.max_x < self.min_x
            or self.max_y < other.min_y
            or other.max_y < self.min_y
        )

    def contains(self, other: "Rect") -> bool:
        return (
            self.min_x <= other.min_x
            and self.min_y <= other.min_y
            and self.max_x >= other.max_x
            and self.max_y >= other.max_y
        )

    def enlargement(self, other: "Rect") -> float:
        return self.union(other).area() - self.area()

    def min_distance_to(self, x: float, y: float) -> float:
        """Minimum Euclidean distance from a point to this rectangle."""
        dx = max(self.min_x - x, 0.0, x - self.max_x)
        dy = max(self.min_y - y, 0.0, y - self.max_y)
        return (dx * dx + dy * dy) ** 0.5


class _RNode:
    __slots__ = ("leaf", "entries")

    def __init__(self, leaf: bool):
        self.leaf = leaf
        # leaf: list of (Rect, value); internal: list of (Rect, _RNode)
        self.entries: list[tuple[Rect, Any]] = []

    def mbr(self) -> Rect:
        rect = self.entries[0][0]
        for other, _ in self.entries[1:]:
            rect = rect.union(other)
        return rect


@dataclass
class RTreeStats:
    node_reads: int = 0
    splits: int = 0
    reinserts: int = 0

    def reset(self) -> None:
        self.node_reads = 0
        self.splits = 0
        self.reinserts = 0


class RTree:
    """Guttman R-tree with quadratic split."""

    def __init__(
        self,
        max_entries: int = 8,
        on_node_access: Callable[[], None] | None = None,
    ):
        if max_entries < 2:
            raise IndexStructureError("R-tree nodes need at least 2 entries")
        self.max_entries = max_entries
        self.min_entries = max(1, max_entries // 2)
        self.stats = RTreeStats()
        self._on_node_access = on_node_access
        self._root = _RNode(leaf=True)
        self._num_entries = 0
        self._height = 1

    def __len__(self) -> int:
        return self._num_entries

    @property
    def height(self) -> int:
        return self._height

    def _visit(self, node: _RNode) -> None:
        self.stats.node_reads += 1
        if self._on_node_access is not None:
            self._on_node_access()

    # -- insertion ---------------------------------------------------------

    def insert(self, rect: Rect, value: Any) -> None:
        split = self._insert_into(self._root, rect, value, leaf_level=True)
        if split is not None:
            old_root = self._root
            self._root = _RNode(leaf=False)
            self._root.entries = [(old_root.mbr(), old_root), (split.mbr(), split)]
            self._height += 1
        self._num_entries += 1

    def _insert_into(
        self, node: _RNode, rect: Rect, value: Any, leaf_level: bool
    ) -> _RNode | None:
        self._visit(node)
        if node.leaf:
            node.entries.append((rect, value))
            if len(node.entries) > self.max_entries:
                return self._split(node)
            return None
        index = self._choose_subtree(node, rect)
        child_rect, child = node.entries[index]
        split = self._insert_into(child, rect, value, leaf_level)
        node.entries[index] = (child.mbr(), child)
        if split is not None:
            node.entries.append((split.mbr(), split))
            if len(node.entries) > self.max_entries:
                return self._split(node)
        return None

    def _choose_subtree(self, node: _RNode, rect: Rect) -> int:
        best_index = 0
        best = (float("inf"), float("inf"))
        for index, (child_rect, _) in enumerate(node.entries):
            candidate = (child_rect.enlargement(rect), child_rect.area())
            if candidate < best:
                best = candidate
                best_index = index
        return best_index

    def _split(self, node: _RNode) -> _RNode:
        """Guttman quadratic split; ``node`` keeps one group, returns the other."""
        self.stats.splits += 1
        entries = node.entries
        seed_a, seed_b = self._pick_seeds(entries)
        group_a = [entries[seed_a]]
        group_b = [entries[seed_b]]
        rect_a = entries[seed_a][0]
        rect_b = entries[seed_b][0]
        remaining = [e for i, e in enumerate(entries) if i not in (seed_a, seed_b)]
        while remaining:
            if len(group_a) + len(remaining) == self.min_entries:
                group_a.extend(remaining)
                remaining = []
                break
            if len(group_b) + len(remaining) == self.min_entries:
                group_b.extend(remaining)
                remaining = []
                break
            index = self._pick_next(remaining, rect_a, rect_b)
            rect, payload = remaining.pop(index)
            if self._prefers_a(rect, rect_a, rect_b, group_a, group_b):
                group_a.append((rect, payload))
                rect_a = rect_a.union(rect)
            else:
                group_b.append((rect, payload))
                rect_b = rect_b.union(rect)
        node.entries = group_a
        sibling = _RNode(leaf=node.leaf)
        sibling.entries = group_b
        return sibling

    @staticmethod
    def _pick_seeds(entries: list[tuple[Rect, Any]]) -> tuple[int, int]:
        worst = -1.0
        seeds = (0, 1)
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                rect_i, rect_j = entries[i][0], entries[j][0]
                waste = rect_i.union(rect_j).area() - rect_i.area() - rect_j.area()
                if waste > worst:
                    worst = waste
                    seeds = (i, j)
        return seeds

    @staticmethod
    def _pick_next(
        remaining: list[tuple[Rect, Any]], rect_a: Rect, rect_b: Rect
    ) -> int:
        best_index = 0
        best_diff = -1.0
        for index, (rect, _) in enumerate(remaining):
            diff = abs(rect_a.enlargement(rect) - rect_b.enlargement(rect))
            if diff > best_diff:
                best_diff = diff
                best_index = index
        return best_index

    @staticmethod
    def _prefers_a(
        rect: Rect,
        rect_a: Rect,
        rect_b: Rect,
        group_a: list,
        group_b: list,
    ) -> bool:
        enlarge_a = rect_a.enlargement(rect)
        enlarge_b = rect_b.enlargement(rect)
        if enlarge_a != enlarge_b:
            return enlarge_a < enlarge_b
        if rect_a.area() != rect_b.area():
            return rect_a.area() < rect_b.area()
        return len(group_a) <= len(group_b)

    # -- queries --------------------------------------------------------------

    def search(self, window: Rect) -> list[tuple[Rect, Any]]:
        """All ``(rect, value)`` entries intersecting the query window."""
        results: list[tuple[Rect, Any]] = []
        self._search_node(self._root, window, results)
        return results

    def _search_node(
        self, node: _RNode, window: Rect, results: list[tuple[Rect, Any]]
    ) -> None:
        self._visit(node)
        for rect, payload in node.entries:
            if not rect.intersects(window):
                continue
            if node.leaf:
                results.append((rect, payload))
            else:
                self._search_node(payload, window, results)

    def nearest(self, x: float, y: float, k: int = 1) -> list[tuple[Rect, Any]]:
        """Best-first k-nearest-neighbour search from a point."""
        if k < 1:
            return []
        heap: list[tuple[float, int, bool, Any, Rect | None]] = []
        counter = 0
        heapq.heappush(heap, (0.0, counter, False, self._root, None))
        results: list[tuple[Rect, Any]] = []
        while heap and len(results) < k:
            distance, _, is_entry, payload, rect = heapq.heappop(heap)
            if is_entry:
                assert rect is not None
                results.append((rect, payload))
                continue
            node: _RNode = payload
            self._visit(node)
            for entry_rect, entry_payload in node.entries:
                counter += 1
                entry_distance = entry_rect.min_distance_to(x, y)
                heapq.heappush(
                    heap,
                    (entry_distance, counter, node.leaf, entry_payload, entry_rect),
                )
        return results

    def all_entries(self) -> Iterator[tuple[Rect, Any]]:
        stack = [self._root]
        while stack:
            node = stack.pop()
            for rect, payload in node.entries:
                if node.leaf:
                    yield rect, payload
                else:
                    stack.append(payload)

    # -- deletion -----------------------------------------------------------

    def delete(self, rect: Rect, value: Any) -> bool:
        """Remove an exact ``(rect, value)`` entry, condensing the tree."""
        orphans: list[tuple[Rect, Any]] = []
        removed = self._delete_from(self._root, rect, value, orphans)
        if not removed:
            return False
        if not self._root.leaf and len(self._root.entries) == 1:
            self._root = self._root.entries[0][1]
            self._height -= 1
        if not self._root.entries and not self._root.leaf:
            self._root = _RNode(leaf=True)
            self._height = 1
        self._num_entries -= 1
        for orphan_rect, orphan_value in orphans:
            self.stats.reinserts += 1
            self._num_entries -= 1  # insert() re-increments
            self.insert(orphan_rect, orphan_value)
        return True

    def _delete_from(
        self,
        node: _RNode,
        rect: Rect,
        value: Any,
        orphans: list[tuple[Rect, Any]],
    ) -> bool:
        self._visit(node)
        if node.leaf:
            for index, (entry_rect, entry_value) in enumerate(node.entries):
                if entry_rect == rect and entry_value == value:
                    node.entries.pop(index)
                    return True
            return False
        for index, (entry_rect, child) in enumerate(node.entries):
            if not entry_rect.intersects(rect):
                continue
            if self._delete_from(child, rect, value, orphans):
                if len(child.entries) < self.min_entries:
                    # Condense: orphan the undersized child's leaf entries.
                    node.entries.pop(index)
                    for leaf_rect, leaf_value in self._leaf_entries(child):
                        orphans.append((leaf_rect, leaf_value))
                else:
                    node.entries[index] = (child.mbr(), child)
                return True
        return False

    def _leaf_entries(self, node: _RNode) -> Iterator[tuple[Rect, Any]]:
        if node.leaf:
            yield from node.entries
        else:
            for _, child in node.entries:
                yield from self._leaf_entries(child)

    # -- structural checking (used by tests) ---------------------------------

    def check_invariants(self) -> None:
        count = self._check_node(self._root, depth=1, is_root=True)
        if count != self._num_entries:
            raise IndexStructureError(
                f"entry counter {self._num_entries} != actual {count}"
            )

    def _check_node(self, node: _RNode, depth: int, is_root: bool) -> int:
        if len(node.entries) > self.max_entries:
            raise IndexStructureError("overfull R-tree node")
        if not is_root and len(node.entries) < self.min_entries:
            raise IndexStructureError("underfull R-tree node")
        if node.leaf:
            if depth != self._height:
                raise IndexStructureError("R-tree leaves at differing depths")
            return len(node.entries)
        count = 0
        for rect, child in node.entries:
            if rect != child.mbr():
                raise IndexStructureError("stale MBR in internal node")
            count += self._check_node(child, depth + 1, is_root=False)
        return count
