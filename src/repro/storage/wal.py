"""Write-ahead log with physical page images.

ESM provides MOOD with "backup and recovery of data".  We reproduce it with
a physical write-ahead log: every page modified by a transaction is logged
with its full before- and after-image.  Combined with strict file-level
two-phase locking (no two uncommitted transactions ever write the same
page), redo-all / undo-losers restart recovery over page images is sound
and idempotent.

The log itself is durable by construction (it survives
:meth:`~repro.storage.disk.SimulatedDisk.crash`), mirroring a log kept on a
separate stable device; ``force`` accounts the sequential log write.
"""

from __future__ import annotations

import threading
from collections.abc import Iterator
from dataclasses import dataclass
from enum import Enum

from repro.storage.disk import DiskParams, IOStats


class LogKind(Enum):
    BEGIN = "BEGIN"
    UPDATE = "UPDATE"
    COMMIT = "COMMIT"
    ABORT = "ABORT"
    CHECKPOINT = "CHECKPOINT"
    #: Two-phase commit vote: the transaction is *in doubt* -- all its
    #: updates are on the log, its locks are held, and only its
    #: coordinator may decide commit or abort (presumed abort: a missing
    #: decision means abort).
    PREPARE = "PREPARE"
    #: Logical object-relocation marker: the record at the source OID
    #: (``before``, packed) is moving to the destination page (``after``,
    #: packed OID with slot 0 -- the slot is only known once the physical
    #: page UPDATE records that follow it land).  Carries no page image
    #: itself: redo/undo of the move is entirely the bracketed UPDATE
    #: records, so a crash between MOVE and its page writes makes the
    #: transaction a loser and leaves exactly the original placement.
    MOVE = "MOVE"


@dataclass(frozen=True)
class LogRecord:
    lsn: int
    kind: LogKind
    txn_id: int
    volume: int = 0
    page_no: int = 0
    before: bytes | None = None
    after: bytes | None = None
    #: PREPARE only: the global transaction id the coordinator minted.
    gid: str = ""
    #: PREPARE only: the lock resources held at prepare time, so restart
    #: recovery can re-acquire them for the resurrected in-doubt txn.
    locks: tuple = ()

    def __str__(self) -> str:
        if self.kind is LogKind.UPDATE:
            return (
                f"<{self.lsn} {self.kind.value} txn={self.txn_id} "
                f"page={self.volume}.{self.page_no}>"
            )
        return f"<{self.lsn} {self.kind.value} txn={self.txn_id}>"


class _WalCounters:
    """Pre-resolved registry counters for the log's hot paths."""

    __slots__ = ("records", "forces", "pages_written")

    def __init__(self, component):
        self.records = component.counter("records")
        self.forces = component.counter("forces")
        self.pages_written = component.counter("pages_written")


class WriteAheadLog:
    """Append-only log of :class:`LogRecord`, with I/O accounting."""

    def __init__(self, params: DiskParams | None = None):
        self.params = params or DiskParams()
        self.stats = IOStats()
        self._records: list[LogRecord] = []
        self._next_lsn = 1
        self._forced_lsn = 0
        self._unforced_bytes = 0
        self._metrics = None
        # Serialises appends and forces: concurrent server sessions commit
        # through one shared log, and LSN allocation must stay gap-free.
        self._mutex = threading.RLock()

    def attach_metrics(self, component) -> None:
        """Mirror log activity into registry counters (``wal.*``):
        appended records, fsync-equivalent forces, log pages written."""
        self._metrics = _WalCounters(component)

    def __len__(self) -> int:
        return len(self._records)

    @property
    def last_lsn(self) -> int:
        return self._next_lsn - 1

    @property
    def forced_lsn(self) -> int:
        return self._forced_lsn

    def append(
        self,
        kind: LogKind,
        txn_id: int,
        volume: int = 0,
        page_no: int = 0,
        before: bytes | None = None,
        after: bytes | None = None,
        gid: str = "",
        locks: tuple = (),
    ) -> int:
        with self._mutex:
            record = LogRecord(
                self._next_lsn, kind, txn_id, volume, page_no, before, after,
                gid, locks,
            )
            self._records.append(record)
            self._next_lsn += 1
            self._unforced_bytes += 32 + len(before or b"") + len(after or b"")
            if self._metrics is not None:
                self._metrics.records.inc()
            return record.lsn

    def force(self) -> None:
        """Flush the log tail to stable storage (accounted sequentially)."""
        with self._mutex:
            if self._forced_lsn == self.last_lsn:
                return
            pages = max(1, -(-self._unforced_bytes // self.params.block_size))
            self.stats.charge_sequential_write(self.params, pages)
            if self._metrics is not None:
                self._metrics.forces.inc()
                self._metrics.pages_written.inc(pages)
            self._forced_lsn = self.last_lsn
            self._unforced_bytes = 0

    def records(self, from_lsn: int = 1) -> Iterator[LogRecord]:
        with self._mutex:
            snapshot = list(self._records)
        for record in snapshot:
            if record.lsn >= from_lsn:
                yield record

    def records_reversed(self) -> Iterator[LogRecord]:
        with self._mutex:
            snapshot = list(self._records)
        yield from reversed(snapshot)

    def last_checkpoint_lsn(self) -> int:
        """LSN of the newest checkpoint record, or 0 when none exists."""
        for record in reversed(self._records):
            if record.kind is LogKind.CHECKPOINT:
                return record.lsn
        return 0

    def transactions_on_log(self) -> dict[int, LogKind]:
        """Map txn id to its final fate on the log (last control record).
        A fate of ``PREPARE`` means the transaction is in doubt."""
        fates: dict[int, LogKind] = {}
        for record in self._records:
            if record.kind in (LogKind.BEGIN, LogKind.COMMIT, LogKind.ABORT,
                               LogKind.PREPARE):
                fates[record.txn_id] = record.kind
        return fates

    def prepare_records(self) -> dict[int, LogRecord]:
        """The newest PREPARE record per txn id (for in-doubt resurrection)."""
        prepares: dict[int, LogRecord] = {}
        for record in self._records:
            if record.kind is LogKind.PREPARE:
                prepares[record.txn_id] = record
        return prepares
