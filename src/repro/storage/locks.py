"""Lock manager: shared/exclusive locks with deadlock detection.

ESM gives MOOD "controlling data access and concurrency"; the MOOD kernel
additionally locks a class's shared object while the Function Manager
rewrites it (Section 2).  This lock manager serves both: S/X locks on
arbitrary hashable resources (file ids, class names, shared-object names),
strict two-phase usage by the transaction manager, blocking waits under a
condition variable, and wait-for-graph cycle detection that raises
:class:`DeadlockError` in the requester rather than blocking forever.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Hashable

from repro.core.errors import (
    DeadlockError,
    LockCancelledError,
    LockError,
    LockTimeoutError,
)


class LockMode(Enum):
    S = "S"
    X = "X"


def _compatible(held: LockMode, requested: LockMode) -> bool:
    return held is LockMode.S and requested is LockMode.S


@dataclass
class _ResourceLocks:
    granted: dict[Any, LockMode] = field(default_factory=dict)  # owner -> mode
    waiting: list[tuple[Any, LockMode]] = field(default_factory=list)


@dataclass
class LockStats:
    """Operational counts: grants, blocking waits and their outcomes."""

    acquisitions: int = 0
    waits: int = 0
    deadlocks: int = 0
    timeouts: int = 0
    releases: int = 0
    cancels: int = 0

    def reset(self) -> None:
        self.acquisitions = 0
        self.waits = 0
        self.deadlocks = 0
        self.timeouts = 0
        self.releases = 0
        self.cancels = 0


class LockManager:
    """S/X lock table with wait-for-graph deadlock detection."""

    def __init__(self, timeout: float = 10.0):
        self.timeout = timeout
        self.stats = LockStats()
        self._lock = threading.Lock()
        self._condition = threading.Condition(self._lock)
        self._table: dict[Hashable, _ResourceLocks] = {}
        # owner -> set of resources (for release_all)
        self._held: dict[Any, set[Hashable]] = {}
        # owners whose in-flight waits were cancelled externally; the
        # parked thread consumes (and clears) its own flag on wake-up.
        self._cancelled: set[Any] = set()
        self._metrics = None
        self._wait_ms = None
        self._events = None
        self._slow_wait_ms = 50.0

    def attach_metrics(self, component) -> None:
        """Mirror lock activity into registry counters (``locks.*``) plus
        a ``locks.wait_ms`` histogram of blocking-wait durations."""
        self._metrics = component
        self._wait_ms = component.histogram("wait_ms")

    def attach_events(self, journal, slow_wait_ms: float = 50.0) -> None:
        """Journal deadlocks and lock waits longer than ``slow_wait_ms``."""
        self._events = journal
        self._slow_wait_ms = slow_wait_ms

    def _count(self, name: str) -> None:
        setattr(self.stats, name, getattr(self.stats, name) + 1)
        if self._metrics is not None:
            self._metrics.counter(name).inc()

    def _note_wait_end(
        self, owner: Any, resource: Hashable, mode: LockMode,
        started: float, outcome: str,
    ) -> None:
        """Account one finished blocking wait: histogram always, journal
        when it was slow or ended badly."""
        waited_ms = (time.monotonic() - started) * 1e3
        if self._wait_ms is not None:
            self._wait_ms.observe(waited_ms)
        if self._events is None:
            return
        if outcome != "granted" or waited_ms >= self._slow_wait_ms:
            self._events.emit(
                "lock.wait",
                owner=owner, resource=repr(resource), mode=mode.value,
                waited_ms=round(waited_ms, 3), outcome=outcome,
            )

    # -- acquisition ------------------------------------------------------

    def acquire(
        self,
        owner: Any,
        resource: Hashable,
        mode: LockMode,
        timeout: float | None = None,
    ) -> None:
        """Acquire (or upgrade to) ``mode`` on ``resource`` for ``owner``.

        Re-acquiring a held mode is a no-op; S->X upgrades succeed when the
        owner is the only holder.  Raises :class:`DeadlockError` when the
        wait would close a cycle, :class:`LockTimeoutError` on timeout.
        """
        deadline_timeout = self.timeout if timeout is None else timeout
        with self._condition:
            self._cancelled.discard(owner)  # stale flag from a past abort
            entry = self._table.setdefault(resource, _ResourceLocks())
            if self._try_grant(entry, owner, resource, mode):
                self._count("acquisitions")
                return
            if deadline_timeout == 0:
                # No-wait probe (the server uses this while holding the
                # engine latch, where parking would stall every session).
                self._count("timeouts")
                self._drop_empty(resource)
                raise LockTimeoutError(
                    f"{mode.value} on {resource!r} is not available "
                    "(no-wait)"
                )
            entry.waiting.append((owner, mode))
            self._count("waits")
            wait_started = time.monotonic()
            try:
                if self._would_deadlock(owner):
                    self._count("deadlocks")
                    if self._events is not None:
                        self._events.emit(
                            "lock.deadlock",
                            victim=owner, resource=repr(resource),
                            mode=mode.value,
                            winners=sorted(
                                (repr(o) for o in entry.granted
                                 if o != owner),
                            ),
                        )
                    raise DeadlockError(
                        f"lock {mode.value} on {resource!r} by {owner!r} "
                        "would deadlock"
                    )
                granted = self._condition.wait_for(
                    lambda: owner in self._cancelled
                    or self._try_grant(entry, owner, resource, mode),
                    timeout=deadline_timeout,
                )
                if owner in self._cancelled:
                    self._cancelled.discard(owner)
                    self._count("cancels")
                    self._note_wait_end(owner, resource, mode,
                                        wait_started, "cancelled")
                    raise LockCancelledError(
                        f"wait for {mode.value} on {resource!r} by "
                        f"{owner!r} was cancelled"
                    )
                if not granted:
                    self._count("timeouts")
                    self._note_wait_end(owner, resource, mode,
                                        wait_started, "timeout")
                    raise LockTimeoutError(
                        f"timed out waiting for {mode.value} on {resource!r}"
                    )
                self._count("acquisitions")
                self._note_wait_end(owner, resource, mode,
                                    wait_started, "granted")
            finally:
                if (owner, mode) in entry.waiting:
                    entry.waiting.remove((owner, mode))
                self._drop_empty(resource)

    def _drop_empty(self, resource: Hashable) -> None:
        entry = self._table.get(resource)
        if entry is not None and not entry.granted and not entry.waiting:
            del self._table[resource]

    def _try_grant(
        self, entry: _ResourceLocks, owner: Any, resource: Hashable, mode: LockMode
    ) -> bool:
        held = entry.granted.get(owner)
        if held is LockMode.X or held is mode:
            return True  # already held (idempotent)
        others = {o: m for o, m in entry.granted.items() if o != owner}
        if held is LockMode.S and mode is LockMode.X:
            # Upgrade: granted the moment the owner is the sole holder.
            # Upgrades jump the wait queue -- parking an upgrader behind
            # queued S requests that can never be granted past its own S
            # would deadlock the queue itself.
            grantable = not others
        elif mode is LockMode.S:
            # Fair (FIFO) grant: requests queued ahead count as if they
            # were already granted, so a steady stream of readers cannot
            # starve a waiting writer indefinitely.
            ahead = self._queued_ahead(entry, owner)
            grantable = (
                all(_compatible(m, mode) for m in others.values())
                and all(m is LockMode.S for m in ahead)
            )
        else:
            grantable = not others and not self._queued_ahead(entry, owner)
        if grantable:
            entry.granted[owner] = mode
            self._held.setdefault(owner, set()).add(resource)
            return True
        return False

    @staticmethod
    def _queued_ahead(entry: _ResourceLocks, owner: Any) -> list[LockMode]:
        """Modes of requests queued ahead of ``owner`` (all of them when
        ``owner`` has not queued yet)."""
        ahead: list[LockMode] = []
        for waiter, waiter_mode in entry.waiting:
            if waiter == owner:
                break
            ahead.append(waiter_mode)
        return ahead

    # -- deadlock detection ---------------------------------------------------

    def _wait_for_edges(self) -> dict[Any, set[Any]]:
        edges: dict[Any, set[Any]] = {}
        for entry in self._table.values():
            for position, (waiter, mode) in enumerate(entry.waiting):
                blockers = {
                    holder
                    for holder, held in entry.granted.items()
                    if holder != waiter and not _compatible(held, mode)
                }
                # Fair queueing also makes a waiter wait for incompatible
                # requests queued ahead of it.
                for earlier, earlier_mode in entry.waiting[:position]:
                    if earlier != waiter and not (
                        earlier_mode is LockMode.S and mode is LockMode.S
                    ):
                        blockers.add(earlier)
                if blockers:
                    edges.setdefault(waiter, set()).update(blockers)
        return edges

    def _would_deadlock(self, start: Any) -> bool:
        edges = self._wait_for_edges()
        seen: set[Any] = set()
        stack = list(edges.get(start, ()))
        while stack:
            node = stack.pop()
            if node == start:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(edges.get(node, ()))
        return False

    # -- release --------------------------------------------------------------

    def release(self, owner: Any, resource: Hashable) -> None:
        with self._condition:
            entry = self._table.get(resource)
            if entry is None or owner not in entry.granted:
                raise LockError(f"{owner!r} holds no lock on {resource!r}")
            del entry.granted[owner]
            self._held.get(owner, set()).discard(resource)
            self._count("releases")
            if not entry.granted and not entry.waiting:
                del self._table[resource]
            self._condition.notify_all()

    def release_all(self, owner: Any) -> None:
        """Release every lock ``owner`` holds *and* retract any waits it
        has queued.

        The retraction matters when the owner is aborted externally (a
        timeout watchdog, the server's shutdown path): its thread may be
        parked inside :meth:`acquire`, and without cleanup the stale
        ``waiting`` entries would keep contributing wait-for edges --
        phantom edges that make *other* transactions' cycle checks report
        deadlocks that do not exist.  A parked waiter whose entry was
        retracted wakes up and raises :class:`LockCancelledError`.
        """
        with self._condition:
            for resource in list(self._held.get(owner, ())):
                entry = self._table.get(resource)
                if entry and owner in entry.granted:
                    del entry.granted[owner]
                    self._count("releases")
                    self._drop_empty(resource)
            self._held.pop(owner, None)
            self._retract_waits(owner)
            self._condition.notify_all()

    def cancel_waits(self, owner: Any) -> None:
        """Retract ``owner``'s queued waits without touching held locks.

        Used on external abort paths before the owner's thread has been
        unwound; the parked thread wakes and raises
        :class:`LockCancelledError`.
        """
        with self._condition:
            if self._retract_waits(owner):
                self._condition.notify_all()

    def _retract_waits(self, owner: Any) -> bool:
        """Drop owner's waiting entries everywhere; flag it cancelled if
        any existed.  Caller holds the condition lock."""
        retracted = False
        for resource, entry in list(self._table.items()):
            before = len(entry.waiting)
            entry.waiting = [(o, m) for (o, m) in entry.waiting if o != owner]
            retracted = retracted or len(entry.waiting) != before
            self._drop_empty(resource)
        if retracted:
            self._cancelled.add(owner)
        return retracted

    # -- introspection --------------------------------------------------------

    def holders(self, resource: Hashable) -> dict[Any, LockMode]:
        with self._lock:
            entry = self._table.get(resource)
            return dict(entry.granted) if entry else {}

    def held_by(self, owner: Any) -> set[Hashable]:
        with self._lock:
            return set(self._held.get(owner, ()))

    def mode_held(self, owner: Any, resource: Hashable) -> LockMode | None:
        """The mode ``owner`` currently holds on ``resource`` (or None)."""
        with self._lock:
            entry = self._table.get(resource)
            return entry.granted.get(owner) if entry else None

    def waiter_count(self) -> int:
        """Number of queued waits across all resources (introspection)."""
        with self._lock:
            return sum(len(entry.waiting) for entry in self._table.values())

    def dump(self) -> list[dict]:
        """The live lock table as flat rows (the SYS$LOCKS view): every
        grant (``granted=True, queue_position=-1``) and every queued wait
        in FIFO order."""
        with self._lock:
            rows: list[dict] = []
            for resource in sorted(self._table, key=repr):
                entry = self._table[resource]
                for owner in sorted(entry.granted, key=repr):
                    rows.append({
                        "resource": repr(resource),
                        "txn_id": owner if isinstance(owner, int) else -1,
                        "mode": entry.granted[owner].value,
                        "granted": True,
                        "queue_position": -1,
                    })
                for position, (owner, mode) in enumerate(entry.waiting):
                    rows.append({
                        "resource": repr(resource),
                        "txn_id": owner if isinstance(owner, int) else -1,
                        "mode": mode.value,
                        "granted": False,
                        "queue_position": position,
                    })
            return rows
