"""Transactions: strict two-phase locking over the write-ahead log.

A transaction takes S locks on files it reads and X locks on files it
writes, holds them to commit/abort (strict 2PL), and logs page images for
every page it dirties.  Abort undoes the transaction's page updates in
reverse LSN order from the before-images; commit forces the log first
(write-ahead rule).
"""

from __future__ import annotations

from enum import Enum

from repro.core.errors import TransactionError
from repro.storage.locks import LockManager, LockMode
from repro.storage.wal import LogKind, WriteAheadLog


class TxnState(Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Transaction:
    """Handle for one transaction; created by :class:`TransactionManager`."""

    def __init__(self, txn_id: int, manager: "TransactionManager"):
        self.txn_id = txn_id
        self.state = TxnState.ACTIVE
        self._manager = manager
        self.update_lsns: list[int] = []

    def _require_active(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise TransactionError(
                f"transaction {self.txn_id} is {self.state.value}"
            )

    def commit(self) -> None:
        self._manager.commit(self)

    def abort(self) -> None:
        self._manager.abort(self)

    # Context-manager protocol: commit on success, abort on error.
    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.state is not TxnState.ACTIVE:
            return
        if exc_type is None:
            self.commit()
        else:
            self.abort()

    def __repr__(self) -> str:
        return f"Transaction({self.txn_id}, {self.state.value})"


class TransactionManager:
    """Begins, commits and aborts transactions against a WAL and lock table."""

    def __init__(self, wal: WriteAheadLog, locks: LockManager, apply_page_image):
        """``apply_page_image(volume, page_no, image)`` force-writes a page."""
        self.wal = wal
        self.locks = locks
        self._apply_page_image = apply_page_image
        self._next_txn_id = 1
        self.active: dict[int, Transaction] = {}
        #: Optional hook called after an abort's undo, before lock release
        #: (the storage manager uses it to refresh derived per-file state).
        self.on_abort = None
        #: Additional abort callbacks ``fn(txn)``, run after ``on_abort``
        #: (the object manager registers its cache invalidation here).
        self.abort_listeners: list = []

    def begin(self) -> Transaction:
        txn = Transaction(self._next_txn_id, self)
        self._next_txn_id += 1
        self.wal.append(LogKind.BEGIN, txn.txn_id)
        self.active[txn.txn_id] = txn
        return txn

    def lock_shared(self, txn: Transaction, resource) -> None:
        txn._require_active()
        self.locks.acquire(txn.txn_id, resource, LockMode.S)

    def lock_exclusive(self, txn: Transaction, resource) -> None:
        txn._require_active()
        self.locks.acquire(txn.txn_id, resource, LockMode.X)

    def log_page_update(
        self, txn: Transaction, volume: int, page_no: int,
        before: bytes, after: bytes,
    ) -> None:
        txn._require_active()
        lsn = self.wal.append(
            LogKind.UPDATE, txn.txn_id, volume, page_no, before, after
        )
        txn.update_lsns.append(lsn)

    def commit(self, txn: Transaction) -> None:
        txn._require_active()
        self.wal.append(LogKind.COMMIT, txn.txn_id)
        self.wal.force()  # write-ahead: log hits stable storage first
        txn.state = TxnState.COMMITTED
        self._finish(txn)

    def abort(self, txn: Transaction) -> None:
        txn._require_active()
        # Undo this transaction's page updates in reverse order, logging a
        # compensation update for each so that restart redo-all replays the
        # undo as well (the classic CLR idea, at page-image granularity).
        updates = set(txn.update_lsns)
        undo_list = [
            record
            for record in self.wal.records_reversed()
            if record.lsn in updates and record.before is not None
        ]
        for record in undo_list:
            self._apply_page_image(record.volume, record.page_no, record.before)
            self.wal.append(
                LogKind.UPDATE,
                txn.txn_id,
                record.volume,
                record.page_no,
                before=record.after,
                after=record.before,
            )
        self.wal.append(LogKind.ABORT, txn.txn_id)
        self.wal.force()
        txn.state = TxnState.ABORTED
        if self.on_abort is not None:
            self.on_abort(txn)
        for listener in self.abort_listeners:
            listener(txn)
        self._finish(txn)

    def _finish(self, txn: Transaction) -> None:
        self.locks.release_all(txn.txn_id)
        self.active.pop(txn.txn_id, None)

    def abort_all_active(self) -> None:
        for txn in list(self.active.values()):
            self.abort(txn)
