"""Transactions: strict two-phase locking over the write-ahead log.

A transaction takes S locks on files it reads and X locks on files it
writes, holds them to commit/abort (strict 2PL), and logs page images for
every page it dirties.  Abort undoes the transaction's page updates in
reverse LSN order from the before-images; commit forces the log first
(write-ahead rule).
"""

from __future__ import annotations

import threading
from enum import Enum

from repro.core.errors import TransactionError
from repro.storage.locks import LockManager, LockMode
from repro.storage.wal import LogKind, WriteAheadLog


class TxnState(Enum):
    ACTIVE = "active"
    #: Voted yes in a two-phase commit: updates logged and forced, locks
    #: held, outcome owned by the coordinator (in doubt).
    PREPARED = "prepared"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Transaction:
    """Handle for one transaction; created by :class:`TransactionManager`."""

    def __init__(self, txn_id: int, manager: "TransactionManager"):
        self.txn_id = txn_id
        self.state = TxnState.ACTIVE
        self._manager = manager
        self.update_lsns: list[int] = []
        #: Global transaction id once prepared under 2PC ("" otherwise).
        self.gid: str = ""
        #: Per-transaction lock-wait budget in seconds. ``None`` uses the
        #: lock manager's default; ``0`` turns waits into no-wait probes
        #: (the server sets this while holding its engine latch).
        self.lock_timeout: float | None = None
        # Guards the ACTIVE -> finishing transition: the server may abort
        # a session's transaction from another thread (timeout, shutdown)
        # while the owner is still running.
        self._state_mutex = threading.Lock()
        self._completing = False

    def _require_active(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise TransactionError(
                f"transaction {self.txn_id} is {self.state.value}"
            )

    def commit(self) -> None:
        self._manager.commit(self)

    def abort(self) -> None:
        self._manager.abort(self)

    # Context-manager protocol: commit on success, abort on error.
    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.state is not TxnState.ACTIVE:
            return
        if exc_type is None:
            self.commit()
        else:
            self.abort()

    def __repr__(self) -> str:
        return f"Transaction({self.txn_id}, {self.state.value})"


class TransactionManager:
    """Begins, commits and aborts transactions against a WAL and lock table."""

    def __init__(self, wal: WriteAheadLog, locks: LockManager, apply_page_image):
        """``apply_page_image(volume, page_no, image)`` force-writes a page."""
        self.wal = wal
        self.locks = locks
        self._apply_page_image = apply_page_image
        self._next_txn_id = 1
        self._id_mutex = threading.Lock()
        #: The storage latch: serialises physical page work (statement
        #: execution, abort undo, post-abort recounts) across threads.  The
        #: storage manager shares this object as its own latch and the
        #: server's engine latch, so the three can never interleave.  It is
        #: an RLock: a session committing while it already holds the
        #: engine latch must not self-deadlock.
        self.latch = threading.RLock()
        self.active: dict[int, Transaction] = {}
        #: Prepared (in-doubt) transactions by global transaction id: they
        #: voted yes in a 2PC and hold their locks until the coordinator
        #: decides.  Excluded from :meth:`abort_all_active` -- a shutdown
        #: or crash must not presume their outcome.
        self.in_doubt: dict[str, Transaction] = {}
        #: Optional hook called after an abort's undo, before lock release
        #: (the storage manager uses it to refresh derived per-file state).
        self.on_abort = None
        #: Additional abort callbacks ``fn(txn)``, run after ``on_abort``
        #: (the object manager registers its cache invalidation here).
        self.abort_listeners: list = []

    def begin(self) -> Transaction:
        with self._id_mutex:
            txn = Transaction(self._next_txn_id, self)
            self._next_txn_id += 1
            self.active[txn.txn_id] = txn
        self.wal.append(LogKind.BEGIN, txn.txn_id)
        return txn

    def lock_shared(self, txn: Transaction, resource) -> None:
        txn._require_active()
        self.locks.acquire(txn.txn_id, resource, LockMode.S,
                           timeout=txn.lock_timeout)

    def lock_exclusive(self, txn: Transaction, resource) -> None:
        txn._require_active()
        self.locks.acquire(txn.txn_id, resource, LockMode.X,
                           timeout=txn.lock_timeout)

    def log_page_update(
        self, txn: Transaction, volume: int, page_no: int,
        before: bytes, after: bytes,
    ) -> None:
        txn._require_active()
        lsn = self.wal.append(
            LogKind.UPDATE, txn.txn_id, volume, page_no, before, after
        )
        txn.update_lsns.append(lsn)

    def _claim_completion(self, txn: Transaction) -> None:
        """Atomically claim the right to finish ``txn`` (commit or abort);
        exactly one caller wins when two threads race."""
        with txn._state_mutex:
            txn._require_active()
            if txn._completing:
                raise TransactionError(
                    f"transaction {txn.txn_id} is already completing"
                )
            txn._completing = True

    def commit(self, txn: Transaction) -> None:
        self._claim_completion(txn)
        self.wal.append(LogKind.COMMIT, txn.txn_id)
        self.wal.force()  # write-ahead: log hits stable storage first
        txn.state = TxnState.COMMITTED
        self._finish(txn)

    def abort(self, txn: Transaction) -> None:
        self._claim_completion(txn)
        # If the owner's thread is parked in a lock wait (external abort),
        # retract its waits so it wakes -- and so its queued entries stop
        # contributing phantom wait-for edges.
        self.locks.cancel_waits(txn.txn_id)
        self._undo_and_finish(txn)

    def _undo_and_finish(self, txn: Transaction) -> None:
        # Undo this transaction's page updates in reverse order, logging a
        # compensation update for each so that restart redo-all replays the
        # undo as well (the classic CLR idea, at page-image granularity).
        # The latch keeps the page restores (and the recounts/invalidation
        # the hooks below do) from interleaving with a statement another
        # session is executing.
        with self.latch:
            updates = set(txn.update_lsns)
            undo_list = [
                record
                for record in self.wal.records_reversed()
                if record.lsn in updates and record.before is not None
            ]
            for record in undo_list:
                self._apply_page_image(
                    record.volume, record.page_no, record.before
                )
                self.wal.append(
                    LogKind.UPDATE,
                    txn.txn_id,
                    record.volume,
                    record.page_no,
                    before=record.after,
                    after=record.before,
                )
            self.wal.append(LogKind.ABORT, txn.txn_id)
            self.wal.force()
            txn.state = TxnState.ABORTED
            if self.on_abort is not None:
                self.on_abort(txn)
            for listener in self.abort_listeners:
                listener(txn)
            self._finish(txn)

    def _finish(self, txn: Transaction) -> None:
        self.locks.release_all(txn.txn_id)
        self.active.pop(txn.txn_id, None)

    def abort_all_active(self) -> None:
        for txn in list(self.active.values()):
            self.abort(txn)

    # -- two-phase commit (the participant side) ------------------------------

    def prepare(self, txn: Transaction, gid: str) -> None:
        """Phase-1 vote: force a PREPARE record (with the held lock set,
        for restart resurrection) and park the transaction in the in-doubt
        table.  Its locks stay held; only :meth:`commit_prepared` or
        :meth:`rollback_prepared` may finish it."""
        if not gid:
            raise TransactionError("prepare needs a non-empty gid")
        with self._id_mutex:
            if gid in self.in_doubt:
                raise TransactionError(f"gid {gid!r} is already prepared")
        with txn._state_mutex:
            txn._require_active()
            if txn._completing:
                raise TransactionError(
                    f"transaction {txn.txn_id} is already completing"
                )
            held = tuple(sorted(self.locks.held_by(txn.txn_id)))
            self.wal.append(
                LogKind.PREPARE, txn.txn_id, gid=gid, locks=held
            )
            self.wal.force()  # the yes-vote must survive a crash
            txn.state = TxnState.PREPARED
            txn.gid = gid
        self.in_doubt[gid] = txn
        self.active.pop(txn.txn_id, None)

    def commit_prepared(self, gid: str) -> bool:
        """Phase-2 commit decision; idempotent (unknown gid -> False: the
        decision was already applied, or never prepared here)."""
        txn = self.in_doubt.pop(gid, None)
        if txn is None:
            return False
        self.wal.append(LogKind.COMMIT, txn.txn_id)
        self.wal.force()
        txn.state = TxnState.COMMITTED
        self.locks.release_all(txn.txn_id)
        return True

    def rollback_prepared(self, gid: str) -> bool:
        """Phase-2 abort decision (or presumed abort); idempotent."""
        txn = self.in_doubt.pop(gid, None)
        if txn is None:
            return False
        self._undo_and_finish(txn)
        return True

    def resurrect_in_doubt(
        self, gid: str, txn_id: int, update_lsns, locks
    ) -> Transaction:
        """Rebuild an in-doubt transaction after restart recovery: a
        PREPARED handle holding the lock set its PREPARE record captured
        (re-acquired as X -- conservative, and uncontended at restart)."""
        txn = Transaction(txn_id, self)
        txn.state = TxnState.PREPARED
        txn.gid = gid
        txn.update_lsns = list(update_lsns)
        for resource in locks:
            key = tuple(resource) if isinstance(resource, list) else resource
            self.locks.acquire(txn_id, key, LockMode.X, timeout=0)
        self.in_doubt[gid] = txn
        with self._id_mutex:
            self._next_txn_id = max(self._next_txn_id, txn_id + 1)
        return txn
