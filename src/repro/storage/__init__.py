"""Storage substrate: the reproduction's Exodus Storage Manager (ESM).

Public surface::

    from repro.storage import (
        StorageManager, DiskParams, IOStats, OID, NULL_OID,
        BPlusTree, ExtendibleHashIndex, RTree, Rect,
        LockManager, LockMode, Transaction,
    )
"""

from repro.storage.btree import BPlusTree, BTreeParams
from repro.storage.disk import DiskParams, IOStats, SimulatedDisk
from repro.storage.file import StorageFile
from repro.storage.hashindex import ExtendibleHashIndex
from repro.storage.locks import LockManager, LockMode
from repro.storage.manager import StorageManager
from repro.storage.oid import NULL_OID, OID
from repro.storage.rtree import Rect, RTree
from repro.storage.transactions import Transaction, TransactionManager

__all__ = [
    "BPlusTree",
    "BTreeParams",
    "DiskParams",
    "ExtendibleHashIndex",
    "IOStats",
    "LockManager",
    "LockMode",
    "NULL_OID",
    "OID",
    "Rect",
    "RTree",
    "SimulatedDisk",
    "StorageFile",
    "StorageManager",
    "Transaction",
    "TransactionManager",
]
