"""Extendible hash index.

ESM's second indexing mechanism for simple selections (Section 3.2,
``IndSel``) is hashing.  We implement classic extendible hashing: a
directory of bucket pointers addressed by the low ``global_depth`` bits of
the key hash; an overflowing bucket splits, doubling the directory only
when the bucket's local depth equals the global depth.

Like the B+-tree, every bucket (and the directory) is treated as occupying
disk pages, and accesses are reported to an optional accountant so hash
probes show up in measured I/O.  Equality search is O(1) directory + one
bucket read -- the property the optimizer relies on when costing hash
access paths.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from dataclasses import dataclass
from typing import Any

from repro.core.errors import IndexStructureError


def _stable_hash(key: Any) -> int:
    """Deterministic hash for index keys (runs are reproducible)."""
    if isinstance(key, bool):
        key = int(key)
    if isinstance(key, int):
        return key * 2654435761 % (1 << 32)
    if isinstance(key, float):
        return _stable_hash(hash(key) & 0xFFFFFFFF)
    if isinstance(key, str):
        value = 5381
        for ch in key:
            value = ((value << 5) + value + ord(ch)) & 0xFFFFFFFF
        return value
    return _stable_hash(repr(key))


class _Bucket:
    __slots__ = ("local_depth", "entries")

    def __init__(self, local_depth: int):
        self.local_depth = local_depth
        self.entries: list[tuple[Any, Any]] = []


@dataclass
class HashStats:
    bucket_reads: int = 0
    splits: int = 0
    directory_doublings: int = 0

    def reset(self) -> None:
        self.bucket_reads = 0
        self.splits = 0
        self.directory_doublings = 0


class ExtendibleHashIndex:
    """Extendible hash index over ``(key, value)`` entries."""

    def __init__(
        self,
        bucket_capacity: int = 32,
        unique: bool = False,
        on_bucket_access: Callable[[], None] | None = None,
    ):
        if bucket_capacity < 1:
            raise IndexStructureError("bucket capacity must be positive")
        self.bucket_capacity = bucket_capacity
        self.unique = unique
        self.stats = HashStats()
        self._on_bucket_access = on_bucket_access
        self.global_depth = 0
        bucket = _Bucket(local_depth=0)
        self._directory: list[_Bucket] = [bucket]
        self._num_entries = 0

    def __len__(self) -> int:
        return self._num_entries

    @property
    def directory_size(self) -> int:
        return len(self._directory)

    def num_buckets(self) -> int:
        return len({id(bucket) for bucket in self._directory})

    def _visit(self, bucket: _Bucket) -> None:
        self.stats.bucket_reads += 1
        if self._on_bucket_access is not None:
            self._on_bucket_access()

    def _bucket_for(self, key: Any) -> _Bucket:
        index = _stable_hash(key) & ((1 << self.global_depth) - 1)
        return self._directory[index]

    # -- operations ------------------------------------------------------

    def search(self, key: Any) -> list[Any]:
        bucket = self._bucket_for(key)
        self._visit(bucket)
        return [value for k, value in bucket.entries if k == key]

    def contains(self, key: Any) -> bool:
        return bool(self.search(key))

    def insert(self, key: Any, value: Any) -> None:
        if self.unique and self.contains(key):
            raise IndexStructureError(f"duplicate key {key!r} in unique index")
        key_hash = _stable_hash(key)
        while True:
            bucket = self._bucket_for(key)
            self._visit(bucket)
            if len(bucket.entries) < self.bucket_capacity:
                bucket.entries.append((key, value))
                self._num_entries += 1
                return
            if all(_stable_hash(k) == key_hash for k, _ in bucket.entries):
                # Splitting cannot separate identical hashes (e.g. duplicate
                # keys): overflow the bucket rather than double the
                # directory forever.
                bucket.entries.append((key, value))
                self._num_entries += 1
                return
            self._split(bucket)

    def _split(self, bucket: _Bucket) -> None:
        if bucket.local_depth == self.global_depth:
            self._directory = self._directory + self._directory
            self.global_depth += 1
            self.stats.directory_doublings += 1
        self.stats.splits += 1
        new_depth = bucket.local_depth + 1
        low = _Bucket(new_depth)
        high = _Bucket(new_depth)
        distinguishing_bit = 1 << bucket.local_depth
        for key, value in bucket.entries:
            target = high if _stable_hash(key) & distinguishing_bit else low
            target.entries.append((key, value))
        for index in range(len(self._directory)):
            if self._directory[index] is bucket:
                target = high if index & distinguishing_bit else low
                self._directory[index] = target

    def delete(self, key: Any, value: Any) -> bool:
        bucket = self._bucket_for(key)
        self._visit(bucket)
        for index, (k, v) in enumerate(bucket.entries):
            if k == key and v == value:
                bucket.entries.pop(index)
                self._num_entries -= 1
                return True
        return False

    def items(self) -> Iterator[tuple[Any, Any]]:
        seen: set[int] = set()
        for bucket in self._directory:
            if id(bucket) in seen:
                continue
            seen.add(id(bucket))
            yield from bucket.entries

    # -- structural checking (used by tests) --------------------------------

    def check_invariants(self) -> None:
        if len(self._directory) != 1 << self.global_depth:
            raise IndexStructureError("directory size is not 2^global_depth")
        seen: set[int] = set()
        total = 0
        for index, bucket in enumerate(self._directory):
            if bucket.local_depth > self.global_depth:
                raise IndexStructureError("local depth exceeds global depth")
            mask = (1 << bucket.local_depth) - 1
            for key, _ in bucket.entries:
                if _stable_hash(key) & mask != index & mask:
                    raise IndexStructureError(
                        f"entry for key {key!r} hashed to the wrong bucket"
                    )
            if id(bucket) not in seen:
                seen.add(id(bucket))
                total += len(bucket.entries)
        if total != self._num_entries:
            raise IndexStructureError(
                f"entry counter {self._num_entries} != actual {total}"
            )
