"""Restart recovery: redo-all, undo-losers over physical page images.

With page images in the log and strict file-level two-phase locking (no two
uncommitted transactions ever write the same page), the classic physical
recovery algorithm applies:

1. **Analysis** -- read the log to learn each transaction's fate.  Losers
   are the transactions that neither committed nor aborted: a run-time abort
   logged compensation updates for its undo, so redo-all already replays it.
   Transactions whose last control record is a 2PC ``PREPARE`` are *in
   doubt*: they voted yes and their outcome belongs to their coordinator,
   so they are redone but **not** undone.
2. **Redo** -- reapply the after-image of every update since the last
   checkpoint, in LSN order (includes compensation updates).
3. **Undo** -- apply the before-image of every loser update, in reverse LSN
   order, then log an ABORT for each loser.  In-doubt transactions are
   reported (gid, update LSNs, locks from the PREPARE record) so the
   storage manager can resurrect them with their locks re-held; presumed
   abort means the coordinator resolves them later.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.storage.wal import LogKind, WriteAheadLog


@dataclass(frozen=True)
class InDoubtTransaction:
    """An in-doubt (prepared) transaction found on the log at restart."""

    gid: str
    txn_id: int
    update_lsns: tuple[int, ...]
    locks: tuple


@dataclass
class RecoveryReport:
    winners: list[int]
    losers: list[int]
    redone: int
    undone: int
    in_doubt: list[InDoubtTransaction] = field(default_factory=list)
    #: Logical object moves (``LogKind.MOVE``) whose transaction
    #: committed: their page images were replayed, so the relocation
    #: survived the crash.
    moves_redone: int = 0
    #: Logical moves belonging to losers (or run-time aborts): the
    #: bracketed page images were undone, so the object sits at exactly
    #: its original placement -- one live copy either way.
    moves_undone: int = 0


def recover(wal: WriteAheadLog, apply_page_image) -> RecoveryReport:
    """Run restart recovery; ``apply_page_image(volume, page, image)`` is the
    storage manager's force-write primitive (it must bypass the buffer pool's
    stale frames).
    """
    fates = wal.transactions_on_log()
    winners = sorted(t for t, fate in fates.items() if fate is LogKind.COMMIT)
    losers = sorted(t for t, fate in fates.items() if fate is LogKind.BEGIN)
    doubted = sorted(
        t for t, fate in fates.items() if fate is LogKind.PREPARE
    )

    checkpoint_lsn = wal.last_checkpoint_lsn()
    redone = 0
    for record in wal.records(from_lsn=checkpoint_lsn + 1):
        if record.kind is LogKind.UPDATE and record.after is not None:
            apply_page_image(record.volume, record.page_no, record.after)
            redone += 1

    loser_set = set(losers)
    undone = 0
    for record in wal.records_reversed():
        if (
            record.kind is LogKind.UPDATE
            and record.txn_id in loser_set
            and record.before is not None
        ):
            apply_page_image(record.volume, record.page_no, record.before)
            undone += 1

    for txn_id in losers:
        wal.append(LogKind.ABORT, txn_id)
    wal.force()

    prepares = wal.prepare_records()
    update_lsns: dict[int, list[int]] = {t: [] for t in doubted}
    for record in wal.records():
        if record.kind is LogKind.UPDATE and record.txn_id in update_lsns:
            update_lsns[record.txn_id].append(record.lsn)
    in_doubt = [
        InDoubtTransaction(
            gid=prepares[txn_id].gid,
            txn_id=txn_id,
            update_lsns=tuple(update_lsns[txn_id]),
            locks=tuple(prepares[txn_id].locks),
        )
        for txn_id in doubted
    ]

    winner_set = set(winners)
    undone_fates = {LogKind.BEGIN, LogKind.ABORT}
    moves_redone = moves_undone = 0
    for record in wal.records():
        if record.kind is LogKind.MOVE:
            if record.txn_id in winner_set:
                moves_redone += 1
            elif fates.get(record.txn_id) in undone_fates:
                moves_undone += 1

    return RecoveryReport(winners, losers, redone, undone, in_doubt,
                          moves_redone, moves_undone)
