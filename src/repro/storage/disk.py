"""Simulated disk with the paper's Table 10 physical parameters.

MOOD runs on the Exodus Storage Manager; its cost model (Sections 5 and 6)
is expressed purely in terms of the physical disk parameters of Table 10:

==========  =============================
parameter   definition
==========  =============================
``B``       block size
``btt``     block transfer time
``ebt``     effective block transfer time
``r``       average rotational latency
``s``       average seek time
==========  =============================

This module provides a page-addressed disk whose accounting charges exactly
those constants, so that executing a query plan on the simulated disk yields
an elapsed time directly comparable with the analytic SEQCOST/RNDCOST
formulas of Section 5.

The paper also notes an ESM quirk: *"in ESM, a file is stored as a B+ tree
and therefore the sequential access cost of a file is equal to its random
access cost."*  :attr:`DiskParams.esm_sequential_is_random` reproduces it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import StorageError, VolumeError

#: Default page (block) size in bytes.
DEFAULT_BLOCK_SIZE = 4096


@dataclass(frozen=True)
class DiskParams:
    """Physical disk parameters (paper Table 10, after [Sal 88]).

    Times are in milliseconds.  The defaults describe an IBM-3380-class
    disk of the kind Salzberg's book analyses: 16.7 ms average seek,
    8.3 ms average rotational latency (3600 rpm), ~1 ms block transfers.
    With these constants one random page access costs
    ``s + r + btt = 26.04125 ms``, which makes the forward-traversal cost
    of Example 8.1's company path exactly the paper's Table 16 value
    (20000 chases = 520.825 seconds), so the paper's own figures appear to
    be computed from constants of this class.
    """

    block_size: int = DEFAULT_BLOCK_SIZE
    btt: float = 1.04125  # block transfer time (random access)
    ebt: float = 1.3      # effective block transfer time (sequential chains)
    r: float = 8.3        # average rotational latency
    s: float = 16.7       # average seek time
    esm_sequential_is_random: bool = False

    def seq_cost(self, pages: int) -> float:
        """SEQCOST(b) = s + r + b * ebt (Section 5)."""
        if pages <= 0:
            return 0.0
        if self.esm_sequential_is_random:
            return self.rnd_cost(pages)
        return self.s + self.r + pages * self.ebt

    def rnd_cost(self, pages: int) -> float:
        """RNDCOST(b) = b * (s + r + btt) (Section 5)."""
        if pages <= 0:
            return 0.0
        return pages * (self.s + self.r + self.btt)


@dataclass
class IOStats:
    """Ledger of simulated I/O with an elapsed-time accumulator.

    The disk distinguishes *sequential* accesses (the page follows the
    previously accessed page of the same volume) from *random* ones, and
    charges ``ebt`` versus ``s + r + btt`` accordingly, matching the
    SEQCOST/RNDCOST derivations.  A sequential chain pays its ``s + r``
    start-up once, on the first (random) access.

    ``on_charge(kind, pages, cost_ms)`` is an optional observer the
    metrics registry attaches; it fires once per charge with the access
    kind (``random_read`` etc.) and is excluded from snapshots and deltas.
    """

    random_reads: int = 0
    sequential_reads: int = 0
    random_writes: int = 0
    sequential_writes: int = 0
    elapsed_ms: float = 0.0
    on_charge: object = field(default=None, repr=False, compare=False)

    @property
    def page_reads(self) -> int:
        return self.random_reads + self.sequential_reads

    @property
    def page_writes(self) -> int:
        return self.random_writes + self.sequential_writes

    @property
    def page_ios(self) -> int:
        return self.page_reads + self.page_writes

    def charge_random_read(self, params: DiskParams, pages: int = 1) -> None:
        cost = params.rnd_cost(pages)
        self.random_reads += pages
        self.elapsed_ms += cost
        if self.on_charge is not None:
            self.on_charge("random_read", pages, cost)

    def charge_sequential_read(self, params: DiskParams, pages: int = 1) -> None:
        if params.esm_sequential_is_random:
            self.charge_random_read(params, pages)
            return
        cost = pages * params.ebt
        self.sequential_reads += pages
        self.elapsed_ms += cost
        if self.on_charge is not None:
            self.on_charge("sequential_read", pages, cost)

    def charge_random_write(self, params: DiskParams, pages: int = 1) -> None:
        cost = params.rnd_cost(pages)
        self.random_writes += pages
        self.elapsed_ms += cost
        if self.on_charge is not None:
            self.on_charge("random_write", pages, cost)

    def charge_sequential_write(self, params: DiskParams, pages: int = 1) -> None:
        if params.esm_sequential_is_random:
            self.charge_random_write(params, pages)
            return
        cost = pages * params.ebt
        self.sequential_writes += pages
        self.elapsed_ms += cost
        if self.on_charge is not None:
            self.on_charge("sequential_write", pages, cost)

    def reset(self) -> None:
        self.random_reads = 0
        self.sequential_reads = 0
        self.random_writes = 0
        self.sequential_writes = 0
        self.elapsed_ms = 0.0

    def snapshot(self) -> "IOStats":
        return IOStats(
            random_reads=self.random_reads,
            sequential_reads=self.sequential_reads,
            random_writes=self.random_writes,
            sequential_writes=self.sequential_writes,
            elapsed_ms=self.elapsed_ms,
        )

    def since(self, earlier: "IOStats") -> "IOStats":
        """Return the delta between this ledger and an earlier snapshot."""
        return IOStats(
            random_reads=self.random_reads - earlier.random_reads,
            sequential_reads=self.sequential_reads - earlier.sequential_reads,
            random_writes=self.random_writes - earlier.random_writes,
            sequential_writes=self.sequential_writes - earlier.sequential_writes,
            elapsed_ms=self.elapsed_ms - earlier.elapsed_ms,
        )


@dataclass
class _Volume:
    """One mounted volume: an append-only array of fixed-size pages.

    ``page_base`` offsets the volume's page numbering: page ``page_base``
    is stored at index 0.  A sharded deployment gives each shard its own
    disjoint page range, so the page number inside every OID identifies
    its shard (the OID-space partition function).
    """

    volume_id: int
    pages: list[bytearray] = field(default_factory=list)
    free_pages: list[int] = field(default_factory=list)
    last_accessed: int = -2  # sentinel: nothing is 'sequential after' it
    page_base: int = 0


class SimulatedDisk:
    """Page-addressed simulated disk.

    Pages live in memory but every access is charged against an
    :class:`IOStats` ledger using :class:`DiskParams`; an access to page
    ``p`` is *sequential* when the volume's previously accessed page was
    ``p - 1``, and *random* otherwise.  :meth:`crash` models a power failure:
    the page arrays (the platters) survive, and the caller is responsible
    for discarding any volatile state layered above.
    """

    def __init__(
        self, params: DiskParams | None = None, page_base: int = 0
    ):
        self.params = params or DiskParams()
        self.stats = IOStats()
        self._volumes: dict[int, _Volume] = {}
        self._next_volume_id = 1
        #: First page number volumes allocate from (shard-disjoint ranges
        #: make the page number in an OID identify its shard).
        self.page_base = page_base

    # -- volume management -------------------------------------------------

    def mount_volume(self) -> int:
        """Create and mount a fresh volume; return its id."""
        volume_id = self._next_volume_id
        self._next_volume_id += 1
        self._volumes[volume_id] = _Volume(volume_id, page_base=self.page_base)
        return volume_id

    def volume_ids(self) -> list[int]:
        return sorted(self._volumes)

    def _volume(self, volume_id: int) -> _Volume:
        try:
            return self._volumes[volume_id]
        except KeyError:
            raise VolumeError(f"no volume {volume_id}") from None

    # -- page allocation ---------------------------------------------------

    def allocate_page(self, volume_id: int) -> int:
        """Allocate a zeroed page; reuses freed pages before growing."""
        volume = self._volume(volume_id)
        if volume.free_pages:
            page_no = volume.free_pages.pop()
            volume.pages[page_no - volume.page_base] = bytearray(
                self.params.block_size
            )
        else:
            page_no = volume.page_base + len(volume.pages)
            volume.pages.append(bytearray(self.params.block_size))
        return page_no

    def free_page(self, volume_id: int, page_no: int) -> None:
        volume = self._volume(volume_id)
        self._check_page(volume, page_no)
        volume.free_pages.append(page_no)

    def num_pages(self, volume_id: int) -> int:
        """Number of allocated (non-freed) pages on the volume."""
        volume = self._volume(volume_id)
        return len(volume.pages) - len(volume.free_pages)

    @staticmethod
    def _check_page(volume: _Volume, page_no: int) -> None:
        if not volume.page_base <= page_no < volume.page_base + len(
            volume.pages
        ):
            raise StorageError(
                f"page {page_no} out of range on volume {volume.volume_id}"
            )

    # -- page I/O ----------------------------------------------------------

    def read_page(self, volume_id: int, page_no: int) -> bytes:
        volume = self._volume(volume_id)
        self._check_page(volume, page_no)
        self._charge(volume, page_no, write=False)
        return bytes(volume.pages[page_no - volume.page_base])

    def write_page(self, volume_id: int, page_no: int, data: bytes) -> None:
        volume = self._volume(volume_id)
        self._check_page(volume, page_no)
        if len(data) != self.params.block_size:
            raise StorageError(
                f"page write of {len(data)} bytes; block size is "
                f"{self.params.block_size}"
            )
        self._charge(volume, page_no, write=True)
        volume.pages[page_no - volume.page_base] = bytearray(data)

    def _charge(self, volume: _Volume, page_no: int, write: bool) -> None:
        sequential = page_no == volume.last_accessed + 1
        volume.last_accessed = page_no
        if write:
            if sequential:
                self.stats.charge_sequential_write(self.params)
            else:
                self.stats.charge_random_write(self.params)
        else:
            if sequential:
                self.stats.charge_sequential_read(self.params)
            else:
                self.stats.charge_random_read(self.params)

    # -- observability -------------------------------------------------------

    def attach_metrics(self, component) -> None:
        """Mirror every charge into named counters on a
        :class:`~repro.obs.metrics.ComponentMetrics` handle.

        A random access is one seek + one rotation + one block transfer per
        page; a sequential access is a transfer only (its chain start-up is
        charged on the preceding random access), so the counters decompose
        ``elapsed_ms`` exactly the way Table 10 does.
        """
        seeks = component.counter("seeks")
        rotations = component.counter("rotations")
        transfers = component.counter("transfers")
        elapsed = component.counter("elapsed_ms")
        reads = component.counter("page_reads")
        writes = component.counter("page_writes")

        def observe(kind: str, pages: int, cost_ms: float) -> None:
            transfers.inc(pages)
            elapsed.inc(cost_ms)
            if kind.startswith("random"):
                seeks.inc(pages)
                rotations.inc(pages)
            if kind.endswith("read"):
                reads.inc(pages)
            else:
                writes.inc(pages)

        self.stats.on_charge = observe

    def peek_page(self, volume_id: int, page_no: int) -> bytes:
        """Read a page without I/O accounting (infrastructure use only)."""
        volume = self._volume(volume_id)
        self._check_page(volume, page_no)
        return bytes(volume.pages[page_no - volume.page_base])

    def poke_page(self, volume_id: int, page_no: int, data: bytes) -> None:
        """Write a page without I/O accounting (recovery infrastructure)."""
        volume = self._volume(volume_id)
        self._check_page(volume, page_no)
        if len(data) != self.params.block_size:
            raise StorageError("poke of wrong-sized page image")
        volume.pages[page_no - volume.page_base] = bytearray(data)

    # -- failure simulation -------------------------------------------------

    def crash(self) -> None:
        """Simulate power loss.  Platters survive; access history resets."""
        for volume in self._volumes.values():
            volume.last_accessed = -2
