"""Storage files: ordered collections of slotted pages holding records.

A file is the persistent home of a class extent (and of the system catalog
extents of Figure 2.2).  Records are addressed by :class:`~repro.storage.oid.OID`
and keep their OID for life: an update that no longer fits on its page moves
the body elsewhere and leaves a *forwarding stub* behind, exactly as slotted
storage managers of the ESM era did.

Record wire format: a one-byte tag followed by the payload.

====== ==========================================================
tag     meaning
====== ==========================================================
DATA    record body lives here, addressed by this slot's OID
FWD     stub; payload is the OID of the relocated body
MOVED   relocated body; reachable only through its FWD stub
====== ==========================================================
"""

from __future__ import annotations

import struct
from collections.abc import Iterator

from repro.core.errors import (
    PageFullError,
    RecordNotFoundError,
    StorageError,
)
from repro.storage.buffer import BufferManager
from repro.storage.oid import OID
from repro.storage.page import SlottedPage, max_record_size

_TAG_DATA = 0
_TAG_FWD = 1
_TAG_MOVED = 2

_FWD = struct.Struct("<III")


class StorageFile:
    """A file of records on one volume, managed through the buffer pool."""

    def __init__(self, file_id: int, volume: int, buffer: BufferManager):
        self.file_id = file_id
        self.volume = volume
        self.buffer = buffer
        self.pages: list[int] = []
        self._page_set: set[int] = set()
        self._record_count = 0
        # Pages believed to have free room, checked again before use.
        self._free_hints: list[int] = []

    # -- capacity ------------------------------------------------------------

    @property
    def page_size(self) -> int:
        return self.buffer.disk.params.block_size

    def nbpages(self) -> int:
        """Number of pages in the file (the cost model's nbpages(C))."""
        return len(self.pages)

    def record_count(self) -> int:
        return self._record_count

    def max_payload(self) -> int:
        return max_record_size(self.page_size) - 1

    # -- page helpers ----------------------------------------------------------

    def _new_page(self) -> int:
        page_no = self.buffer.disk.allocate_page(self.volume)
        frame = self.buffer.fetch(self.volume, page_no)
        SlottedPage.format(frame)
        self.buffer.unpin(self.volume, page_no, dirty=True)
        self.pages.append(page_no)
        self._page_set.add(page_no)
        return page_no

    def _page(self, page_no: int) -> SlottedPage:
        return SlottedPage(self.buffer.fetch(self.volume, page_no))

    # -- record operations --------------------------------------------------

    def insert(self, payload: bytes) -> OID:
        if len(payload) > self.max_payload():
            raise StorageError(
                f"record of {len(payload)} bytes exceeds the page capacity "
                f"of {self.max_payload()} bytes"
            )
        record = bytes([_TAG_DATA]) + payload
        slot, page_no = self._place(record)
        self._record_count += 1
        return OID(self.volume, page_no, slot)

    def _place(self, record: bytes) -> tuple[int, int]:
        """Store a raw tagged record somewhere with room; return (slot, page)."""
        while self._free_hints:
            page_no = self._free_hints[-1]
            page = self._page(page_no)
            if page.has_room_for(record):
                slot = page.insert(record)
                self.buffer.unpin(self.volume, page_no, dirty=True)
                return slot, page_no
            self.buffer.unpin(self.volume, page_no, dirty=False)
            self._free_hints.pop()
        page_no = self._new_page()
        page = self._page(page_no)
        slot = page.insert(record)
        self.buffer.unpin(self.volume, page_no, dirty=True)
        self._free_hints.append(page_no)
        return slot, page_no

    def _read_raw(self, oid: OID) -> bytes:
        if oid.volume != self.volume or oid.page not in self._page_set:
            raise RecordNotFoundError(f"OID {oid} is not in file {self.file_id}")
        page = self._page(oid.page)
        try:
            raw = page.read(oid.slot)
        finally:
            self.buffer.unpin(self.volume, oid.page, dirty=False)
        return raw

    def read(self, oid: OID) -> bytes:
        """Read a record payload, following at most one forwarding stub."""
        raw = self._read_raw(oid)
        tag = raw[0]
        if tag == _TAG_FWD:
            target = OID(*_FWD.unpack(raw[1:1 + _FWD.size]))
            raw = self._read_raw(target)
            if raw[0] != _TAG_MOVED:
                raise StorageError(f"dangling forwarding stub at {oid}")
        elif tag == _TAG_MOVED:
            raise RecordNotFoundError(
                f"OID {oid} addresses a relocated body, not a record"
            )
        return raw[1:]

    def update(self, oid: OID, payload: bytes) -> None:
        """Replace the record at ``oid`` in place, relocating if needed."""
        if len(payload) > self.max_payload():
            raise StorageError("updated record exceeds page capacity")
        raw = self._read_raw(oid)
        tag = raw[0]
        if tag == _TAG_MOVED:
            raise RecordNotFoundError(
                f"OID {oid} addresses a relocated body, not a record"
            )
        if tag == _TAG_FWD:
            # Drop the old body; try to bring the record home first.
            old_target = OID(*_FWD.unpack(raw[1:1 + _FWD.size]))
            self._delete_raw(old_target)
        page = self._page(oid.page)
        try:
            page.update(oid.slot, bytes([_TAG_DATA]) + payload)
            self.buffer.unpin(self.volume, oid.page, dirty=True)
            return
        except PageFullError:
            self.buffer.unpin(self.volume, oid.page, dirty=False)
        # Relocate the body and leave a stub.
        slot, page_no = self._place(bytes([_TAG_MOVED]) + payload)
        target = OID(self.volume, page_no, slot)
        stub = bytes([_TAG_FWD]) + _FWD.pack(target.volume, target.page, target.slot)
        page = self._page(oid.page)
        try:
            page.update(oid.slot, stub)
        finally:
            self.buffer.unpin(self.volume, oid.page, dirty=True)

    def _delete_raw(self, oid: OID) -> None:
        page = self._page(oid.page)
        try:
            page.delete(oid.slot)
        finally:
            self.buffer.unpin(self.volume, oid.page, dirty=True)
        if oid.page not in self._free_hints:
            self._free_hints.append(oid.page)

    def delete(self, oid: OID) -> None:
        raw = self._read_raw(oid)
        tag = raw[0]
        if tag == _TAG_MOVED:
            raise RecordNotFoundError(
                f"OID {oid} addresses a relocated body, not a record"
            )
        if tag == _TAG_FWD:
            target = OID(*_FWD.unpack(raw[1:1 + _FWD.size]))
            self._delete_raw(target)
        self._delete_raw(oid)
        self._record_count -= 1

    def exists(self, oid: OID) -> bool:
        try:
            self.read(oid)
            return True
        except (RecordNotFoundError, StorageError):
            return False

    # -- scans ------------------------------------------------------------

    def scan(self) -> Iterator[tuple[OID, bytes]]:
        """Yield every live record as ``(oid, payload)`` in page order.

        Relocated bodies are reported under their home (stub) OID so that a
        record's identity is stable across relocations.
        """
        for page_no in list(self.pages):
            page = self._page(page_no)
            try:
                entries = page.records()
            finally:
                self.buffer.unpin(self.volume, page_no, dirty=False)
            for slot, raw in entries:
                tag = raw[0]
                if tag == _TAG_DATA:
                    yield OID(self.volume, page_no, slot), raw[1:]
                elif tag == _TAG_FWD:
                    target = OID(*_FWD.unpack(raw[1:1 + _FWD.size]))
                    body = self._read_raw(target)
                    yield OID(self.volume, page_no, slot), body[1:]
                # MOVED bodies are reached through their stubs only.

    def oids(self) -> list[OID]:
        return [oid for oid, _ in self.scan()]

    def destroy(self) -> None:
        """Free every page of the file."""
        for page_no in self.pages:
            self.buffer.forget_page(self.volume, page_no)
            self.buffer.disk.free_page(self.volume, page_no)
        self.pages.clear()
        self._page_set.clear()
        self._free_hints.clear()
        self._record_count = 0
