"""Storage files: ordered collections of slotted pages holding records.

A file is the persistent home of a class extent (and of the system catalog
extents of Figure 2.2).  Records are addressed by :class:`~repro.storage.oid.OID`
and keep their OID for life: an update that no longer fits on its page moves
the body elsewhere and leaves a *forwarding stub* behind, exactly as slotted
storage managers of the ESM era did.

Record wire format: a one-byte tag followed by the payload.

====== ==========================================================
tag     meaning
====== ==========================================================
DATA    record body lives here, addressed by this slot's OID
FWD     stub; payload is the OID the record moved to
MOVED   relocated body; reachable only through its FWD stub
====== ==========================================================

Two kinds of stub share the FWD tag, distinguished by what they point at:

* ``FWD -> MOVED`` -- the classic oversized-update stub.  The record's
  identity stays at the stub's OID; the MOVED body is an unaddressable
  continuation, and an in-place-again update brings the body home.
* ``FWD -> DATA`` -- left by :meth:`StorageFile.relocate`.  The record
  was *re-identified*: the DATA record on the target page is the live
  object under its own (new) OID, and the stub only keeps the old OID
  resolvable until every inbound reference is rewritten and the stub
  slot reclaimed (:meth:`StorageFile.reclaim_stub`).  Reads follow stub
  chains and snap them down to one hop.
"""

from __future__ import annotations

import struct
from collections.abc import Iterator

from repro.core.errors import (
    PageFullError,
    RecordNotFoundError,
    StorageError,
)
from repro.storage.buffer import BufferManager
from repro.storage.oid import OID
from repro.storage.page import SlottedPage, max_record_size

_TAG_DATA = 0
_TAG_FWD = 1
_TAG_MOVED = 2

_FWD = struct.Struct("<III")

#: Forwarding chains longer than this are corrupt (a cycle): relocation
#: only ever appends one hop, and reads snap chains back down to one.
_MAX_HOPS = 16


class StorageCounters:
    """Pre-resolved ``storage.*`` registry counters, shared by every file
    of a storage manager (attach via :class:`~repro.storage.manager`)."""

    __slots__ = ("forwards_followed", "forwards_snapped", "relocations",
                 "stubs_reclaimed")

    def __init__(self, component):
        self.forwards_followed = component.counter("forwards_followed")
        self.forwards_snapped = component.counter("forwards_snapped")
        self.relocations = component.counter("relocations")
        self.stubs_reclaimed = component.counter("stubs_reclaimed")


class StorageFile:
    """A file of records on one volume, managed through the buffer pool."""

    def __init__(self, file_id: int, volume: int, buffer: BufferManager):
        self.file_id = file_id
        self.volume = volume
        self.buffer = buffer
        self.pages: list[int] = []
        self._page_set: set[int] = set()
        self._record_count = 0
        # Pages believed to have free room, checked again before use.
        self._free_hints: list[int] = []
        #: Shared ``storage.*`` counters (:class:`StorageCounters`) or None.
        self.counters: StorageCounters | None = None
        #: ``on_new_page(page_no)`` fires whenever the file grows; the
        #: object manager keeps its page->class map current through it.
        self.on_new_page = None

    # -- capacity ------------------------------------------------------------

    @property
    def page_size(self) -> int:
        return self.buffer.disk.params.block_size

    def nbpages(self) -> int:
        """Number of pages in the file (the cost model's nbpages(C))."""
        return len(self.pages)

    def record_count(self) -> int:
        return self._record_count

    def max_payload(self) -> int:
        return max_record_size(self.page_size) - 1

    # -- page helpers ----------------------------------------------------------

    def _new_page(self) -> int:
        page_no = self.buffer.disk.allocate_page(self.volume)
        frame = self.buffer.fetch(self.volume, page_no)
        SlottedPage.format(frame)
        self.buffer.unpin(self.volume, page_no, dirty=True)
        self.pages.append(page_no)
        self._page_set.add(page_no)
        if self.on_new_page is not None:
            self.on_new_page(page_no)
        return page_no

    def allocate_page(self) -> int:
        """Allocate, format and register a fresh empty page.

        The reclusterer uses this to lay out relocation targets it then
        fills explicitly via :meth:`relocate`; ordinary inserts keep
        growing the file through ``_place``.
        """
        return self._new_page()

    def _page(self, page_no: int) -> SlottedPage:
        return SlottedPage(self.buffer.fetch(self.volume, page_no))

    # -- record operations --------------------------------------------------

    def insert(self, payload: bytes) -> OID:
        if len(payload) > self.max_payload():
            raise StorageError(
                f"record of {len(payload)} bytes exceeds the page capacity "
                f"of {self.max_payload()} bytes"
            )
        record = bytes([_TAG_DATA]) + payload
        slot, page_no = self._place(record)
        self._record_count += 1
        return OID(self.volume, page_no, slot)

    def _place(self, record: bytes) -> tuple[int, int]:
        """Store a raw tagged record somewhere with room; return (slot, page)."""
        while self._free_hints:
            page_no = self._free_hints[-1]
            page = self._page(page_no)
            if page.has_room_for(record):
                slot = page.insert(record)
                self.buffer.unpin(self.volume, page_no, dirty=True)
                return slot, page_no
            self.buffer.unpin(self.volume, page_no, dirty=False)
            self._free_hints.pop()
        page_no = self._new_page()
        page = self._page(page_no)
        slot = page.insert(record)
        self.buffer.unpin(self.volume, page_no, dirty=True)
        self._free_hints.append(page_no)
        return slot, page_no

    def _read_raw(self, oid: OID) -> bytes:
        if oid.volume != self.volume or oid.page not in self._page_set:
            raise RecordNotFoundError(f"OID {oid} is not in file {self.file_id}")
        page = self._page(oid.page)
        try:
            raw = page.read(oid.slot)
        finally:
            self.buffer.unpin(self.volume, oid.page, dirty=False)
        return raw

    @staticmethod
    def _stub_target(raw: bytes) -> OID:
        return OID(*_FWD.unpack(raw[1:1 + _FWD.size]))

    @staticmethod
    def _stub_bytes(target: OID) -> bytes:
        return bytes([_TAG_FWD]) + _FWD.pack(
            target.volume, target.page, target.slot
        )

    def _resolve(self, oid: OID) -> tuple[OID, bytes]:
        """Follow forwarding stubs from ``oid`` to the record body; return
        ``(body_oid, raw)``.  Chains of two or more hops are snapped: the
        entry stub is rewritten to point straight at the body (an
        idempotent physical optimisation -- losing it in a crash merely
        restores the longer chain)."""
        raw = self._read_raw(oid)
        if raw[0] == _TAG_MOVED:
            raise RecordNotFoundError(
                f"OID {oid} addresses a relocated body, not a record"
            )
        current = oid
        hops = 0
        while raw[0] == _TAG_FWD:
            if hops >= _MAX_HOPS:
                raise StorageError(f"forwarding cycle at {oid}")
            current = self._stub_target(raw)
            raw = self._read_raw(current)
            hops += 1
            if self.counters is not None:
                self.counters.forwards_followed.inc()
        if raw[0] not in (_TAG_DATA, _TAG_MOVED):
            raise StorageError(f"dangling forwarding stub at {oid}")
        if hops >= 2:
            self._snap(oid, current)
        return current, raw

    def _snap(self, oid: OID, body: OID) -> None:
        """Rewrite the stub at ``oid`` to point directly at ``body``."""
        page = self._page(oid.page)
        try:
            page.update(oid.slot, self._stub_bytes(body))
        except PageFullError:
            self.buffer.unpin(self.volume, oid.page, dirty=False)
            return
        self.buffer.unpin(self.volume, oid.page, dirty=True)
        if self.counters is not None:
            self.counters.forwards_snapped.inc()

    def read(self, oid: OID) -> bytes:
        """Read a record payload, following forwarding stubs transparently."""
        _, raw = self._resolve(oid)
        return raw[1:]

    def resolve_oid(self, oid: OID) -> OID:
        """The OID a record actually lives under: ``oid`` itself for DATA
        and legacy oversize stubs, the relocated identity for FWD->DATA."""
        body_oid, raw = self._resolve(oid)
        return body_oid if raw[0] == _TAG_DATA else oid

    def update(self, oid: OID, payload: bytes) -> None:
        """Replace the record at ``oid`` in place, relocating if needed."""
        if len(payload) > self.max_payload():
            raise StorageError("updated record exceeds page capacity")
        raw = self._read_raw(oid)
        tag = raw[0]
        if tag == _TAG_MOVED:
            raise RecordNotFoundError(
                f"OID {oid} addresses a relocated body, not a record"
            )
        if tag == _TAG_FWD:
            target = self._stub_target(raw)
            body = self._read_raw(target)
            if body[0] != _TAG_MOVED:
                # Relocated identity: the live record is at ``target``.
                if self.counters is not None:
                    self.counters.forwards_followed.inc()
                self.update(target, payload)
                return
            # Oversize stub: drop the old body and bring the record home.
            self._delete_raw(target)
        page = self._page(oid.page)
        try:
            page.update(oid.slot, bytes([_TAG_DATA]) + payload)
            self.buffer.unpin(self.volume, oid.page, dirty=True)
            return
        except PageFullError:
            self.buffer.unpin(self.volume, oid.page, dirty=False)
        # Relocate the body and leave a stub.
        slot, page_no = self._place(bytes([_TAG_MOVED]) + payload)
        target = OID(self.volume, page_no, slot)
        page = self._page(oid.page)
        try:
            page.update(oid.slot, self._stub_bytes(target))
        finally:
            self.buffer.unpin(self.volume, oid.page, dirty=True)

    def _delete_raw(self, oid: OID) -> None:
        page = self._page(oid.page)
        try:
            page.delete(oid.slot)
        finally:
            self.buffer.unpin(self.volume, oid.page, dirty=True)
        if oid.page not in self._free_hints:
            self._free_hints.append(oid.page)

    def delete(self, oid: OID) -> None:
        raw = self._read_raw(oid)
        tag = raw[0]
        if tag == _TAG_MOVED:
            raise RecordNotFoundError(
                f"OID {oid} addresses a relocated body, not a record"
            )
        if tag == _TAG_FWD:
            target = self._stub_target(raw)
            body = self._read_raw(target)
            if body[0] != _TAG_MOVED:
                # Relocated identity: delete the live record, then this
                # stub (the recursion already adjusted the record count).
                if self.counters is not None:
                    self.counters.forwards_followed.inc()
                self.delete(target)
                self._delete_raw(oid)
                return
            self._delete_raw(target)
        self._delete_raw(oid)
        self._record_count -= 1

    # -- relocation ------------------------------------------------------------

    def relocate(self, oid: OID, target_page: int) -> OID:
        """Move the record at ``oid`` onto ``target_page``; return its new
        OID.

        The body is written as a DATA record with a *fresh identity* on
        the target page, and the home slot becomes a forwarding stub so
        reads through the old OID keep working until inbound references
        are rewritten and the stub is reclaimed.  A legacy oversize stub
        is consolidated: its MOVED continuation is folded into the new
        DATA record and freed.  Raises :class:`PageFullError` (leaving
        everything in place) when the target page lacks room.
        """
        if target_page not in self._page_set:
            raise StorageError(
                f"page {target_page} is not in file {self.file_id}"
            )
        raw = self._read_raw(oid)
        tag = raw[0]
        if tag == _TAG_MOVED:
            raise RecordNotFoundError(
                f"OID {oid} addresses a relocated body, not a record"
            )
        old_body: OID | None = None
        if tag == _TAG_FWD:
            target = self._stub_target(raw)
            body = self._read_raw(target)
            if body[0] != _TAG_MOVED:
                raise StorageError(
                    f"{oid} forwards to a relocated identity; "
                    f"relocate {target} instead"
                )
            old_body = target
            raw = body
        elif oid.page == target_page:
            return oid  # already where it belongs
        record = bytes([_TAG_DATA]) + raw[1:]
        page = self._page(target_page)
        try:
            slot = page.insert(record)
        except PageFullError:
            self.buffer.unpin(self.volume, target_page, dirty=False)
            raise
        self.buffer.unpin(self.volume, target_page, dirty=True)
        new_oid = OID(self.volume, target_page, slot)
        stub = self._stub_bytes(new_oid)
        page = self._page(oid.page)
        try:
            page.update(oid.slot, stub)
        except PageFullError:
            self.buffer.unpin(self.volume, oid.page, dirty=False)
            self._delete_raw(new_oid)  # back out: original still in place
            raise
        self.buffer.unpin(self.volume, oid.page, dirty=True)
        if old_body is not None:
            self._delete_raw(old_body)
        if self.counters is not None:
            self.counters.relocations.inc()
        return new_oid

    def reclaim_stub(self, oid: OID) -> None:
        """Free the forwarding-stub slot at ``oid`` once nothing resolves
        records through the old OID any more.  Refuses to reclaim an
        oversize stub (``FWD -> MOVED``): that stub *is* the record's
        identity and dropping it would strand the body."""
        raw = self._read_raw(oid)
        if raw[0] != _TAG_FWD:
            raise StorageError(f"{oid} is not a forwarding stub")
        target = self._stub_target(raw)
        try:
            body = self._read_raw(target)
        except (RecordNotFoundError, StorageError):
            body = None  # chain already partially reclaimed
        if body is not None and body[0] == _TAG_MOVED:
            raise StorageError(
                f"{oid} still owns its relocated body at {target}"
            )
        self._delete_raw(oid)
        if self.counters is not None:
            self.counters.stubs_reclaimed.inc()

    def exists(self, oid: OID) -> bool:
        try:
            self.read(oid)
            return True
        except (RecordNotFoundError, StorageError):
            return False

    # -- scans ------------------------------------------------------------

    def scan(self) -> Iterator[tuple[OID, bytes]]:
        """Yield every live record as ``(oid, payload)`` in page order.

        Oversize-update bodies (``FWD -> MOVED``) are reported under their
        home (stub) OID, where the record's identity lives.  Stubs left by
        :meth:`relocate` (``FWD -> DATA``) are skipped: the relocated
        record is a live DATA record yielded under its own (new) OID.
        """
        for page_no in list(self.pages):
            page = self._page(page_no)
            try:
                entries = page.records()
            finally:
                self.buffer.unpin(self.volume, page_no, dirty=False)
            for slot, raw in entries:
                tag = raw[0]
                if tag == _TAG_DATA:
                    yield OID(self.volume, page_no, slot), raw[1:]
                elif tag == _TAG_FWD:
                    target = OID(*_FWD.unpack(raw[1:1 + _FWD.size]))
                    body = self._read_raw(target)
                    if body[0] == _TAG_MOVED:
                        yield OID(self.volume, page_no, slot), body[1:]
                    # FWD -> DATA / FWD -> FWD: the live record appears
                    # under its own OID elsewhere in the scan.
                # MOVED bodies are reached through their stubs only.

    def oids(self) -> list[OID]:
        return [oid for oid, _ in self.scan()]

    def destroy(self) -> None:
        """Free every page of the file."""
        for page_no in self.pages:
            self.buffer.forget_page(self.volume, page_no)
            self.buffer.disk.free_page(self.volume, page_no)
        self.pages.clear()
        self._page_set.clear()
        self._free_hints.clear()
        self._record_count = 0
