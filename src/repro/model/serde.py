"""Self-describing binary serialisation of MOOD values onto pages.

Values are encoded with a one-byte tag followed by the payload, so records
can be decoded without consulting the catalog (the kernel still validates
decoded values against the declared type).  Supported values mirror the
MOOD data model: the six basic types, Tuple (``dict``), Set (``set``),
List (``list``) and Reference (:class:`~repro.storage.oid.OID`).
"""

from __future__ import annotations

import struct
from typing import Any

from repro.core.errors import SerdeError
from repro.storage.oid import OID

_TAG_NULL = 0x00
_TAG_INT = 0x01       # 64-bit signed (covers Integer and LongInteger)
_TAG_FLOAT = 0x02     # IEEE double
_TAG_STRING = 0x03    # u32 length + UTF-8 bytes
_TAG_CHAR = 0x04      # u32 length + UTF-8 bytes (1 code point)
_TAG_BOOL_TRUE = 0x05
_TAG_BOOL_FALSE = 0x06
_TAG_TUPLE = 0x07     # u16 count + (string name, value)*
_TAG_SET = 0x08       # u32 count + value*
_TAG_LIST = 0x09      # u32 count + value*
_TAG_REF = 0x0A       # u32 volume, u32 page, u32 slot

_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")


def encode(value: Any) -> bytes:
    """Serialise a MOOD value to bytes."""
    out = bytearray()
    _encode_into(value, out)
    return bytes(out)


def _encode_into(value: Any, out: bytearray) -> None:
    if value is None:
        out.append(_TAG_NULL)
    elif isinstance(value, bool):
        out.append(_TAG_BOOL_TRUE if value else _TAG_BOOL_FALSE)
    elif isinstance(value, OID):
        out.append(_TAG_REF)
        out += _U32.pack(value.volume)
        out += _U32.pack(value.page)
        out += _U32.pack(value.slot)
    elif isinstance(value, int):
        out.append(_TAG_INT)
        try:
            out += _I64.pack(value)
        except struct.error:
            raise SerdeError(f"integer {value} exceeds 64 bits") from None
    elif isinstance(value, float):
        out.append(_TAG_FLOAT)
        out += _F64.pack(value)
    elif isinstance(value, str):
        data = value.encode("utf-8")
        out.append(_TAG_CHAR if len(value) == 1 else _TAG_STRING)
        out += _U32.pack(len(data))
        out += data
    elif isinstance(value, dict):
        if len(value) > 0xFFFF:
            raise SerdeError("tuple with too many fields")
        out.append(_TAG_TUPLE)
        out += _U16.pack(len(value))
        for name, field_value in value.items():
            if not isinstance(name, str):
                raise SerdeError(f"tuple field name {name!r} is not a string")
            data = name.encode("utf-8")
            out += _U32.pack(len(data))
            out += data
            _encode_into(field_value, out)
    elif isinstance(value, (set, frozenset)):
        out.append(_TAG_SET)
        out += _U32.pack(len(value))
        # Deterministic order: sort by each element's own encoding.
        for element in sorted(value, key=encode):
            _encode_into(element, out)
    elif isinstance(value, (list, tuple)):
        out.append(_TAG_LIST)
        out += _U32.pack(len(value))
        for element in value:
            _encode_into(element, out)
    else:
        raise SerdeError(f"cannot serialise {type(value).__name__}: {value!r}")


def decode(data: bytes) -> Any:
    """Deserialise bytes previously produced by :func:`encode`."""
    try:
        value, offset = _decode_from(data, 0)
    except (struct.error, IndexError, UnicodeDecodeError) as exc:
        raise SerdeError(f"corrupt value: {exc}") from None
    if offset != len(data):
        raise SerdeError(f"{len(data) - offset} trailing bytes after value")
    return value


def _decode_from(data: bytes, offset: int) -> tuple[Any, int]:
    if offset >= len(data):
        raise SerdeError("truncated value")
    tag = data[offset]
    offset += 1
    if tag == _TAG_NULL:
        return None, offset
    if tag == _TAG_BOOL_TRUE:
        return True, offset
    if tag == _TAG_BOOL_FALSE:
        return False, offset
    if tag == _TAG_INT:
        (value,) = _I64.unpack_from(data, offset)
        return value, offset + _I64.size
    if tag == _TAG_FLOAT:
        (value,) = _F64.unpack_from(data, offset)
        return value, offset + _F64.size
    if tag in (_TAG_STRING, _TAG_CHAR):
        (length,) = _U32.unpack_from(data, offset)
        offset += _U32.size
        value = data[offset:offset + length].decode("utf-8")
        return value, offset + length
    if tag == _TAG_REF:
        volume, page, slot = struct.unpack_from("<III", data, offset)
        return OID(volume, page, slot), offset + 12
    if tag == _TAG_TUPLE:
        (count,) = _U16.unpack_from(data, offset)
        offset += _U16.size
        result: dict[str, Any] = {}
        for _ in range(count):
            (length,) = _U32.unpack_from(data, offset)
            offset += _U32.size
            name = data[offset:offset + length].decode("utf-8")
            offset += length
            result[name], offset = _decode_from(data, offset)
        return result, offset
    if tag == _TAG_SET:
        (count,) = _U32.unpack_from(data, offset)
        offset += _U32.size
        elements = set()
        for _ in range(count):
            element, offset = _decode_from(data, offset)
            elements.add(element)
        return elements, offset
    if tag == _TAG_LIST:
        (count,) = _U32.unpack_from(data, offset)
        offset += _U32.size
        elements = []
        for _ in range(count):
            element, offset = _decode_from(data, offset)
            elements.append(element)
        return elements, offset
    raise SerdeError(f"unknown tag 0x{tag:02x}")
