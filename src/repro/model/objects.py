"""Objects versus values, and deep equality.

Section 2 distinguishes classes from types: a class has a default extent,
its instances are objects with identity (OIDs); values of plain types have
copy semantics.  :class:`MoodObject` is the in-memory face of one stored
instance; :func:`deep_equal` implements the "deep equality check" that
``DupElim`` applies to extents (Table 3), following references through a
resolver with a cycle guard.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.storage.oid import OID


@dataclass
class MoodObject:
    """One instance of a class: identity, class name, and tuple state."""

    oid: OID
    class_name: str
    state: dict[str, Any] = field(default_factory=dict)

    def get(self, attribute: str) -> Any:
        return self.state.get(attribute)

    def set(self, attribute: str, value: Any) -> None:
        self.state[attribute] = value

    def copy_value(self) -> dict[str, Any]:
        """A deep copy of the state: the *value* of the object (copy
        semantics, as for instances of plain types)."""
        return copy.deepcopy(self.state)

    def __str__(self) -> str:
        return f"{self.class_name}[{self.oid}]"


Resolver = Callable[[OID], MoodObject]


def shallow_equal(a: MoodObject, b: MoodObject) -> bool:
    """Identity-based equality of references; state compared directly."""
    return a.class_name == b.class_name and a.state == b.state


def deep_equal(a: MoodObject, b: MoodObject, resolve: Resolver) -> bool:
    """Deep (value) equality: references are followed and compared by the
    value of the objects they denote, not by identity.

    Cycles are handled by memoising the pairs under comparison: a pair
    already on the comparison stack is assumed equal (the standard
    coinductive reading of equality on cyclic structures).
    """
    return _deep_equal_values(a, b, resolve, set())


def _deep_equal_values(a: Any, b: Any, resolve: Resolver, visiting: set) -> bool:
    if isinstance(a, MoodObject) and isinstance(b, MoodObject):
        if a.class_name != b.class_name:
            return False
        pair = (a.oid, b.oid)
        if pair in visiting:
            return True
        visiting.add(pair)
        try:
            return _deep_equal_values(a.state, b.state, resolve, visiting)
        finally:
            visiting.discard(pair)
    if isinstance(a, OID) and isinstance(b, OID):
        if a == b:
            return True
        if a.is_null or b.is_null:
            return False
        return _deep_equal_values(resolve(a), resolve(b), resolve, visiting)
    if isinstance(a, dict) and isinstance(b, dict):
        if set(a) != set(b):
            return False
        return all(
            _deep_equal_values(a[key], b[key], resolve, visiting) for key in a
        )
    if isinstance(a, list) and isinstance(b, list):
        if len(a) != len(b):
            return False
        return all(
            _deep_equal_values(x, y, resolve, visiting) for x, y in zip(a, b)
        )
    if isinstance(a, (set, frozenset)) and isinstance(b, (set, frozenset)):
        if len(a) != len(b):
            return False
        # Quadratic matching; sets of references are typically small.
        unmatched = list(b)
        for x in a:
            for index, y in enumerate(unmatched):
                if _deep_equal_values(x, y, resolve, visiting):
                    unmatched.pop(index)
                    break
            else:
                return False
        return True
    if type(a) is not type(b) and not (
        isinstance(a, (int, float)) and isinstance(b, (int, float))
        and not isinstance(a, bool) and not isinstance(b, bool)
    ):
        return False
    return a == b
