"""The MOOD type system.

Section 2 / Section 3.1: *"the basic types are Integer, Float, LongInteger,
String, Char, and Boolean.  Any complex data type is defined using these
types and by the recursive application of the Tuple, Set, List and Reference
type constructors."*

Types are immutable descriptors.  Structural equality holds
(``SetType(INTEGER) == SetType(INTEGER)``), and the :class:`TypeRegistry`
assigns the paper's unique type identifiers, exposing the two kernel
functions ``typeId(typeName)`` and ``typeName(typeId)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import TypeMismatchError, UnknownTypeError
from repro.storage.oid import NULL_OID, OID


class MoodType:
    """Abstract base of all MOOD type descriptors."""

    @property
    def name(self) -> str:
        raise NotImplementedError

    def validate(self, value):
        """Check (and canonicalise) a Python value against this type.

        Returns the canonical value or raises :class:`TypeMismatchError`.
        ``None`` is accepted everywhere: MOOD attributes may be null (the
        cost model's ``notnull(A, C)`` measures how often they are not).
        """
        raise NotImplementedError

    def default(self):
        """The default value instances start with."""
        return None

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"<MoodType {self.name}>"


# --------------------------------------------------------------------------
# Basic types
# --------------------------------------------------------------------------

_INT32_MIN, _INT32_MAX = -(2**31), 2**31 - 1
_INT64_MIN, _INT64_MAX = -(2**63), 2**63 - 1


@dataclass(frozen=True)
class IntegerType(MoodType):
    """32-bit Integer."""

    @property
    def name(self) -> str:
        return "Integer"

    def validate(self, value):
        if value is None:
            return None
        if isinstance(value, bool) or not isinstance(value, int):
            raise TypeMismatchError(f"{value!r} is not an Integer")
        if not _INT32_MIN <= value <= _INT32_MAX:
            raise TypeMismatchError(f"{value} out of Integer range")
        return value

    def default(self):
        return 0


@dataclass(frozen=True)
class LongIntegerType(MoodType):
    """64-bit LongInteger."""

    @property
    def name(self) -> str:
        return "LongInteger"

    def validate(self, value):
        if value is None:
            return None
        if isinstance(value, bool) or not isinstance(value, int):
            raise TypeMismatchError(f"{value!r} is not a LongInteger")
        if not _INT64_MIN <= value <= _INT64_MAX:
            raise TypeMismatchError(f"{value} out of LongInteger range")
        return value

    def default(self):
        return 0


@dataclass(frozen=True)
class FloatType(MoodType):
    @property
    def name(self) -> str:
        return "Float"

    def validate(self, value):
        if value is None:
            return None
        if isinstance(value, bool):
            raise TypeMismatchError("Boolean is not a Float")
        if isinstance(value, int):
            return float(value)
        if not isinstance(value, float):
            raise TypeMismatchError(f"{value!r} is not a Float")
        return value

    def default(self):
        return 0.0


@dataclass(frozen=True)
class StringType(MoodType):
    """String, optionally bounded as in the paper's ``String(32)``."""

    max_length: int | None = None

    @property
    def name(self) -> str:
        if self.max_length is None:
            return "String"
        return f"String({self.max_length})"

    def validate(self, value):
        if value is None:
            return None
        if not isinstance(value, str):
            raise TypeMismatchError(f"{value!r} is not a String")
        if self.max_length is not None and len(value) > self.max_length:
            raise TypeMismatchError(
                f"string of length {len(value)} exceeds String({self.max_length})"
            )
        return value

    def default(self):
        return ""


@dataclass(frozen=True)
class CharType(MoodType):
    @property
    def name(self) -> str:
        return "Char"

    def validate(self, value):
        if value is None:
            return None
        if not isinstance(value, str) or len(value) != 1:
            raise TypeMismatchError(f"{value!r} is not a Char")
        return value

    def default(self):
        return "\0"


@dataclass(frozen=True)
class BooleanType(MoodType):
    @property
    def name(self) -> str:
        return "Boolean"

    def validate(self, value):
        if value is None:
            return None
        if not isinstance(value, bool):
            raise TypeMismatchError(f"{value!r} is not a Boolean")
        return value

    def default(self):
        return False


#: Singleton instances of the six basic types.
INTEGER = IntegerType()
LONGINTEGER = LongIntegerType()
FLOAT = FloatType()
STRING = StringType()
CHAR = CharType()
BOOLEAN = BooleanType()

BASIC_TYPES: dict[str, MoodType] = {
    "Integer": INTEGER,
    "LongInteger": LONGINTEGER,
    "Float": FLOAT,
    "String": STRING,
    "Char": CHAR,
    "Boolean": BOOLEAN,
}


# --------------------------------------------------------------------------
# Type constructors
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class TupleType(MoodType):
    """Tuple constructor: an ordered sequence of named, typed fields."""

    fields: tuple[tuple[str, MoodType], ...]

    def __post_init__(self):
        names = [name for name, _ in self.fields]
        if len(names) != len(set(names)):
            raise TypeMismatchError(f"duplicate field names in Tuple: {names}")

    @property
    def name(self) -> str:
        inner = ", ".join(f"{n} {t.name}" for n, t in self.fields)
        return f"Tuple({inner})"

    def field_type(self, field_name: str) -> MoodType:
        for name, mood_type in self.fields:
            if name == field_name:
                return mood_type
        raise TypeMismatchError(f"Tuple has no field {field_name!r}")

    def field_names(self) -> list[str]:
        return [name for name, _ in self.fields]

    def validate(self, value):
        if value is None:
            return None
        if not isinstance(value, dict):
            raise TypeMismatchError(f"{value!r} is not a Tuple value")
        unknown = set(value) - set(self.field_names())
        if unknown:
            raise TypeMismatchError(f"unknown Tuple fields {sorted(unknown)}")
        return {
            name: mood_type.validate(value.get(name))
            for name, mood_type in self.fields
        }

    def default(self):
        return {name: mood_type.default() for name, mood_type in self.fields}


@dataclass(frozen=True)
class SetType(MoodType):
    element: MoodType

    @property
    def name(self) -> str:
        return f"Set({self.element.name})"

    def validate(self, value):
        if value is None:
            return None
        if isinstance(value, (set, frozenset, list, tuple)):
            validated = {self.element.validate(v) for v in value}
            return validated
        raise TypeMismatchError(f"{value!r} is not a Set value")

    def default(self):
        return set()


@dataclass(frozen=True)
class ListType(MoodType):
    element: MoodType

    @property
    def name(self) -> str:
        return f"List({self.element.name})"

    def validate(self, value):
        if value is None:
            return None
        if isinstance(value, (list, tuple)):
            return [self.element.validate(v) for v in value]
        raise TypeMismatchError(f"{value!r} is not a List value")

    def default(self):
        return []


@dataclass(frozen=True)
class RefType(MoodType):
    """Reference constructor; the target is a class *name* (late bound)."""

    target: str

    @property
    def name(self) -> str:
        return f"Reference({self.target})"

    def validate(self, value):
        if value is None:
            return None
        if isinstance(value, OID):
            return value
        raise TypeMismatchError(f"{value!r} is not an object reference")

    def default(self):
        return NULL_OID


def is_atomic(mood_type: MoodType) -> bool:
    """Atomic attribute in the cost model's sense (Section 4.1)."""
    return isinstance(
        mood_type,
        (IntegerType, LongIntegerType, FloatType, StringType, CharType, BooleanType),
    )


def is_reference_like(mood_type: MoodType) -> bool:
    """True for types a path expression may traverse (Section 4.1:
    attributes 'constructed using set and reference constructors')."""
    if isinstance(mood_type, RefType):
        return True
    if isinstance(mood_type, (SetType, ListType)):
        return is_reference_like(mood_type.element)
    return False


def referenced_class(mood_type: MoodType) -> str | None:
    """The class a reference-like attribute points at, if any."""
    if isinstance(mood_type, RefType):
        return mood_type.target
    if isinstance(mood_type, (SetType, ListType)):
        return referenced_class(mood_type.element)
    return None


# --------------------------------------------------------------------------
# The type registry: typeId / typeName
# --------------------------------------------------------------------------

@dataclass
class TypeRegistry:
    """Assigns unique type identifiers; implements the paper's
    ``typeId(char *typeName)`` and ``typeName(int typeId)`` functions.

    Basic types are pre-registered with stable low ids.
    """

    _by_name: dict[str, int] = field(default_factory=dict)
    _by_id: dict[int, MoodType] = field(default_factory=dict)
    _next_id: int = 1

    def __post_init__(self):
        for mood_type in BASIC_TYPES.values():
            self.register(mood_type)

    def register(self, mood_type: MoodType, name: str | None = None) -> int:
        """Register a type (idempotent per name); return its type id."""
        type_name = name if name is not None else mood_type.name
        if type_name in self._by_name:
            return self._by_name[type_name]
        type_id = self._next_id
        self._next_id += 1
        self._by_name[type_name] = type_id
        self._by_id[type_id] = mood_type
        return type_id

    def type_id(self, type_name: str) -> int:
        try:
            return self._by_name[type_name]
        except KeyError:
            raise UnknownTypeError(f"unknown type {type_name!r}") from None

    def type_name(self, type_id: int) -> str:
        mood_type = self.type_by_id(type_id)
        for name, tid in self._by_name.items():
            if tid == type_id:
                return name
        return mood_type.name

    def type_by_id(self, type_id: int) -> MoodType:
        try:
            return self._by_id[type_id]
        except KeyError:
            raise UnknownTypeError(f"unknown type id {type_id}") from None

    def type_by_name(self, type_name: str) -> MoodType:
        return self.type_by_id(self.type_id(type_name))

    def known_names(self) -> list[str]:
        return sorted(self._by_name)
