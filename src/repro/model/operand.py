"""Run-time-typed expression operands.

Section 2: *"For interpretation of arithmetic and Boolean expressions, the
types of operands are necessary at run time.  This information is provided
by the class OperandDataType."*  The paper's example::

    OperandDataType x(INT16), y(INT32), z(DOUBLE);
    x = 10; y = 13;
    z = (x*3 + x%3) * (y/4*5)   // evaluated, result cast to double

The interpreter *"mainly overloads addition, subtraction, multiplication,
division and mode operation operators in the order (+, -, *, /, %) for
arithmetic expressions.  It evaluates AND, OR, NOT, and comparison
operators for Boolean expressions.  Type checking and conversion of results
are performed at run-time."*

This class reproduces that machinery with C++ semantics: fixed-width
integer wrap-around, integer division truncating toward zero, usual
arithmetic conversions for mixed-width operands, and run-time type errors
for ill-typed combinations (e.g. ``%`` on floats, AND on integers).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any

from repro.core.errors import TypeMismatchError


class DType(Enum):
    """Run-time operand types, ordered by numeric promotion rank."""

    BOOL = "BOOL"
    CHAR = "CHAR"
    INT16 = "INT16"
    INT32 = "INT32"
    INT64 = "INT64"
    FLOAT = "FLOAT"
    DOUBLE = "DOUBLE"
    STRING = "STRING"


_INT_WIDTH = {DType.CHAR: 8, DType.INT16: 16, DType.INT32: 32, DType.INT64: 64}
_NUMERIC_RANK = {
    DType.BOOL: 0,
    DType.CHAR: 1,
    DType.INT16: 2,
    DType.INT32: 3,
    DType.INT64: 4,
    DType.FLOAT: 5,
    DType.DOUBLE: 6,
}


def _is_integral(dtype: DType) -> bool:
    return dtype in _INT_WIDTH or dtype is DType.BOOL


def _is_numeric(dtype: DType) -> bool:
    return dtype in _NUMERIC_RANK


def _wrap_int(value: int, dtype: DType) -> int:
    """Two's-complement wrap-around to the dtype's width."""
    width = _INT_WIDTH[dtype]
    mask = (1 << width) - 1
    value &= mask
    if value >= 1 << (width - 1):
        value -= 1 << width
    return value


def _promote(a: DType, b: DType) -> DType:
    """Usual arithmetic conversions; result at least INT16 (int promotion)."""
    if not (_is_numeric(a) and _is_numeric(b)):
        raise TypeMismatchError(f"cannot combine {a.value} and {b.value}")
    winner = a if _NUMERIC_RANK[a] >= _NUMERIC_RANK[b] else b
    if _NUMERIC_RANK[winner] < _NUMERIC_RANK[DType.INT16]:
        return DType.INT16
    return winner


@dataclass(frozen=True)
class OperandDataType:
    """An immutable (dtype, value) pair with overloaded C++-style operators."""

    dtype: DType
    value: Any

    # -- constructors --------------------------------------------------------

    def __post_init__(self):
        object.__setattr__(self, "value", self._check(self.dtype, self.value))

    @staticmethod
    def _check(dtype: DType, value: Any) -> Any:
        if dtype is DType.BOOL:
            if not isinstance(value, bool):
                raise TypeMismatchError(f"{value!r} is not BOOL")
            return value
        if dtype is DType.STRING:
            if not isinstance(value, str):
                raise TypeMismatchError(f"{value!r} is not STRING")
            return value
        if dtype in _INT_WIDTH:
            if isinstance(value, bool) or not isinstance(value, int):
                raise TypeMismatchError(f"{value!r} is not {dtype.value}")
            return _wrap_int(value, dtype)
        if dtype in (DType.FLOAT, DType.DOUBLE):
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise TypeMismatchError(f"{value!r} is not {dtype.value}")
            return float(value)
        raise TypeMismatchError(f"unknown dtype {dtype!r}")

    @classmethod
    def of(cls, value: Any) -> "OperandDataType":
        """Wrap a plain Python value with an inferred dtype."""
        if isinstance(value, OperandDataType):
            return value
        if isinstance(value, bool):
            return cls(DType.BOOL, value)
        if isinstance(value, int):
            dtype = DType.INT32 if -(2**31) <= value < 2**31 else DType.INT64
            return cls(dtype, value)
        if isinstance(value, float):
            return cls(DType.DOUBLE, value)
        if isinstance(value, str):
            return cls(DType.STRING, value)
        raise TypeMismatchError(f"cannot infer operand type of {value!r}")

    def cast(self, dtype: DType) -> "OperandDataType":
        """Explicit conversion (the paper's 'result's type is casted')."""
        if dtype is self.dtype:
            return self
        if dtype is DType.STRING or self.dtype is DType.STRING:
            raise TypeMismatchError(
                f"no conversion between {self.dtype.value} and {dtype.value}"
            )
        if dtype is DType.BOOL:
            return OperandDataType(DType.BOOL, bool(self.value))
        if dtype in _INT_WIDTH:
            return OperandDataType(dtype, int(self.value))
        return OperandDataType(dtype, float(self.value))

    # -- arithmetic (+, -, *, /, % in the paper's order) ------------------------

    def _arith(self, other: "OperandDataType", op: str) -> "OperandDataType":
        other = OperandDataType.of(other)
        if self.dtype is DType.STRING or other.dtype is DType.STRING:
            if op == "+" and self.dtype is other.dtype is DType.STRING:
                return OperandDataType(DType.STRING, self.value + other.value)
            raise TypeMismatchError(f"{op} not defined on STRING operands")
        result_type = _promote(self.dtype, other.dtype)
        a, b = self.value, other.value
        if isinstance(a, bool):
            a = int(a)
        if isinstance(b, bool):
            b = int(b)
        if op == "+":
            raw = a + b
        elif op == "-":
            raw = a - b
        elif op == "*":
            raw = a * b
        elif op == "/":
            if b == 0:
                raise TypeMismatchError("division by zero")
            if _is_integral(result_type):
                raw = int(a / b)  # C++ truncates toward zero
            else:
                raw = a / b
        elif op == "%":
            if not (_is_integral(self.dtype) and _is_integral(other.dtype)):
                raise TypeMismatchError("% requires integral operands")
            if b == 0:
                raise TypeMismatchError("modulo by zero")
            raw = int(a - b * int(a / b))  # C++ remainder (sign of dividend)
        else:  # pragma: no cover
            raise TypeMismatchError(f"unknown operator {op}")
        if _is_integral(result_type):
            raw = _wrap_int(int(raw), result_type)
        return OperandDataType(result_type, raw)

    def __add__(self, other):
        return self._arith(other, "+")

    def __sub__(self, other):
        return self._arith(other, "-")

    def __mul__(self, other):
        return self._arith(other, "*")

    def __truediv__(self, other):
        return self._arith(other, "/")

    def __mod__(self, other):
        return self._arith(other, "%")

    def __radd__(self, other):
        return OperandDataType.of(other)._arith(self, "+")

    def __rsub__(self, other):
        return OperandDataType.of(other)._arith(self, "-")

    def __rmul__(self, other):
        return OperandDataType.of(other)._arith(self, "*")

    def __rtruediv__(self, other):
        return OperandDataType.of(other)._arith(self, "/")

    def __rmod__(self, other):
        return OperandDataType.of(other)._arith(self, "%")

    def __neg__(self):
        if self.dtype is DType.STRING:
            raise TypeMismatchError("unary minus not defined on STRING")
        return OperandDataType(DType.INT32, 0)._arith(self, "-").cast(
            _promote(self.dtype, DType.INT16)
        )

    # -- comparisons -------------------------------------------------------

    def _compare(self, other: "OperandDataType", op: str) -> "OperandDataType":
        other = OperandDataType.of(other)
        string_pair = self.dtype is DType.STRING and other.dtype is DType.STRING
        numeric_pair = _is_numeric(self.dtype) and _is_numeric(other.dtype)
        if not (string_pair or numeric_pair):
            raise TypeMismatchError(
                f"cannot compare {self.dtype.value} with {other.dtype.value}"
            )
        a, b = self.value, other.value
        result = {
            "=": a == b,
            "<>": a != b,
            "<": a < b,
            "<=": a <= b,
            ">": a > b,
            ">=": a >= b,
        }[op]
        return OperandDataType(DType.BOOL, result)

    def eq(self, other):
        return self._compare(other, "=")

    def ne(self, other):
        return self._compare(other, "<>")

    def __lt__(self, other):
        return self._compare(other, "<")

    def __le__(self, other):
        return self._compare(other, "<=")

    def __gt__(self, other):
        return self._compare(other, ">")

    def __ge__(self, other):
        return self._compare(other, ">=")

    # -- Boolean connectives (AND, OR, NOT) ----------------------------------

    def _require_bool(self, context: str) -> bool:
        if self.dtype is not DType.BOOL:
            raise TypeMismatchError(f"{context} requires BOOL operands")
        return self.value

    def and_(self, other: "OperandDataType") -> "OperandDataType":
        other = OperandDataType.of(other)
        return OperandDataType(
            DType.BOOL, self._require_bool("AND") and other._require_bool("AND")
        )

    def or_(self, other: "OperandDataType") -> "OperandDataType":
        other = OperandDataType.of(other)
        return OperandDataType(
            DType.BOOL, self._require_bool("OR") or other._require_bool("OR")
        )

    def not_(self) -> "OperandDataType":
        return OperandDataType(DType.BOOL, not self._require_bool("NOT"))

    def __and__(self, other):
        return self.and_(other)

    def __or__(self, other):
        return self.or_(other)

    def __invert__(self):
        return self.not_()

    def __bool__(self) -> bool:
        return self._require_bool("truth test")

    def __str__(self) -> str:
        return f"{self.value} : {self.dtype.value}"
