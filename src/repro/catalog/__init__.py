"""Catalog: MoodsType/MoodsAttribute/MoodsFunction extents, schema, cfront."""

from repro.catalog.catalog import Catalog, IndexInfo
from repro.catalog.cppfront import (
    ParsedClass,
    ParsedMethodBody,
    cpp_type_to_mood,
    generate_header,
    generate_headers,
    mood_type_to_cpp,
    parse_cpp,
)
from repro.catalog.entities import MoodsAttribute, MoodsFunction, MoodsType
from repro.catalog.schema import ClassDefinition, ClassHierarchy
from repro.catalog.typeparse import format_type, parse_type

__all__ = [
    "Catalog",
    "ClassDefinition",
    "ClassHierarchy",
    "IndexInfo",
    "MoodsAttribute",
    "MoodsFunction",
    "MoodsType",
    "ParsedClass",
    "ParsedMethodBody",
    "cpp_type_to_mood",
    "format_type",
    "generate_header",
    "generate_headers",
    "mood_type_to_cpp",
    "parse_cpp",
    "parse_type",
]
