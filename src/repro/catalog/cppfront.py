"""The "modified cfront": C++ class declarations <-> catalog schema.

Section 2: *"To handle the case where data is defined in C++, we have
modified cfront such that cfront extracts the catalog information and
stores it into the CATALOG."*  And the reverse direction: *"When data is
defined through MOODSQL data definition language, the definitions are
stored in the CATALOG and a C++ header file is created for future
compilation."*  MoodView additionally round-trips both ways (Section 9.2).

This module implements both directions over a pragmatic subset of C++
class syntax (single/multiple public inheritance, field declarations,
member-function declarations, and out-of-line member-function definitions
``ret Class::name(params) { body }``).

Type mapping (C++ -> MOOD):

==================  =======================
``int``             Integer
``long``            LongInteger
``float/double``    Float
``char``            Char
``char x[N]``       String(N)
``char* / string``  String
``bool``            Boolean
``T*``              Reference(T)
``set<T>``          Set(T')
``list<T>``         List(T')
==================  =======================
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.catalog.entities import MoodsFunction
from repro.catalog.schema import ClassHierarchy
from repro.core.errors import SchemaError
from repro.model.types import (
    BooleanType,
    CharType,
    FloatType,
    IntegerType,
    ListType,
    LongIntegerType,
    MoodType,
    RefType,
    SetType,
    StringType,
)


@dataclass
class ParsedClass:
    """Schema information cfront extracts from one C++ class."""

    name: str
    bases: list[str] = field(default_factory=list)
    attributes: list[tuple[str, str]] = field(default_factory=list)  # (name, MOOD type text)
    methods: list[MoodsFunction] = field(default_factory=list)


@dataclass
class ParsedMethodBody:
    """An out-of-line member function definition found in the source."""

    owner: str
    name: str
    return_type: str
    parameters: list[tuple[str, str]]
    body: str

    @property
    def signature(self) -> str:
        param_types = ",".join(ptype for _, ptype in self.parameters)
        return f"{self.owner}::{self.name}({param_types})"


_SIMPLE_CPP_TYPES = {
    "int": "Integer",
    "long": "LongInteger",
    "float": "Float",
    "double": "Float",
    "char": "Char",
    "bool": "Boolean",
    "string": "String",
    "void": "Integer",  # MOOD has no void; cfront maps it to Integer 0
}


def cpp_type_to_mood(cpp_type: str, array_bound: int | None = None) -> str:
    """Translate a C++ type spelling into MOOD textual type notation."""
    text = cpp_type.strip()
    template = re.fullmatch(r"(set|list)\s*<\s*(.+?)\s*>", text)
    if template:
        constructor = "Set" if template.group(1) == "set" else "List"
        inner = cpp_type_to_mood(template.group(2))
        return f"{constructor}({inner})"
    if text.endswith("*"):
        target = text[:-1].strip()
        if target == "char":
            return "String"
        return f"Reference({target})"
    if text == "char" and array_bound is not None:
        return f"String({array_bound})"
    if text in _SIMPLE_CPP_TYPES:
        return _SIMPLE_CPP_TYPES[text]
    # An unqualified class name used by value: treat as a reference.
    if re.fullmatch(r"[A-Za-z_][A-Za-z_0-9]*", text):
        return f"Reference({text})"
    raise SchemaError(f"cannot map C++ type {text!r} to a MOOD type")


def mood_type_to_cpp(mood_type: MoodType) -> str:
    """Translate a MOOD type descriptor into a C++ spelling."""
    if isinstance(mood_type, IntegerType):
        return "int"
    if isinstance(mood_type, LongIntegerType):
        return "long"
    if isinstance(mood_type, FloatType):
        return "double"
    if isinstance(mood_type, CharType):
        return "char"
    if isinstance(mood_type, BooleanType):
        return "bool"
    if isinstance(mood_type, StringType):
        return "char*" if mood_type.max_length is None else f"char[{mood_type.max_length}]"
    if isinstance(mood_type, RefType):
        return f"{mood_type.target}*"
    if isinstance(mood_type, SetType):
        return f"set<{mood_type_to_cpp(mood_type.element)}>"
    if isinstance(mood_type, ListType):
        return f"list<{mood_type_to_cpp(mood_type.element)}>"
    raise SchemaError(f"cannot map MOOD type {mood_type.name!r} to C++")


_CLASS_RE = re.compile(
    r"class\s+(?P<name>[A-Za-z_][A-Za-z_0-9]*)\s*"
    r"(?::\s*(?P<bases>[^{]+))?\{(?P<body>.*?)\}\s*;",
    re.DOTALL,
)
_METHOD_DEF_RE = re.compile(
    r"(?P<ret>[A-Za-z_][A-Za-z_0-9 <>\*]*?)\s+"
    r"(?P<owner>[A-Za-z_][A-Za-z_0-9]*)\s*::\s*"
    r"(?P<name>[A-Za-z_][A-Za-z_0-9]*)\s*\((?P<params>[^)]*)\)\s*"
    r"\{(?P<body>.*?)\}",
    re.DOTALL,
)
# Type and member name must be separated by whitespace or a '*', so that
# 'int;' is rejected rather than read as a field 'nt' of type 'i'.
_FIELD_RE = re.compile(
    r"(?P<type>[A-Za-z_][A-Za-z_0-9]*(?:\s*<[^>]+>)?)(?P<sep>\s*\*+\s*|\s+)"
    r"(?P<name>[A-Za-z_][A-Za-z_0-9]*)\s*(?:\[(?P<bound>\d+)\])?\s*;"
)
_METHOD_DECL_RE = re.compile(
    r"(?P<ret>[A-Za-z_][A-Za-z_0-9]*(?:\s*<[^>]+>)?)(?P<sep>\s*\*+\s*|\s+)"
    r"(?P<name>[A-Za-z_][A-Za-z_0-9]*)\s*\((?P<params>[^)]*)\)\s*;"
)
_ACCESS_RE = re.compile(r"\b(public|private|protected)\s*:")
_COMMENT_RE = re.compile(r"//[^\n]*|/\*.*?\*/", re.DOTALL)


def _strip_comments(source: str) -> str:
    return _COMMENT_RE.sub("", source)


def _parse_params(text: str) -> list[tuple[str, str]]:
    text = text.strip()
    if not text or text == "void":
        return []
    parameters = []
    for index, chunk in enumerate(text.split(",")):
        chunk = chunk.strip()
        match = re.fullmatch(
            r"(?P<type>.+?)\s*(?P<name>[A-Za-z_][A-Za-z_0-9]*)?", chunk
        )
        if match is None:
            raise SchemaError(f"cannot parse parameter {chunk!r}")
        cpp_type = match.group("type").strip()
        name = match.group("name") or f"arg{index}"
        # 'int x' captures type 'int'; a bare 'int' captures name 'int'.
        if match.group("name") is None and cpp_type == "":
            cpp_type, name = name, f"arg{index}"
        parameters.append((name, cpp_type_to_mood(cpp_type)))
    return parameters


def parse_cpp(source: str) -> tuple[list[ParsedClass], list[ParsedMethodBody]]:
    """Extract catalog information from C++ source, as modified cfront does.

    Returns the class declarations and any out-of-line method bodies.
    """
    source = _strip_comments(source)
    bodies: list[ParsedMethodBody] = []
    # Parse method definitions first and blank them out, so the class
    # matcher never sees their braces.
    def _collect(match: re.Match) -> str:
        ret = match.group("ret").strip()
        if ret in ("class", "struct"):
            return match.group(0)
        bodies.append(
            ParsedMethodBody(
                owner=match.group("owner"),
                name=match.group("name"),
                return_type=cpp_type_to_mood(ret),
                parameters=_parse_params(match.group("params")),
                body=match.group("body").strip(),
            )
        )
        return ""

    without_defs = _METHOD_DEF_RE.sub(_collect, source)

    classes: list[ParsedClass] = []
    for match in _CLASS_RE.finditer(without_defs):
        name = match.group("name")
        bases = []
        if match.group("bases"):
            for base in match.group("bases").split(","):
                base = base.strip()
                base = re.sub(r"^(public|private|protected|virtual)\s+", "", base)
                bases.append(base.strip())
        body = _ACCESS_RE.sub("", match.group("body"))
        attributes: list[tuple[str, str]] = []
        methods: list[MoodsFunction] = []
        for line in body.split(";"):
            line = line.strip()
            if not line:
                continue
            statement = line + ";"
            decl = _METHOD_DECL_RE.fullmatch(statement)
            if decl:
                ret = decl.group("ret").strip() + decl.group("sep").strip()
                methods.append(
                    MoodsFunction(
                        owner=name,
                        name=decl.group("name"),
                        return_type=cpp_type_to_mood(ret),
                        parameters=_parse_params(decl.group("params")),
                    )
                )
                continue
            fld = _FIELD_RE.fullmatch(statement)
            if fld:
                bound = int(fld.group("bound")) if fld.group("bound") else None
                cpp_type = fld.group("type").strip() + fld.group("sep").strip()
                attributes.append(
                    (fld.group("name"), cpp_type_to_mood(cpp_type, bound))
                )
                continue
            raise SchemaError(f"cannot parse declaration {statement!r} in class {name}")
        classes.append(ParsedClass(name, bases, attributes, methods))
    return classes, bodies


def generate_header(class_name: str, hierarchy: ClassHierarchy) -> str:
    """Generate the C++ header for a class, as the kernel does after DDL."""
    from repro.catalog.typeparse import parse_type

    definition = hierarchy.get(class_name)
    lines = []
    if definition.superclasses:
        bases = ", ".join(f"public {base}" for base in definition.superclasses)
        lines.append(f"class {class_name} : {bases} {{")
    else:
        lines.append(f"class {class_name} {{")
    lines.append("public:")
    for attribute in definition.attributes:
        cpp = mood_type_to_cpp(parse_type(attribute.type_name))
        array = re.fullmatch(r"char\[(\d+)\]", cpp)
        if array:
            lines.append(f"    char {attribute.name}[{array.group(1)}];")
        else:
            lines.append(f"    {cpp} {attribute.name};")
    for method in definition.methods:
        params = ", ".join(
            f"{mood_type_to_cpp(parse_type(ptype))} {pname}"
            for pname, ptype in method.parameters
        )
        ret = mood_type_to_cpp(parse_type(method.return_type))
        lines.append(f"    {ret} {method.name}({params});")
    lines.append("};")
    return "\n".join(lines)


def generate_headers(hierarchy: ClassHierarchy, class_names: list[str]) -> str:
    """Headers for several classes, superclasses first."""
    emitted: list[str] = []
    done: set[str] = set()

    def _emit(name: str) -> None:
        if name in done:
            return
        for base in hierarchy.get(name).superclasses:
            if base in class_names:
                _emit(base)
        done.add(name)
        emitted.append(generate_header(name, hierarchy))

    for name in class_names:
        _emit(name)
    return "\n\n".join(emitted)
