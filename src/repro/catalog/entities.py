"""Catalog entities: MoodsType, MoodsAttribute, MoodsFunction.

Section 2: *"In order to achieve late binding at run time, it is necessary
to carry compile time information to run time.  This is accomplished by the
use of the classes MoodsType, MoodsAttribute and MoodsFunction.  The
MoodsType class keeps track of all the types used in the system.  The
MoodsAttribute stores the information about the attributes of these
classes.  The instances of the MoodsFunction class keeps information about
the member functions."* (Figure 2.2 shows their layout on ESM.)

These are plain records; the :class:`repro.catalog.catalog.Catalog` stores
them in system extents and keeps an in-memory symbol table over them.
"""

from __future__ import annotations

from dataclasses import dataclass, field



@dataclass
class MoodsType:
    """One row of the MoodsType system extent."""

    name: str
    type_id: int
    is_class: bool                       # classes have extents; types do not
    superclasses: list[str] = field(default_factory=list)
    is_system: bool = False

    def to_record(self) -> dict:
        return {
            "name": self.name,
            "type_id": self.type_id,
            "is_class": self.is_class,
            "superclasses": list(self.superclasses),
            "is_system": self.is_system,
        }

    @classmethod
    def from_record(cls, record: dict) -> "MoodsType":
        return cls(
            name=record["name"],
            type_id=record["type_id"],
            is_class=record["is_class"],
            superclasses=list(record["superclasses"]),
            is_system=record["is_system"],
        )


@dataclass
class MoodsAttribute:
    """One row of the MoodsAttribute system extent."""

    owner: str                 # owning class/type name
    name: str
    type_name: str             # textual type (decoded via the type parser)
    position: int              # declaration order within the owner

    def to_record(self) -> dict:
        return {
            "owner": self.owner,
            "name": self.name,
            "type_name": self.type_name,
            "position": self.position,
        }

    @classmethod
    def from_record(cls, record: dict) -> "MoodsAttribute":
        return cls(
            owner=record["owner"],
            name=record["name"],
            type_name=record["type_name"],
            position=record["position"],
        )


@dataclass
class MoodsFunction:
    """One row of the MoodsFunction system extent.

    The paper: *"MOOD System handles the methods only by keeping
    information on their name, return type, and names and types of their
    parameters."*  The body is kept as text in the owning class's directory
    (Function Manager) and compiled separately.
    """

    owner: str
    name: str
    return_type: str
    parameters: list[tuple[str, str]] = field(default_factory=list)  # (name, type)
    source: str = ""

    @property
    def signature(self) -> str:
        """Signature used to locate the function at invocation time:
        class name + function name + parameter types (Section 2)."""
        param_types = ",".join(ptype for _, ptype in self.parameters)
        return f"{self.owner}::{self.name}({param_types})"

    def to_record(self) -> dict:
        return {
            "owner": self.owner,
            "name": self.name,
            "return_type": self.return_type,
            "parameters": [list(p) for p in self.parameters],
            "source": self.source,
        }

    @classmethod
    def from_record(cls, record: dict) -> "MoodsFunction":
        return cls(
            owner=record["owner"],
            name=record["name"],
            return_type=record["return_type"],
            parameters=[tuple(p) for p in record["parameters"]],
            source=record["source"],
        )
