"""Class definitions and the inheritance DAG.

MOOD supports multiple inheritance (Section 3.1); MoodView renders the
hierarchy as a DAG (Section 9.2).  This module holds the in-memory side of
the schema: class definitions, C3 linearisation for attribute/method
resolution, subclass closure for ``EVERY`` / IS-A semantics, and the FROM
clause's minus operator ("excluding the instances of a subclass").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.entities import MoodsAttribute, MoodsFunction
from repro.catalog.typeparse import parse_type
from repro.core.errors import SchemaError, UnknownAttributeError, UnknownClassError
from repro.model.types import MoodType


@dataclass
class ClassDefinition:
    """A class (or plain type) as the schema sees it."""

    name: str
    type_id: int
    is_class: bool
    superclasses: list[str] = field(default_factory=list)
    attributes: list[MoodsAttribute] = field(default_factory=list)  # own only
    methods: list[MoodsFunction] = field(default_factory=list)      # own only
    is_system: bool = False

    def own_attribute(self, attr_name: str) -> MoodsAttribute | None:
        for attribute in self.attributes:
            if attribute.name == attr_name:
                return attribute
        return None

    def own_method(self, method_name: str) -> MoodsFunction | None:
        for method in self.methods:
            if method.name == method_name:
                return method
        return None


class ClassHierarchy:
    """All class definitions plus DAG queries over them."""

    def __init__(self):
        self._classes: dict[str, ClassDefinition] = {}

    # -- definition ------------------------------------------------------

    def add(self, definition: ClassDefinition) -> None:
        if definition.name in self._classes:
            raise SchemaError(f"class {definition.name!r} already defined")
        for superclass in definition.superclasses:
            if superclass not in self._classes:
                raise UnknownClassError(
                    f"superclass {superclass!r} of {definition.name!r} undefined"
                )
        if len(set(definition.superclasses)) != len(definition.superclasses):
            raise SchemaError(
                f"duplicate superclass in {definition.name!r}"
            )
        self._classes[definition.name] = definition
        try:
            self.linearize(definition.name)   # C3 must exist
            self.all_attributes(definition.name)  # no attribute conflicts
        except SchemaError:
            del self._classes[definition.name]
            raise

    def remove(self, name: str) -> None:
        self.get(name)
        if self.subclasses(name):
            raise SchemaError(f"class {name!r} still has subclasses")
        del self._classes[name]

    def get(self, name: str) -> ClassDefinition:
        try:
            return self._classes[name]
        except KeyError:
            raise UnknownClassError(f"unknown class {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._classes

    def names(self) -> list[str]:
        return sorted(self._classes)

    def definitions(self) -> list[ClassDefinition]:
        return [self._classes[name] for name in self.names()]

    # -- linearisation (C3) ------------------------------------------------

    def linearize(self, name: str) -> list[str]:
        """C3 linearisation: the class, then its superclasses, most derived
        first, each appearing once."""
        definition = self.get(name)
        if not definition.superclasses:
            return [name]
        parent_linearisations = [
            self.linearize(parent) for parent in definition.superclasses
        ]
        merged = self._c3_merge(
            parent_linearisations + [list(definition.superclasses)], name
        )
        return [name] + merged

    @staticmethod
    def _c3_merge(sequences: list[list[str]], context: str) -> list[str]:
        sequences = [list(seq) for seq in sequences if seq]
        result: list[str] = []
        while sequences:
            for sequence in sequences:
                head = sequence[0]
                if not any(head in other[1:] for other in sequences):
                    break
            else:
                raise SchemaError(
                    f"inconsistent multiple inheritance for {context!r}"
                )
            result.append(head)
            sequences = [
                [item for item in seq if item != head] for seq in sequences
            ]
            sequences = [seq for seq in sequences if seq]
        return result

    # -- resolution ----------------------------------------------------------

    def all_attributes(self, name: str) -> list[MoodsAttribute]:
        """Attributes including inherited ones, base-most first (the C++
        object layout order); an attribute redefined with a *different*
        type along the hierarchy is a schema error."""
        seen: dict[str, MoodsAttribute] = {}
        ordered: list[MoodsAttribute] = []
        for class_name in reversed(self.linearize(name)):
            for attribute in self.get(class_name).attributes:
                existing = seen.get(attribute.name)
                if existing is None:
                    seen[attribute.name] = attribute
                    ordered.append(attribute)
                elif existing.type_name != attribute.type_name:
                    raise SchemaError(
                        f"attribute {attribute.name!r} inherited with "
                        f"conflicting types in {name!r}"
                    )
        return ordered

    def attribute(self, class_name: str, attr_name: str) -> MoodsAttribute:
        for attribute in self.all_attributes(class_name):
            if attribute.name == attr_name:
                return attribute
        raise UnknownAttributeError(
            f"class {class_name!r} has no attribute {attr_name!r}"
        )

    def attribute_type(self, class_name: str, attr_name: str) -> MoodType:
        return parse_type(self.attribute(class_name, attr_name).type_name)

    def has_attribute(self, class_name: str, attr_name: str) -> bool:
        try:
            self.attribute(class_name, attr_name)
            return True
        except UnknownAttributeError:
            return False

    def all_methods(self, name: str) -> dict[str, MoodsFunction]:
        """Methods including inherited ones; the most derived definition
        wins (late binding resolves against this map)."""
        resolved: dict[str, MoodsFunction] = {}
        for class_name in reversed(self.linearize(name)):
            for method in self.get(class_name).methods:
                resolved[method.name] = method
        return resolved

    def resolve_method(self, class_name: str, method_name: str) -> MoodsFunction:
        method = self.all_methods(class_name).get(method_name)
        if method is None:
            raise UnknownAttributeError(
                f"class {class_name!r} has no method {method_name!r}"
            )
        return method

    # -- DAG queries ------------------------------------------------------------

    def superclasses(self, name: str, transitive: bool = False) -> list[str]:
        if not transitive:
            return list(self.get(name).superclasses)
        return self.linearize(name)[1:]

    def subclasses(self, name: str, transitive: bool = True) -> list[str]:
        self.get(name)
        direct = [
            definition.name
            for definition in self._classes.values()
            if name in definition.superclasses
        ]
        if not transitive:
            return sorted(direct)
        closure: set[str] = set()
        frontier = list(direct)
        while frontier:
            child = frontier.pop()
            if child in closure:
                continue
            closure.add(child)
            frontier.extend(self.subclasses(child, transitive=False))
        return sorted(closure)

    def is_subclass(self, candidate: str, ancestor: str) -> bool:
        """True when ``candidate`` IS-A ``ancestor`` (reflexive)."""
        return candidate == ancestor or ancestor in self.linearize(candidate)

    def extent_classes(self, base: str, exclude: list[str] | None = None) -> list[str]:
        """Classes whose instances belong to a FROM-clause range.

        IS-A semantics: the base class and all its (transitive) subclasses.
        Each name in ``exclude`` removes that subclass's whole subtree --
        the paper's minus operator.
        """
        included = {base, *self.subclasses(base)}
        for excluded in exclude or []:
            if excluded not in included:
                raise SchemaError(
                    f"{excluded!r} is not a subclass of {base!r}; "
                    "the minus operator excludes subclasses only"
                )
            included -= {excluded, *self.subclasses(excluded)}
        return sorted(included)

    def edges(self) -> list[tuple[str, str]]:
        """(superclass, subclass) edges of the inheritance DAG."""
        result = []
        for definition in self._classes.values():
            for parent in definition.superclasses:
                result.append((parent, definition.name))
        return sorted(result)
