"""The persistent catalog.

Section 2: *"The catalog contains the definition of classes, types, and
member functions in a structure similar to a compiler symbol table."*
Figure 2.2 shows it stored on ESM as system extents of MoodsType,
MoodsAttribute and MoodsFunction rows; this class persists exactly those
extents on the storage manager and keeps the in-memory symbol table
(:class:`~repro.catalog.schema.ClassHierarchy`) in sync.

Also managed here, because MOOD stores them through the same mechanism:
named objects (the algebra's ``Bind`` names), per-class extent files, and
secondary-index metadata that the optimizer consults.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.entities import MoodsAttribute, MoodsFunction, MoodsType
from repro.catalog.schema import ClassDefinition, ClassHierarchy
from repro.catalog.typeparse import parse_type
from repro.core.errors import (
    CatalogError,
    SchemaError,
)
from repro.model.serde import decode, encode
from repro.model.types import MoodType, TupleType, TypeRegistry
from repro.storage.file import StorageFile
from repro.storage.manager import StorageManager
from repro.storage.oid import OID


@dataclass(frozen=True)
class IndexInfo:
    """Metadata of one secondary index (the optimizer's view of it)."""

    name: str
    class_name: str
    attribute: str
    kind: str          # "btree" or "hash"
    unique: bool


class Catalog:
    """Persistent symbol table over the storage manager."""

    _TYPES = "_MoodsType"
    _ATTRS = "_MoodsAttribute"
    _FUNCS = "_MoodsFunction"
    _NAMES = "_NamedObjects"
    _INDEXES = "_Indexes"

    def __init__(self, storage: StorageManager):
        self.storage = storage
        #: Monotonic counter bumped by every schema mutation (class,
        #: attribute, function, index DDL and catalog reloads).  Compiled
        #: plans are stamped with it; the plan cache refuses any entry
        #: whose stamp no longer matches.
        self.schema_version = 0
        self.registry = TypeRegistry()
        self.hierarchy = ClassHierarchy()
        self._named: dict[str, OID] = {}
        self._indexes: dict[str, IndexInfo] = {}
        # Virtual SYS$ monitor views: declared schemas only -- rows are
        # synthesised live by repro.obs.views, never stored, so these do
        # not persist and carry no extent files.
        self._system_views: dict[str, list[tuple[str, str]]] = {}
        # Row OIDs so updates/deletes can address the stored records.
        self._type_rows: dict[str, OID] = {}
        self._attr_rows: dict[tuple[str, str], OID] = {}
        self._func_rows: dict[str, OID] = {}
        self._name_rows: dict[str, OID] = {}
        self._index_rows: dict[str, OID] = {}
        self._open_system_files()
        self.reload()

    def _open_system_files(self) -> None:
        from repro.core.errors import FileNotFoundStorageError

        for name in (self._TYPES, self._ATTRS, self._FUNCS, self._NAMES,
                     self._INDEXES):
            try:
                self.storage.file_by_name(name)
            except FileNotFoundStorageError:
                self.storage.create_file(name)

    def _system_file(self, name: str) -> StorageFile:
        return self.storage.file_by_name(name)

    def _schema_changed(self) -> None:
        self.schema_version += 1

    # -- loading -------------------------------------------------------------

    def reload(self) -> None:
        """Rebuild the in-memory symbol table from the stored extents."""
        self.registry = TypeRegistry()
        self.hierarchy = ClassHierarchy()
        self._named = {}
        self._indexes = {}
        self._type_rows = {}
        self._attr_rows = {}
        self._func_rows = {}
        self._name_rows = {}
        self._index_rows = {}

        attr_rows: dict[str, list[MoodsAttribute]] = {}
        for oid, payload in self._system_file(self._ATTRS).scan():
            attribute = MoodsAttribute.from_record(decode(payload))
            attr_rows.setdefault(attribute.owner, []).append(attribute)
            self._attr_rows[(attribute.owner, attribute.name)] = oid
        for attributes in attr_rows.values():
            attributes.sort(key=lambda a: a.position)

        func_rows: dict[str, list[MoodsFunction]] = {}
        for oid, payload in self._system_file(self._FUNCS).scan():
            function = MoodsFunction.from_record(decode(payload))
            func_rows.setdefault(function.owner, []).append(function)
            self._func_rows[function.signature] = oid

        pending: list[tuple[OID, MoodsType]] = []
        for oid, payload in self._system_file(self._TYPES).scan():
            pending.append((oid, MoodsType.from_record(decode(payload))))
        # Topological insertion: a class needs its superclasses first.
        progress = True
        while pending and progress:
            progress = False
            remaining = []
            for oid, row in pending:
                if all(s in self.hierarchy for s in row.superclasses):
                    self._install(row, attr_rows.get(row.name, []),
                                  func_rows.get(row.name, []))
                    self._type_rows[row.name] = oid
                    progress = True
                else:
                    remaining.append((oid, row))
            pending = remaining
        if pending:
            names = [row.name for _, row in pending]
            raise CatalogError(f"catalog is inconsistent; orphans: {names}")

        for oid, payload in self._system_file(self._NAMES).scan():
            record = decode(payload)
            self._named[record["name"]] = record["oid"]
            self._name_rows[record["name"]] = oid

        for oid, payload in self._system_file(self._INDEXES).scan():
            record = decode(payload)
            info = IndexInfo(
                name=record["name"],
                class_name=record["class_name"],
                attribute=record["attribute"],
                kind=record["kind"],
                unique=record["unique"],
            )
            self._indexes[info.name] = info
            self._index_rows[info.name] = oid
        self._schema_changed()

    def _install(
        self,
        row: MoodsType,
        attributes: list[MoodsAttribute],
        functions: list[MoodsFunction],
    ) -> None:
        definition = ClassDefinition(
            name=row.name,
            type_id=row.type_id,
            is_class=row.is_class,
            superclasses=list(row.superclasses),
            attributes=attributes,
            methods=functions,
            is_system=row.is_system,
        )
        self.hierarchy.add(definition)
        own_tuple = TupleType(
            tuple((a.name, parse_type(a.type_name)) for a in attributes)
        )
        self.registry.register(own_tuple, name=row.name)

    # -- class definition -------------------------------------------------------

    def define_class(
        self,
        name: str,
        attributes: list[tuple[str, str]] | None = None,
        superclasses: list[str] | None = None,
        methods: list[MoodsFunction] | None = None,
        is_class: bool = True,
        is_system: bool = False,
    ) -> ClassDefinition:
        """Define a class (with extent) or a plain type (without).

        ``attributes`` are ``(name, textual type)`` pairs in declaration
        order; ``methods`` carry signature info (+ optional source) exactly
        as the paper's catalog keeps them.
        """
        if name in self.hierarchy:
            raise SchemaError(f"class {name!r} already defined")
        attributes = attributes or []
        superclasses = superclasses or []
        methods = methods or []
        attr_entities = [
            MoodsAttribute(owner=name, name=attr_name, type_name=type_text,
                           position=position)
            for position, (attr_name, type_text) in enumerate(attributes)
        ]
        for attribute in attr_entities:
            parse_type(attribute.type_name)  # validate eagerly
        own_tuple = TupleType(
            tuple((a.name, parse_type(a.type_name)) for a in attr_entities)
        )
        type_id = self.registry.register(own_tuple, name=name)
        row = MoodsType(name=name, type_id=type_id, is_class=is_class,
                        superclasses=list(superclasses), is_system=is_system)
        definition = ClassDefinition(
            name=name,
            type_id=type_id,
            is_class=is_class,
            superclasses=list(superclasses),
            attributes=attr_entities,
            methods=list(methods),
            is_system=is_system,
        )
        self.hierarchy.add(definition)  # validates DAG + attribute conflicts
        # Persist.
        self._type_rows[name] = self._system_file(self._TYPES).insert(
            encode(row.to_record())
        )
        for attribute in attr_entities:
            self._attr_rows[(name, attribute.name)] = self._system_file(
                self._ATTRS
            ).insert(encode(attribute.to_record()))
        for method in methods:
            self._func_rows[method.signature] = self._system_file(
                self._FUNCS
            ).insert(encode(method.to_record()))
        if is_class:
            self.storage.create_file(self.extent_file_name(name))
        self._schema_changed()
        return definition

    def drop_class(self, name: str) -> None:
        definition = self.hierarchy.get(name)
        self.hierarchy.remove(name)  # refuses while subclasses exist
        types_file = self._system_file(self._TYPES)
        types_file.delete(self._type_rows.pop(name))
        attrs_file = self._system_file(self._ATTRS)
        for attribute in definition.attributes:
            attrs_file.delete(self._attr_rows.pop((name, attribute.name)))
        funcs_file = self._system_file(self._FUNCS)
        for method in definition.methods:
            funcs_file.delete(self._func_rows.pop(method.signature))
        if definition.is_class:
            extent = self.storage.file_by_name(self.extent_file_name(name))
            self.storage.drop_file(extent.file_id)
        for info in list(self._indexes.values()):
            if info.class_name == name:
                self.drop_index(info.name)
        self._schema_changed()

    # -- schema evolution (MoodView's class designer) ------------------------------

    def add_attribute(self, class_name: str, attr_name: str, type_text: str) -> None:
        definition = self.hierarchy.get(class_name)
        if self.hierarchy.has_attribute(class_name, attr_name):
            raise SchemaError(
                f"{class_name!r} already has attribute {attr_name!r}"
            )
        parse_type(type_text)
        attribute = MoodsAttribute(
            owner=class_name, name=attr_name, type_name=type_text,
            position=len(definition.attributes),
        )
        definition.attributes.append(attribute)
        self._attr_rows[(class_name, attr_name)] = self._system_file(
            self._ATTRS
        ).insert(encode(attribute.to_record()))
        self._schema_changed()

    def drop_attribute(self, class_name: str, attr_name: str) -> None:
        definition = self.hierarchy.get(class_name)
        attribute = definition.own_attribute(attr_name)
        if attribute is None:
            raise SchemaError(
                f"{class_name!r} has no own attribute {attr_name!r}"
            )
        definition.attributes.remove(attribute)
        self._system_file(self._ATTRS).delete(
            self._attr_rows.pop((class_name, attr_name))
        )
        self._schema_changed()

    def rename_attribute(self, class_name: str, old: str, new: str) -> None:
        definition = self.hierarchy.get(class_name)
        attribute = definition.own_attribute(old)
        if attribute is None:
            raise SchemaError(f"{class_name!r} has no own attribute {old!r}")
        if self.hierarchy.has_attribute(class_name, new):
            raise SchemaError(f"{class_name!r} already has attribute {new!r}")
        attribute.name = new
        oid = self._attr_rows.pop((class_name, old))
        self._system_file(self._ATTRS).update(oid, encode(attribute.to_record()))
        self._attr_rows[(class_name, new)] = oid
        self._schema_changed()

    def retype_attribute(self, class_name: str, attr_name: str, type_text: str) -> None:
        definition = self.hierarchy.get(class_name)
        attribute = definition.own_attribute(attr_name)
        if attribute is None:
            raise SchemaError(
                f"{class_name!r} has no own attribute {attr_name!r}"
            )
        parse_type(type_text)
        attribute.type_name = type_text
        oid = self._attr_rows[(class_name, attr_name)]
        self._system_file(self._ATTRS).update(oid, encode(attribute.to_record()))
        self._schema_changed()

    # -- member functions ---------------------------------------------------

    def define_function(self, function: MoodsFunction) -> None:
        self.hierarchy.get(function.owner)
        if function.signature in self._func_rows:
            raise SchemaError(f"function {function.signature} already defined")
        self.hierarchy.get(function.owner).methods.append(function)
        self._func_rows[function.signature] = self._system_file(
            self._FUNCS
        ).insert(encode(function.to_record()))
        self._schema_changed()

    def update_function(self, function: MoodsFunction) -> None:
        if function.signature not in self._func_rows:
            raise SchemaError(f"function {function.signature} not defined")
        definition = self.hierarchy.get(function.owner)
        existing = definition.own_method(function.name)
        if existing is not None:
            definition.methods.remove(existing)
        definition.methods.append(function)
        self._system_file(self._FUNCS).update(
            self._func_rows[function.signature], encode(function.to_record())
        )
        self._schema_changed()

    def drop_function(self, signature: str) -> None:
        if signature not in self._func_rows:
            raise SchemaError(f"function {signature} not defined")
        owner = signature.split("::", 1)[0]
        definition = self.hierarchy.get(owner)
        definition.methods = [
            m for m in definition.methods if m.signature != signature
        ]
        self._system_file(self._FUNCS).delete(self._func_rows.pop(signature))
        self._schema_changed()

    def function_by_signature(self, signature: str) -> MoodsFunction:
        """Locate a function row by the signature the interpreter builds
        (class + parameter types), searching up the hierarchy for
        inherited implementations."""
        owner, rest = signature.split("::", 1)
        for class_name in self.hierarchy.linearize(owner):
            candidate = f"{class_name}::{rest}"
            if candidate in self._func_rows:
                payload = self._system_file(self._FUNCS).read(
                    self._func_rows[candidate]
                )
                return MoodsFunction.from_record(decode(payload))
        raise CatalogError(f"no function with signature {signature!r}")

    # -- lookups ---------------------------------------------------------------

    def class_def(self, name: str) -> ClassDefinition:
        return self.hierarchy.get(name)

    def has_class(self, name: str) -> bool:
        return name in self.hierarchy

    def class_names(self, include_system: bool = False) -> list[str]:
        return [
            definition.name
            for definition in self.hierarchy.definitions()
            if include_system or not definition.is_system
        ]

    def attribute_type(self, class_name: str, attr_name: str) -> MoodType:
        return self.hierarchy.attribute_type(class_name, attr_name)

    def validator_for(self, class_name: str) -> TupleType:
        """Tuple type over *all* (inherited + own) attributes of a class."""
        return TupleType(
            tuple(
                (attribute.name, parse_type(attribute.type_name))
                for attribute in self.hierarchy.all_attributes(class_name)
            )
        )

    def type_id(self, type_name: str) -> int:
        return self.registry.type_id(type_name)

    def type_name(self, type_id: int) -> str:
        return self.registry.type_name(type_id)

    # -- system views (virtual monitor classes) ---------------------------------

    def register_system_view(
        self, name: str, columns: list[tuple[str, str]]
    ) -> None:
        """Declare a read-only virtual class (``SYS$...``): attribute
        names and MOOD type texts, for the schema browser and MoodView.
        Types are validated eagerly like any class definition's."""
        for _, type_text in columns:
            parse_type(type_text)
        self._system_views[name.upper()] = list(columns)

    def has_system_view(self, name: str) -> bool:
        return name.upper() in self._system_views

    def system_view_names(self) -> list[str]:
        return sorted(self._system_views)

    def system_view_columns(self, name: str) -> list[tuple[str, str]]:
        try:
            return list(self._system_views[name.upper()])
        except KeyError:
            raise CatalogError(f"no system view {name!r}") from None

    # -- extents ----------------------------------------------------------------

    @staticmethod
    def extent_file_name(class_name: str) -> str:
        return f"extent_{class_name}"

    def extent_file(self, class_name: str) -> StorageFile:
        definition = self.hierarchy.get(class_name)
        if not definition.is_class:
            raise CatalogError(f"{class_name!r} is a type; it has no extent")
        return self.storage.file_by_name(self.extent_file_name(class_name))

    # -- named objects -------------------------------------------------------------

    def bind_name(self, name: str, oid: OID) -> None:
        record = encode({"name": name, "oid": oid})
        if name in self._named:
            self._system_file(self._NAMES).update(self._name_rows[name], record)
        else:
            self._name_rows[name] = self._system_file(self._NAMES).insert(record)
        self._named[name] = oid

    def lookup_name(self, name: str) -> OID:
        try:
            return self._named[name]
        except KeyError:
            raise CatalogError(f"no named object {name!r}") from None

    def unbind_name(self, name: str) -> None:
        if name not in self._named:
            raise CatalogError(f"no named object {name!r}")
        self._system_file(self._NAMES).delete(self._name_rows.pop(name))
        del self._named[name]

    def named_objects(self) -> dict[str, OID]:
        return dict(self._named)

    # -- index metadata ---------------------------------------------------------

    def define_index(
        self,
        name: str,
        class_name: str,
        attribute: str,
        kind: str = "btree",
        unique: bool = False,
    ) -> IndexInfo:
        if name in self._indexes:
            raise CatalogError(f"index {name!r} already defined")
        if kind not in ("btree", "hash", "join", "path"):
            raise CatalogError(f"unknown index kind {kind!r}")
        if kind == "path":
            # The attribute is a dotted path (a1.a2...am); the index
            # manager validates the chain against the schema.
            if "." not in attribute:
                raise CatalogError(
                    "path indexes take a dotted path (e.g. "
                    "drivetrain.engine.cylinders)"
                )
        else:
            self.hierarchy.attribute(class_name, attribute)  # must exist
        info = IndexInfo(name, class_name, attribute, kind, unique)
        self._indexes[name] = info
        self._index_rows[name] = self._system_file(self._INDEXES).insert(
            encode(
                {
                    "name": name,
                    "class_name": class_name,
                    "attribute": attribute,
                    "kind": kind,
                    "unique": unique,
                }
            )
        )
        self._schema_changed()
        return info

    def drop_index(self, name: str) -> None:
        if name not in self._indexes:
            raise CatalogError(f"no index {name!r}")
        self._system_file(self._INDEXES).delete(self._index_rows.pop(name))
        del self._indexes[name]
        self._schema_changed()

    def index_info(self, name: str) -> IndexInfo:
        try:
            return self._indexes[name]
        except KeyError:
            raise CatalogError(f"no index {name!r}") from None

    def indexes_on(self, class_name: str, attribute: str | None = None) -> list[IndexInfo]:
        return sorted(
            (
                info
                for info in self._indexes.values()
                if info.class_name == class_name
                and (attribute is None or info.attribute == attribute)
            ),
            key=lambda info: info.name,
        )

    def all_indexes(self) -> list[IndexInfo]:
        return sorted(self._indexes.values(), key=lambda info: info.name)
