"""Textual MOOD type expressions <-> type descriptors.

The catalog stores attribute types textually (as the MOODSQL DDL spells
them); this module parses that notation back into
:class:`~repro.model.types.MoodType` descriptors.  Grammar::

    type     := basic | bounded | constructed
    basic    := Integer | LongInteger | Float | String | Char | Boolean
    bounded  := String '(' number ')'
    constructed := Set '(' type ')' | List '(' type ')'
                 | Reference '(' identifier ')'
                 | Tuple '(' field (',' field)* ')'
    field    := identifier type
"""

from __future__ import annotations

import re

from repro.core.errors import UnknownTypeError
from repro.model.types import (
    BASIC_TYPES,
    ListType,
    MoodType,
    RefType,
    SetType,
    StringType,
    TupleType,
)

_TOKEN = re.compile(r"\s*([A-Za-z_][A-Za-z_0-9]*|\d+|[(),])")


def _tokenize(text: str) -> list[str]:
    tokens = []
    position = 0
    while position < len(text):
        match = _TOKEN.match(text, position)
        if match is None:
            if text[position:].strip() == "":
                break
            raise UnknownTypeError(f"bad type syntax near {text[position:]!r}")
        tokens.append(match.group(1))
        position = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: list[str], source: str):
        self.tokens = tokens
        self.source = source
        self.position = 0

    def peek(self) -> str | None:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def take(self, expected: str | None = None) -> str:
        token = self.peek()
        if token is None:
            raise UnknownTypeError(f"unexpected end of type {self.source!r}")
        if expected is not None and token != expected:
            raise UnknownTypeError(
                f"expected {expected!r}, found {token!r} in type {self.source!r}"
            )
        self.position += 1
        return token

    def parse_type(self) -> MoodType:
        token = self.take()
        if token == "String" and self.peek() == "(":
            self.take("(")
            length = self.take()
            if not length.isdigit():
                raise UnknownTypeError(f"bad String bound {length!r}")
            self.take(")")
            return StringType(int(length))
        if token in BASIC_TYPES:
            return BASIC_TYPES[token]
        upper = token.upper()
        if upper == "SET":
            self.take("(")
            element = self.parse_type()
            self.take(")")
            return SetType(element)
        if upper == "LIST":
            self.take("(")
            element = self.parse_type()
            self.take(")")
            return ListType(element)
        if upper == "REFERENCE" or upper == "REF":
            self.take("(")
            target = self.take()
            self.take(")")
            return RefType(target)
        if upper == "TUPLE":
            self.take("(")
            fields = []
            while True:
                name = self.take()
                fields.append((name, self.parse_type()))
                if self.peek() == ",":
                    self.take(",")
                    continue
                break
            self.take(")")
            return TupleType(tuple(fields))
        raise UnknownTypeError(f"unknown type {token!r} in {self.source!r}")


def parse_type(text: str) -> MoodType:
    """Parse a textual type expression into a descriptor."""
    parser = _Parser(_tokenize(text), text)
    result = parser.parse_type()
    if parser.peek() is not None:
        raise UnknownTypeError(f"trailing tokens in type {text!r}")
    return result


def format_type(mood_type: MoodType) -> str:
    """Render a descriptor in the catalog's textual notation."""
    return mood_type.name
