"""General operators of the MOOD algebra (Section 3.2).

``ObjId``, ``TypeId``, ``Deref``, ``isA`` and ``Bind`` -- the operators that
handle naming and single-object operations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.collections import Collection, ObjectStore
from repro.catalog.catalog import Catalog
from repro.core.errors import AlgebraError
from repro.model.objects import MoodObject
from repro.model.types import referenced_class
from repro.storage.oid import OID


def obj_id(obj: MoodObject) -> OID:
    """ObjId(o): the object identifier of ``o``."""
    return obj.oid


def type_id(obj: MoodObject, catalog: Catalog) -> int:
    """TypeId(o): every MOOD object has a type associated with it."""
    return catalog.type_id(obj.class_name)


def deref(oid: OID, store: ObjectStore) -> MoodObject:
    """Deref(oid): the object with identifier ``oid``."""
    return store.deref(oid)


def is_a(path: str, catalog: Catalog) -> str:
    """isA(path): the path starts with a class name; the result is the
    class name of the path's last attribute.

    ``isA("Vehicle.drivetrain.engine") == "VehicleEngine"``.
    """
    parts = path.split(".")
    if not parts or not parts[0]:
        raise AlgebraError(f"malformed path {path!r}")
    current = parts[0]
    if not catalog.has_class(current):
        raise AlgebraError(f"path {path!r} does not start with a class name")
    for attribute in parts[1:]:
        attr_type = catalog.attribute_type(current, attribute)
        target = referenced_class(attr_type)
        if target is None:
            raise AlgebraError(
                f"attribute {attribute!r} of {current!r} is not a reference; "
                f"path {path!r} ends before it"
            )
        current = target
    return current


@dataclass
class Binding:
    """Bind(arg, aName): the naming operator; gives ``name`` to ``arg``."""

    name: str
    arg: Collection

    @property
    def kind(self):
        return self.arg.kind

    def __iter__(self):
        return iter(self.arg)

    def __len__(self):
        return len(self.arg)


def bind(arg: Collection, name: str) -> Binding:
    return Binding(name, arg)
